"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed editable with ``--no-use-pep517`` on machines without
the ``wheel`` package (e.g. offline environments).
"""

from setuptools import setup

setup()
