"""K-D Bonsai reproduction.

A functional reproduction of *K-D Bonsai: ISA-Extensions to Compress K-D
Trees for Autonomous Driving Tasks* (ISCA 2023): value-similarity + reduced
precision compression of k-d tree leaves for radius search, an ISA-level
functional model of the Bonsai-extensions, and a first-order hardware cost
model used to regenerate the paper's tables and figures.

Subpackages
-----------
``repro.core``
    Float formats, the worst-case error model, leaf compression and the
    compressed (Bonsai) radius search.
``repro.pointcloud``
    Point cloud containers, synthetic LiDAR and driving scenes, filters, I/O.
``repro.kdtree``
    PCL/FLANN-style leaf-based k-d tree, baseline radius search, kNN.
``repro.perception``
    Euclidean cluster extraction and a simplified NDT registration.
``repro.isa``
    Functional simulator of the six Bonsai instructions (ZipPts buffer,
    compress/decompress logic, (A-B')^2 functional units).
``repro.hwmodel``
    Cache/memory hierarchy simulation, timing, energy and area models.
``repro.workloads``
    Autoware-like pipelines, execution-share profiling and sub-sampling.
``repro.analysis``
    Metrics, baseline-vs-Bonsai comparison and report rendering.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
