"""K-D Bonsai reproduction.

A functional reproduction of *K-D Bonsai: ISA-Extensions to Compress K-D
Trees for Autonomous Driving Tasks* (ISCA 2023): value-similarity + reduced
precision compression of k-d tree leaves for radius search, an ISA-level
functional model of the Bonsai-extensions, and a first-order hardware cost
model used to regenerate the paper's tables and figures.

Subpackages
-----------
``repro.core``
    Float formats, the worst-case error model, leaf compression and the
    compressed (Bonsai) radius search.
``repro.pointcloud``
    Point cloud containers, synthetic LiDAR and driving scenes, filters, I/O.
``repro.scenarios``
    Scenario library: named, seeded, parameterized worlds (urban, highway,
    tunnel, warehouse, ...) behind one registry.
``repro.kdtree``
    PCL/FLANN-style leaf-based k-d tree, baseline radius search, kNN.
``repro.runtime``
    Batched, vectorised query engine: many queries per traversal, shared
    leaf-distance kernels, exact parity with the per-query paths.
``repro.engine``
    Unified execution-backend API: named backends (``baseline-perquery``,
    ``baseline-batched``, ``bonsai-perquery``, ``bonsai-batched``) behind a
    registry, the :class:`~repro.engine.index.PointCloudIndex` facade, and
    :class:`~repro.engine.execution.ExecutionConfig` carried by workloads.
``repro.perception``
    Euclidean cluster extraction and a simplified NDT registration.
``repro.isa``
    Functional simulator of the six Bonsai instructions (ZipPts buffer,
    compress/decompress logic, (A-B')^2 functional units).
``repro.hwmodel``
    Cache/memory hierarchy simulation, timing, energy and area models.
``repro.workloads``
    Autoware-like pipelines, execution-share profiling and sub-sampling.
``repro.analysis``
    Metrics, baseline-vs-Bonsai comparison and report rendering.
``repro.campaign``
    Differential-testing campaign engine: randomized worlds fired at every
    registered backend, pairwise diffing, divergence shrinking.
``repro.serve``
    Serving layer: the shared-memory :class:`~repro.serve.store.SharedCloudStore`
    (compress once, attach everywhere), the pooled
    :class:`~repro.serve.service.QueryService` and the streaming pipeline
    runner with serial-identical metrics.
``repro.lint``
    Project-native static analysis: determinism, resource-lifecycle and
    multiprocessing-safety rules behind a name registry, surfaced as
    ``repro lint`` and the CI lint gate (``docs/LINT.md``).
``repro.trends``
    Golden-metric trend tracking: versioned per-commit benchmark/campaign
    records in a deterministic JSONL store, threshold regression
    detection, and the static HTML trend explorer, surfaced as
    ``repro trends`` (``docs/TRENDS.md``).

Top-level exports
-----------------
The most common entry points re-export lazily (PEP 562) at the package root,
so ``import repro`` stays cheap while scripts can write ``repro.build_kdtree``
instead of spelling out the subpackage:

``build_kdtree(cloud_or_points, config=None)``
    Build the PCL/FLANN-style leaf-based k-d tree
    (:func:`repro.kdtree.build.build_kdtree`).
``radius_search(tree, query, radius, ...)``
    Single-query baseline radius search
    (:func:`repro.kdtree.radius_search.radius_search`).
``nearest_neighbors(tree, query, k, ...)``
    Single-query kNN (:func:`repro.kdtree.knn.nearest_neighbors`).
``PointCloudIndex``
    The engine facade: build the k-d tree once, query through any named
    backend (:class:`repro.engine.index.PointCloudIndex`).
``backend_names()`` / ``get_backend(name, tree, **opts)``
    The execution-backend registry (:mod:`repro.engine.registry`).
``ExecutionConfig``
    A workload's execution mode as data: backend name, hardware switch,
    recorded cache geometry (:class:`repro.engine.execution.ExecutionConfig`).
``BatchQueryEngine`` / ``BonsaiBatchSearcher``
    Reusable batched engines, baseline and compressed
    (:mod:`repro.runtime`).
``SearchStats``
    Functional search counters shared by every query path
    (:class:`repro.kdtree.radius_search.SearchStats`).
``PipelineRunner`` / ``PipelineRunnerConfig``
    End-to-end perception pipeline over a scenario sequence
    (:mod:`repro.workloads.pipeline`); pass
    ``PipelineRunnerConfig(execution=ExecutionConfig(...))`` to pick the
    search backend and the hardware-in-the-loop mode.
``HardwareScenarioSweep``
    Every scenario x {baseline, Bonsai} through the hardware-in-the-loop
    pipeline (:mod:`repro.analysis.hw_sweep`), optionally across a process
    pool (``n_jobs``) with a deterministic merge.
``CacheGeometrySweep``
    The hardware matrix over named L1/L2 geometry variants
    (:mod:`repro.analysis.cache_sweep`) — the cache-sensitivity driver.
``scenario_names()`` / ``get_scenario`` / ``build_scene`` / ``build_sequence``
    The scenario library registry (:mod:`repro.scenarios`).
``run_campaign`` / ``CampaignConfig`` / ``random_world``
    The differential-testing campaign engine (:mod:`repro.campaign`).
``run_lint`` / ``rule_names``
    The static analyzer and its rule registry (:mod:`repro.lint`).
``TrendRecord`` / ``TrendStore`` / ``find_regressions`` / ``render_dashboard``
    Golden-metric trend tracking (:mod:`repro.trends`): the versioned
    record, the deterministic JSONL store, the baseline-vs-head regression
    detector and the static HTML explorer.
``SharedCloudStore`` / ``QueryService`` / ``StreamingPipelineRunner``
    The serving layer (:mod:`repro.serve`): the shared-memory store, the
    pooled query service over it, and the overlapped-stage pipeline runner.

The pre-engine deprecated exports (``batch_radius_search``, ``batch_knn``,
``BonsaiRadiusSearch``) completed their deprecation cycle and were removed
in 2.0; use ``get_backend(...)`` / ``PointCloudIndex`` (the batched engines
remain available undeprecated as :mod:`repro.runtime` functions).
"""

from importlib import import_module

__version__ = "2.0.0"

#: Lazy export table: public name -> defining submodule.
_EXPORTS = {
    "build_kdtree": "repro.kdtree",
    "radius_search": "repro.kdtree",
    "nearest_neighbors": "repro.kdtree",
    "SearchStats": "repro.kdtree",
    "PointCloudIndex": "repro.engine",
    "ExecutionConfig": "repro.engine",
    "backend_names": "repro.engine",
    "get_backend": "repro.engine",
    "BatchQueryEngine": "repro.runtime",
    "BonsaiBatchSearcher": "repro.runtime",
    "CampaignConfig": "repro.campaign",
    "run_campaign": "repro.campaign",
    "random_world": "repro.campaign",
    "run_lint": "repro.lint",
    "rule_names": "repro.lint",
    "TrendRecord": "repro.trends",
    "TrendStore": "repro.trends",
    "find_regressions": "repro.trends",
    "render_dashboard": "repro.trends",
    "PipelineRunner": "repro.workloads",
    "PipelineRunnerConfig": "repro.workloads",
    "SharedCloudStore": "repro.serve",
    "QueryService": "repro.serve",
    "StreamingPipelineRunner": "repro.serve",
    "HardwareScenarioSweep": "repro.analysis",
    "CacheGeometrySweep": "repro.analysis",
    "build_sequence": "repro.scenarios",
    "build_scene": "repro.scenarios",
    "scenario_names": "repro.scenarios",
    "get_scenario": "repro.scenarios",
}

__all__ = ["__version__"] + sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
