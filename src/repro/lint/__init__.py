"""Project-native static analysis: the guarantees, checked at commit time.

The dynamic suites prove the reproduction's guarantees on the seeds they
run — golden snapshots, cross-backend parity, the differential campaigns,
the teardown chasers.  :mod:`repro.lint` checks the *code patterns* those
guarantees depend on, so a regression is a lint finding at commit time
instead of a flaky divergence three PRs later:

``determinism-*``
    no unseeded randomness, no wall-clock or environment reads in
    result-affecting modules, no set-iteration feeding ordered merges.
``lifecycle-*``
    every store/index/pool/segment constructed is scoped with ``with`` or
    closed on the function's exit paths.
``mp-*`` / ``hygiene-*``
    worker callables stay module-level picklable; no mutable default
    arguments, bare/swallowing ``except`` blocks or load-bearing
    ``assert`` statements.

Rules live in a name registry mirroring the execution-backend registry:
:func:`rule_names` lists them, :func:`register_rule` adds one (see
``docs/LINT.md`` for the extension walkthrough).  Findings honor inline
``# repro-lint: disable=<rule-id>`` suppressions and a committed baseline
file; the CLI surface is ``repro lint [paths] --format text|json``.
"""

from .findings import (Finding, SEVERITIES, load_baseline, match_baseline,
                       write_baseline)
from .registry import (PATH_KINDS, Rule, all_rules, get_rule, register_rule,
                       rule_names)
from .runner import (LintModule, LintReport, iter_python_files, lint_file,
                     render_json, render_text, run_lint)

__all__ = [
    "Finding",
    "LintModule",
    "LintReport",
    "PATH_KINDS",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "match_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "rule_names",
    "run_lint",
    "write_baseline",
]
