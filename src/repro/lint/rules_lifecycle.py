"""Resource-lifecycle rule: every heavy handle is closed on every exit path.

The serving layer's guarantees — exactly one compression pass fleet-wide,
refcounted shared-memory segments that unlink on the last close, worker
pools torn down instead of leaked — all reduce to one discipline: whoever
constructs a :class:`~repro.serve.store.SharedCloudStore`, a
:class:`~repro.engine.index.PointCloudIndex`, a worker pool or a raw
``SharedMemory`` segment must either scope it with ``with`` or close it on
the function's exit paths.  PR 8's teardown suite chases the violations
dynamically; this rule catches them at commit time.

The check is intraprocedural with a small escape analysis: a handle that is
returned, yielded, stored into ``self``/a container, passed to another call
or declared ``global`` has transferred ownership, and the *receiving* scope
is accountable instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .registry import Rule, register_rule

__all__ = ["RESOURCE_LABELS"]

#: Constructor spellings that yield a closeable resource (matched against
#: the *last* segments of the resolved dotted call name).
RESOURCE_LABELS: Dict[str, str] = {
    "PointCloudIndex": "PointCloudIndex (cached backends may own worker pools)",
    "ShardedPointCloudIndex": "ShardedPointCloudIndex (per-tile indexes)",
    "QueryService": "QueryService (persistent worker pool)",
    "SharedMemory": "SharedMemory segment (named; leaks into /dev/shm)",
    "SharedCloudStore.create": "SharedCloudStore (holds a refcount)",
    "SharedCloudStore.attach": "SharedCloudStore attach (holds a refcount)",
    "Pool": "multiprocessing pool (worker processes)",
    "ThreadPoolExecutor": "thread pool",
    "ProcessPoolExecutor": "process pool",
}

#: Method calls that count as releasing a tracked handle.
_CLOSE_METHODS = frozenset({"close", "terminate", "shutdown", "unlink",
                            "release", "join"})


def _resource_label(module, call: ast.Call) -> Optional[str]:
    """The resource label when ``call`` constructs a tracked resource."""
    full = module.full_name(call.func)
    if full is not None:
        parts = full.split(".")
        if len(parts) >= 2 and ".".join(parts[-2:]) in RESOURCE_LABELS:
            return RESOURCE_LABELS[".".join(parts[-2:])]
        if parts[-1] in RESOURCE_LABELS and "." not in parts[-1]:
            return RESOURCE_LABELS[parts[-1]]
        return None
    # Chained receivers (``get_context(...).Pool(...)``) defeat dotted
    # resolution; a ``.Pool(...)`` attribute call is a pool regardless.
    if isinstance(call.func, ast.Attribute) and call.func.attr in ("Pool",):
        return RESOURCE_LABELS["Pool"]
    return None


def _global_names(scope: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


@register_rule
class UnclosedResourceRule(Rule):
    """Resources are scoped with ``with`` or closed before the scope exits."""

    name = "lifecycle-unclosed-resource"
    severity = "error"
    # Tests own teardown through fixtures and the dedicated lifecycle
    # suites (test_index_teardown, test_shared_store); the discipline is
    # enforced where leaks ship: src, benchmarks and examples.
    scopes = frozenset({"src", "benchmarks", "examples"})
    rationale = (
        "an unclosed store/pool/index leaks shared-memory segments or "
        "worker processes — the exact bug class the PR 8 teardown tests "
        "chase dynamically")

    def check(self, module) -> Iterator[Finding]:
        for scope in module.scopes():
            if isinstance(scope, ast.Module):
                # Module level: examples and benchmarks run script-style
                # where the interpreter exit is the lifecycle; functions are
                # where leaked handles hide.
                continue
            yield from self._check_scope(module, scope)

    # ------------------------------------------------------------------
    def _check_scope(self, module, scope) -> Iterator[Finding]:
        constructions: List[Tuple[ast.Call, str]] = []
        for node in module.scope_statements(scope):
            if isinstance(node, ast.Call):
                label = _resource_label(module, node)
                if label is not None:
                    constructions.append((node, label))
        if not constructions:
            return
        globals_declared = _global_names(scope)
        for call, label in constructions:
            tracked = self._binding(module, call)
            if tracked is None:
                # `with Resource(...)`, `return Resource(...)`, passed as an
                # argument, stored into a container — ownership handled or
                # transferred at the construction site itself.
                continue
            if tracked == "":
                yield self.finding(
                    module, call,
                    f"{label} constructed and immediately discarded — "
                    f"use `with`, or bind it and close it")
                continue
            if tracked in globals_declared:
                continue  # module-global handle; lifetime is the process
            if not self._released(module, scope, tracked):
                yield self.finding(
                    module, call,
                    f"{label} bound to {tracked!r} is never closed in this "
                    f"function — use `with`, or call .close() on every "
                    f"exit path (finally)")

    def _binding(self, module, call: ast.Call) -> Optional[str]:
        """How the constructed resource is bound.

        ``None``: ownership already handled (with/return/argument/container).
        ``""``: discarded expression statement — always a finding.
        A name: local binding the scope must release.
        """
        parent = module.parent(call)
        if isinstance(parent, ast.Expr):
            return ""
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (parent.targets if isinstance(parent, ast.Assign)
                       else [parent.target])
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return targets[0].id
            return None  # self.x = ..., container[k] = ..., unpacking
        return None  # withitem, Return, Call argument, comparison, ...

    def _released(self, module, scope, name: str) -> bool:
        """Whether ``name`` is closed, re-scoped or escapes within ``scope``."""
        for node in ast.walk(scope):
            # name.close() / name.terminate() / ...
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                return True
            # with name: / with closing(name):
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if (isinstance(expr, ast.Call) and any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in expr.args)):
                    return True
        for node in ast.walk(scope):
            if not (isinstance(node, ast.Name) and node.id == name):
                continue
            parent = module.parent(node)
            # Ownership escapes: returned/yielded, aliased or stored
            # elsewhere, packed into a literal, handed to another callable.
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(parent, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                return True
            if isinstance(parent, (ast.Assign, ast.AnnAssign)) and node in (
                    ast.walk(parent.value) if parent.value is not None else ()):
                return True
            if isinstance(parent, ast.Call) and (
                    node in parent.args
                    or any(node is kw.value for kw in parent.keywords)):
                return True
            if isinstance(parent, ast.Starred):
                return True
        return False
