"""Determinism rules: the bitwise-reproducibility guarantee, checked statically.

Every result this reproduction publishes — golden pipeline metrics, the
cross-backend parity contract, the sharded/served query paths — is bitwise
deterministic.  The fuzz and golden suites enforce that *dynamically*; these
rules catch the classic ways the guarantee regresses before any seed happens
to hit them: an unseeded RNG, a wall-clock read folded into results, an
environment variable steering result-affecting code, iteration over an
unordered set feeding a merge.

Intentional exceptions are **named**: the allowlists below map a module to
the one-line justification for its exemption, and ``docs/LINT.md`` publishes
the tables.  Everything else needs an inline
``# repro-lint: disable=<rule-id>`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from .findings import Finding
from .registry import Rule, register_rule

__all__ = ["ENV_READ_ALLOWED", "NONDETERMINISM_ALLOWED", "WALLCLOCK_ALLOWED"]

#: Legacy global-state ``numpy.random`` entry points (module-level RNG).
_LEGACY_NUMPY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "binomial", "get_state",
    "set_state",
})

#: Stdlib ``random`` module-level functions (shared hidden state).
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed", "getrandbits",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
})

#: Wall-clock reads (each returns a different value every call).
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Ambient-uniqueness sources (fine for names, fatal for results).
_UNIQUENESS_CALLS = ("secrets.", "uuid.uuid1", "uuid.uuid4")

#: Modules exempt from the nondeterministic-source check, with the reason.
NONDETERMINISM_ALLOWED: Dict[str, str] = {
    "repro/serve/store.py":
        "store names embed pid + random token for cross-process uniqueness; "
        "names never affect query results",
}

#: Modules exempt from the wall-clock check, with the reason.  All four
#: read the clock for *reported* timing (stage_seconds, latency percentiles,
#: CLI throughput lines) that lives beside — never inside — the
#: deterministic ``metrics()`` the golden suites snapshot.
WALLCLOCK_ALLOWED: Dict[str, str] = {
    "repro/cli.py":
        "CLI throughput reporting; printed, never merged into results",
    "repro/workloads/pipeline.py":
        "wall-clock stage_seconds ride beside the deterministic metrics(), "
        "never inside them",
    "repro/serve/streaming.py":
        "stage timing diagnostics; the frame fold is completion-order- and "
        "time-independent",
    "repro/serve/loadgen.py":
        "latency percentiles are the serving benchmark's product",
}

#: Modules exempt from the environment-read check, with the reason.
ENV_READ_ALLOWED: Dict[str, str] = {
    "repro/engine/parallel.py":
        "REPRO_MP_WORKERS tunes the worker count only; results are "
        "worker-count-invariant by the engine determinism contract",
    "repro/trends/collect.py":
        "REPRO_TRENDS_DIR/-COMMIT/-RUN_ID/-ORDER select where benchmark "
        "trend records persist and how the run is labelled; they never "
        "affect any computed result",
}


def _allowlisted(module, table: Dict[str, str]) -> bool:
    return any(module.display.endswith(suffix) for suffix in table)


@register_rule
class UnseededRngRule(Rule):
    """No unseeded or global-state randomness anywhere in the repository."""

    name = "determinism-unseeded-rng"
    severity = "error"
    rationale = (
        "every random draw must flow from an explicit seed, or identical "
        "campaign/golden runs stop being identical")

    def check(self, module) -> Iterator[Finding]:
        allowed = _allowlisted(module, NONDETERMINISM_ALLOWED)
        for node in module.walk(ast.Call):
            full = module.full_name(node.func)
            if full is None:
                continue
            if full == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "numpy.random.default_rng() without a seed draws "
                        "from OS entropy — pass an explicit seed")
            elif (full.startswith("numpy.random.")
                    and full.rsplit(".", 1)[1] in _LEGACY_NUMPY):
                yield self.finding(
                    module, node,
                    f"legacy global-state RNG call {full}() — use a seeded "
                    f"numpy.random.default_rng(seed) generator")
            elif (full.startswith("random.")
                    and full.rsplit(".", 1)[1] in _STDLIB_RANDOM
                    and (module.aliases.get("random") == "random"
                         or (isinstance(node.func, ast.Name)
                             and module.aliases.get(node.func.id, "")
                             .startswith("random.")))):
                # Covers both spellings: ``import random; random.shuffle()``
                # and ``from random import shuffle; shuffle()``.
                yield self.finding(
                    module, node,
                    f"stdlib {full}() uses hidden shared state — use a "
                    f"seeded numpy.random.default_rng(seed) generator")
            elif not allowed and (full.startswith(_UNIQUENESS_CALLS[0])
                                  or full in _UNIQUENESS_CALLS[1:]):
                yield self.finding(
                    module, node,
                    f"{full}() is a nondeterministic source — derive ids "
                    f"from seeds, or allowlist the module with a reason")


@register_rule
class WallclockRule(Rule):
    """No wall-clock reads in result-affecting modules."""

    name = "determinism-wallclock"
    severity = "error"
    scopes = frozenset({"src"})
    rationale = (
        "a clock read folded into results makes two identical runs diverge; "
        "timing belongs in benchmarks and the allowlisted reporting paths")

    def check(self, module) -> Iterator[Finding]:
        if _allowlisted(module, WALLCLOCK_ALLOWED):
            return
        for node in module.walk(ast.Call):
            full = module.full_name(node.func)
            if full in _WALLCLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock read {full}() in a result-affecting module "
                    f"— move timing to benchmarks or allowlist with a reason")


@register_rule
class EnvReadRule(Rule):
    """No environment reads steering result-affecting code."""

    name = "determinism-env-read"
    severity = "error"
    scopes = frozenset({"src"})
    rationale = (
        "an os.environ read in result-affecting code makes results depend "
        "on ambient shell state the golden snapshots cannot see")

    def check(self, module) -> Iterator[Finding]:
        if _allowlisted(module, ENV_READ_ALLOWED):
            return
        for node in module.walk(ast.Attribute):
            if module.full_name(node) == "os.environ":
                yield self.finding(
                    module, node,
                    "os.environ read in a result-affecting module — thread "
                    "configuration through explicit parameters")
        for node in module.walk(ast.Call):
            if module.full_name(node.func) == "os.getenv":
                yield self.finding(
                    module, node,
                    "os.getenv() read in a result-affecting module — thread "
                    "configuration through explicit parameters")


def _is_set_expr(module, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and module.full_name(node.func) in ("set", "frozenset"))


@register_rule
class SetIterationRule(Rule):
    """No iteration over freshly built sets feeding ordered results."""

    name = "determinism-set-iteration"
    severity = "error"
    rationale = (
        "set iteration order is undefined across processes and runs; the "
        "index-ordered merges only stay bitwise identical over sorted input")

    #: Order-sensitive consumers of an iterable first argument.
    _ORDERED_CONSUMERS = ("list", "tuple", "enumerate")

    def check(self, module) -> Iterator[Finding]:
        message = ("iterating a set has undefined order — wrap it in "
                   "sorted(...) before results depend on the sequence")
        for node in module.walk(ast.For):
            if _is_set_expr(module, node.iter):
                yield self.finding(module, node.iter, message)
        for node in module.walk(ast.comprehension):
            if _is_set_expr(module, node.iter):
                yield self.finding(module, node.iter, message)
        for node in module.walk(ast.Call):
            full = module.full_name(node.func)
            takes_set = (node.args and _is_set_expr(module, node.args[0]))
            if takes_set and full in self._ORDERED_CONSUMERS:
                yield self.finding(module, node, message)
            if (takes_set and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                yield self.finding(module, node, message)
