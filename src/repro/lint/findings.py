"""Findings and baseline bookkeeping of the repro linter.

A :class:`Finding` is one rule violation: rule id, severity, display path,
1-based line/column and a human message.  Findings order *totally* and
deterministically — the report of two identical runs over the same tree is
byte-identical, which the campaign/golden infrastructure relies on (and
``tests/test_lint.py`` locks down).

Baselines grandfather pre-existing findings: a committed JSON file of
``(rule, path, message)`` fingerprints that the runner subtracts before
deciding the exit code.  Fingerprints are line-agnostic on purpose — an
unrelated edit that shifts a grandfathered finding by a few lines must not
resurrect it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "load_baseline",
    "match_baseline",
    "write_baseline",
]

#: Valid rule severities, in decreasing weight.  Both gate the exit code —
#: severity is a reading aid, not a waiver.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Total, deterministic report order: location first, then rule."""
        return (self.path, self.line, self.col, self.rule, self.message)

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-agnostic identity used by baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """The one-line text form (``path:line:col: severity [rule] msg``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity} [{self.rule}] {self.message}")

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a multiset of finding fingerprints.

    The format is the one :func:`write_baseline` produces.  A missing
    ``findings`` key or a non-list is a malformed baseline and raises
    ``ValueError`` naming the file — a silently empty baseline would make
    every grandfathered finding look new.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data.get("findings") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        raise ValueError(f"malformed lint baseline {path}: expected "
                         f"{{\"findings\": [...]}}")
    counts: Counter = Counter()
    for entry in entries:
        counts[(entry["rule"], entry["path"], entry["message"])] += 1
    return counts


def match_baseline(findings: Sequence[Finding],
                   baseline: Counter) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, baselined) against the fingerprints.

    Count-aware: a baseline entry absorbs exactly as many findings as it was
    recorded with, so *adding* a second instance of a grandfathered mistake
    still fails the run.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline (sorted, stable)."""
    entries = sorted(
        ({"rule": f.rule, "path": f.path, "message": f.message}
         for f in findings),
        key=lambda e: (e["path"], e["rule"], e["message"]))
    payload = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
