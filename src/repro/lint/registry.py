"""Rule registry: lint rules selected by *name*, not by import.

Mirrors the execution-backend registry (:mod:`repro.engine.registry`): rules
are registered under ``<family>-<rule>`` names, every listing (``--help``,
``docs/LINT.md`` lockdown, fixture-test parametrisation) derives from
:func:`rule_names`, and extending the linter is one :func:`register_rule`
call::

    from repro.lint import Rule, register_rule

    @register_rule
    class NoPrintRule(Rule):
        name = "hygiene-no-print"
        severity = "warning"
        rationale = "library code reports through return values, not stdout"

        def check(self, module):
            for node in module.walk(ast.Call):
                if module.full_name(node.func) == "print":
                    yield self.finding(module, node, "print() in library code")

After that one call the rule runs everywhere rules are selected — the CLI
``repro lint``, the self-lint test, the CI lint job — and the docs lockdown
(``tests/test_docs.py``) demands a ``docs/LINT.md`` catalog entry for it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Type

from .findings import SEVERITIES, Finding

__all__ = ["Rule", "all_rules", "get_rule", "register_rule", "rule_names"]

#: Every path kind the runner distinguishes (see ``LintModule.kind``).
PATH_KINDS = ("src", "tests", "benchmarks", "examples")

_REGISTRY: Dict[str, Type["Rule"]] = {}

#: Rule names are ``<family>-<rule>``: lowercase dash-separated segments, at
#: least two — the family prefix (``determinism``, ``lifecycle``, ``mp``,
#: ``hygiene``) groups the catalog, exactly like ``<flavor>-<strategy>``
#: groups the backend registry.
_NAME_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)+")


class Rule:
    """Base class of one lint rule.

    Subclasses set ``name`` (``<family>-<rule>``), ``severity`` (one of
    :data:`~repro.lint.findings.SEVERITIES`), ``rationale`` (one sentence
    tying the rule to the project guarantee it protects — surfaced in
    ``docs/LINT.md``) and ``scopes`` (the path kinds the rule applies to),
    and implement :meth:`check` yielding :class:`Finding` objects.
    """

    name: str = ""
    severity: str = "error"
    rationale: str = ""
    #: Path kinds (``LintModule.kind``) the rule runs on.  Rules that police
    #: result-affecting code only (wall-clock, env reads) restrict this to
    #: ``{"src"}``; hygiene rules apply everywhere.
    scopes: frozenset = frozenset(PATH_KINDS)

    def check(self, module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` of this rule at ``node``'s location."""
        return Finding(rule=self.name, severity=self.severity,
                       path=module.display, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Register a :class:`Rule` subclass (usable as a class decorator).

    Names follow the ``<family>-<rule>`` convention — enforced here, because
    the suppression syntax, the docs lockdown and the fixture layout all key
    on the name.  Registering an existing name is an error (there is exactly
    one meaning per name, everywhere).
    """
    name = rule_cls.name
    if not _NAME_RE.fullmatch(name):
        raise ValueError(
            f"rule name {name!r} must be '<family>-<rule>' "
            f"(lowercase dash-separated segments, e.g. 'hygiene-no-print')")
    if name in _REGISTRY:
        raise ValueError(f"rule {name!r} is already registered")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"rule {name!r} severity {rule_cls.severity!r} "
                         f"must be one of {SEVERITIES}")
    unknown = set(rule_cls.scopes) - set(PATH_KINDS)
    if unknown:
        raise ValueError(f"rule {name!r} has unknown scopes {sorted(unknown)}; "
                         f"valid: {PATH_KINDS}")
    _REGISTRY[name] = rule_cls
    return rule_cls


def rule_names() -> List[str]:
    """Sorted names of all registered lint rules."""
    return sorted(_REGISTRY)


def get_rule(name: str) -> Rule:
    """Instantiate the named rule.  Raises ``KeyError`` naming the registry."""
    try:
        rule_cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(rule_names()) or "<none>"
        raise KeyError(f"unknown lint rule {name!r}; registered: {known}") from None
    return rule_cls()


def all_rules(names: Iterable[str] = None) -> List[Rule]:
    """Instances of the named rules (every registered rule when omitted)."""
    return [get_rule(name) for name in (rule_names() if names is None
                                        else names)]


# The rule families live in their own modules (they subclass Rule through
# this registry), imported here so the names register exactly once, at the
# same time as the registry itself — the idiom the backend registry uses.
from . import rules_determinism  # noqa: E402,F401
from . import rules_lifecycle  # noqa: E402,F401
from . import rules_hygiene  # noqa: E402,F401
