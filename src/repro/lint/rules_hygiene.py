"""Multiprocessing-safety and hygiene rules.

The fork/spawn contract of the engine layer (:mod:`repro.engine.parallel`)
is that everything crossing a process boundary pickles: worker callables and
pool initializers must be module-level functions, because ``spawn`` resolves
them by qualified name.  A lambda or nested function works under ``fork`` on
Linux and then breaks on the ``spawn`` fallback — the exact class of
platform-dependent bug the parity suites cannot catch on the platform where
it happens to pass.

The hygiene family covers the classic Python footguns with outsized blast
radius in a determinism-sensitive codebase: mutable default arguments
(shared state across calls), broad ``except`` blocks that silently swallow
failures (a divergence eaten is a divergence shipped), and ``assert`` used
for runtime control flow (compiled away under ``python -O``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .findings import Finding
from .registry import Rule, register_rule

__all__ = []

#: Pool/executor methods whose first argument crosses a process boundary.
_SUBMIT_METHODS = frozenset({"map", "imap", "imap_unordered", "starmap",
                             "starmap_async", "apply", "apply_async",
                             "submit"})

#: Keyword arguments that carry a callable into worker processes.
_WORKER_KWARGS = frozenset({"initializer"})


def _local_callables(scope: ast.AST) -> Set[str]:
    """Names bound to defs/lambdas inside ``scope`` (not picklable)."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif (isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            names.add(node.targets[0].id)
    return names


def _thread_pool_names(module, scope: ast.AST) -> Set[str]:
    """Names bound to ThreadPoolExecutor in ``scope`` — threads do not
    pickle, so closures submitted to them are fine."""

    def is_thread_pool(expr: ast.AST) -> bool:
        return (isinstance(expr, ast.Call)
                and (module.full_name(expr.func) or "")
                .rsplit(".", 1)[-1] == "ThreadPoolExecutor")

    names: Set[str] = set()
    for node in ast.walk(scope):
        if (isinstance(node, ast.Assign) and is_thread_pool(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            names.add(node.targets[0].id)
        elif (isinstance(node, ast.withitem)
                and is_thread_pool(node.context_expr)
                and isinstance(node.optional_vars, ast.Name)):
            names.add(node.optional_vars.id)
    return names


@register_rule
class UnpicklableTaskRule(Rule):
    """Callables handed to worker pools must be module-level functions."""

    name = "mp-unpicklable-task"
    severity = "error"
    rationale = (
        "spawn-start workers resolve task functions by qualified name; a "
        "lambda or nested def works under fork and breaks under spawn")

    def check(self, module) -> Iterator[Finding]:
        for scope in module.scopes():
            in_function = not isinstance(scope, ast.Module)
            local = _local_callables(scope) if in_function else set()
            threads = _thread_pool_names(module, scope)
            for node in module.scope_statements(scope):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(module, node, local, threads)

    def _check_call(self, module, node: ast.Call, local: Set[str],
                    threads: Set[str]) -> Iterator[Finding]:
        candidates: List[ast.AST] = []
        full = module.full_name(node.func) or ""
        if full.rsplit(".", 1)[-1] == "process_map" and node.args:
            candidates.append(node.args[0])
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS and node.args
                and not (isinstance(node.func.value, ast.Name)
                         and node.func.value.id in threads)):
            candidates.append(node.args[0])
        candidates.extend(kw.value for kw in node.keywords
                          if kw.arg in _WORKER_KWARGS)
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                yield self.finding(
                    module, candidate,
                    "lambda cannot cross a process boundary (not picklable "
                    "by qualified name) — use a module-level function")
            elif (isinstance(candidate, ast.Name) and candidate.id in local):
                yield self.finding(
                    module, candidate,
                    f"nested function {candidate.id!r} is not picklable — "
                    f"move it to module level (see repro.engine.parallel's "
                    f"_radius_shard/_knn_shard)")


#: Default expressions that create a shared mutable object once, at def time.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "collections.defaultdict",
                            "collections.Counter", "collections.OrderedDict",
                            "defaultdict", "Counter", "OrderedDict"})


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default arguments."""

    name = "hygiene-mutable-default"
    severity = "error"
    rationale = (
        "a mutable default is one object shared by every call — state "
        "leaks across invocations and across tests")

    def check(self, module) -> Iterator[Finding]:
        for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda):
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(module, default):
                    yield self.finding(
                        module, default,
                        "mutable default argument — default to None and "
                        "create the object inside the function")

    @staticmethod
    def _is_mutable(module, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and module.full_name(node.func) in _MUTABLE_CALLS)


@register_rule
class BroadExceptRule(Rule):
    """No bare ``except:`` and no silent broad swallows."""

    name = "hygiene-broad-except"
    severity = "warning"
    rationale = (
        "a swallowed exception hides real divergences and lifecycle "
        "failures; the sanctioned shutdown paths gate on sys.is_finalizing() "
        "and re-raise everywhere else")

    def check(self, module) -> Iterator[Finding]:
        for node in module.walk(ast.ExceptHandler):
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt — "
                    "name the exception type (narrowest that fits)")
                continue
            full = module.full_name(node.type)
            if full not in ("Exception", "BaseException",
                            "builtins.Exception", "builtins.BaseException"):
                continue
            reraises = any(isinstance(inner, ast.Raise)
                           for inner in ast.walk(node))
            if node.name is None and not reraises:
                yield self.finding(
                    module, node,
                    f"`except {full}` that neither binds nor re-raises "
                    f"silently swallows failures — narrow the type, or "
                    f"re-raise outside sanctioned shutdown paths")


@register_rule
class AssertControlFlowRule(Rule):
    """No ``assert`` for runtime checks outside the test suites."""

    name = "hygiene-assert-control-flow"
    severity = "warning"
    # Tests and pytest-collected benchmarks assert by design.
    scopes = frozenset({"src", "examples"})
    rationale = (
        "assert statements vanish under `python -O`; a load-bearing check "
        "must raise an explicit exception")

    def check(self, module) -> Iterator[Finding]:
        for node in module.walk(ast.Assert):
            yield self.finding(
                module, node,
                "assert is compiled away under `python -O` — raise an "
                "explicit exception for runtime checks (asserts belong in "
                "tests/)")
