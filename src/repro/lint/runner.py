"""The lint runner: file discovery, suppression semantics, report rendering.

One :class:`LintModule` per Python file carries the parsed AST plus the
shared analyses every rule needs — the import-alias map (so ``np.random.rand``
resolves to ``numpy.random.rand`` whatever the import spelling), a parent
map for context-sensitive checks, and the inline suppression table.

Suppression syntax (checked by ``tests/test_lint.py``):

``# repro-lint: disable=<rule-id>[,<rule-id>...]``
    Suppresses the named rules on that physical line.  Put the one-line
    justification in the same comment, after the ids.
``# repro-lint: disable-file=<rule-id>[,<rule-id>...]``
    Suppresses the named rules for the whole file (for sanctioned modules
    like the documented ``KDTree.validate`` assertion contract).

Both leave a ``suppressed`` trail in the report — a suppression is visible,
never silent.  Baseline files (:func:`repro.lint.findings.load_baseline`)
grandfather findings without touching the source; the exit contract is
*new unsuppressed findings fail*.

Determinism: files are discovered in sorted order, findings sort by
``(path, line, col, rule, message)`` and the JSON rendering is key-sorted —
two runs over the same tree are byte-identical.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .findings import Finding, match_baseline
from .registry import Rule, all_rules

__all__ = ["LintModule", "LintReport", "iter_python_files", "lint_file",
           "render_json", "render_text", "run_lint"]

#: Directory names never descended into during discovery.  ``lint_fixtures``
#: holds the deliberately violating rule-fixture snippets of the test suite;
#: passing a fixture file *explicitly* still lints it.
SKIPPED_DIRS = frozenset({"__pycache__", "lint_fixtures"})

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)")
_DISABLE_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)")


def _split_ids(text: str) -> Set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


class LintModule:
    """One parsed source file plus the analyses shared by every rule."""

    def __init__(self, path: Path, text: str, *, display: Optional[str] = None,
                 kind: Optional[str] = None):
        self.path = Path(path)
        self.display = display if display is not None else self.path.as_posix()
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.display)
        self.kind = kind if kind is not None else self._detect_kind()
        self.suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._scan_suppressions()
        self.aliases = self._import_aliases()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def from_path(cls, path: Path, *, display: Optional[str] = None) -> "LintModule":
        path = Path(path)
        return cls(path, path.read_text(encoding="utf-8"), display=display)

    # ------------------------------------------------------------------
    # Path classification
    # ------------------------------------------------------------------
    def _detect_kind(self) -> str:
        """``tests`` / ``benchmarks`` / ``examples`` by path part; ``src``
        otherwise — the strictest default, so stray scripts get the full
        rule set rather than a silent exemption."""
        parts = set(Path(self.display).parts)
        for kind in ("tests", "benchmarks", "examples"):
            if kind in parts:
                return kind
        return "src"

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _DISABLE_RE.search(line)
            if match:
                self.suppressions.setdefault(lineno, set()).update(
                    _split_ids(match.group(1)))
            match = _DISABLE_FILE_RE.search(line)
            if match:
                self.file_suppressions.update(_split_ids(match.group(1)))

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_suppressions:
            return True
        return finding.rule in self.suppressions.get(finding.line, ())

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _import_aliases(self) -> Dict[str, str]:
        """Local name -> fully dotted module/attribute it is bound to."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".", 1)[0]
                    full = item.name if item.asname else item.name.split(".", 1)[0]
                    aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                # Relative imports resolve inside this package; prefix them
                # so they can never collide with stdlib/numpy patterns.
                base = ("." * node.level) + (node.module or "")
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{base}.{item.name}"
        return aliases

    def full_name(self, node: ast.AST) -> Optional[str]:
        """The fully qualified dotted name of a Name/Attribute chain.

        Resolves the head through the import-alias map: with ``import numpy
        as np``, the call ``np.random.rand(...)`` resolves to
        ``numpy.random.rand``.  Returns ``None`` for anything that is not a
        plain dotted chain (calls, subscripts, literals).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0])
        if head is not None:
            parts[0] = head
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Tree helpers
    # ------------------------------------------------------------------
    def walk(self, *types: Type[ast.AST]) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (parent map built on first use)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def scopes(self) -> Iterator[ast.AST]:
        """The module node plus every function definition (any nesting)."""
        yield self.tree
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk one scope's body without descending into nested functions.

        Nested defs and lambdas are their own scopes — a rule that walks
        per-scope sees each construct exactly once.
        """
        todo = list(ast.iter_child_nodes(scope))
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            todo.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# Discovery and execution
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every Python file under ``paths``, sorted, skipping fixture/cache dirs.

    A path given explicitly is always linted, even inside a skipped
    directory — that is how the fixture tests exercise the rules.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if not SKIPPED_DIRS.intersection(candidate.parts)
                and not any(part.startswith(".") for part in candidate.parts[1:]))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target {path} is neither a "
                                    f"directory nor a Python file")
    seen: Set[Path] = set()
    unique = []
    for candidate in files:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


@dataclass
class LintReport:
    """Outcome of one lint run (see :func:`run_lint`)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run gates green (no new unsuppressed findings)."""
        return not self.findings

    def counts(self) -> Dict[str, int]:
        errors = sum(1 for f in self.findings if f.severity == "error")
        return {"errors": errors, "warnings": len(self.findings) - errors}


def lint_file(path: Path, *, rules: Optional[Sequence[Rule]] = None,
              display: Optional[str] = None) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(findings, suppressed)``, both sorted.

    A file that fails to parse yields one synthetic ``parse-error`` finding
    — a tree the linter cannot read is itself a finding, not a crash.
    """
    display = display if display is not None else Path(path).as_posix()
    try:
        module = LintModule.from_path(path, display=display)
    except SyntaxError as exc:
        return [Finding(rule="parse-error", severity="error", path=display,
                        line=exc.lineno or 1, col=(exc.offset or 0) or 1,
                        message=f"file does not parse: {exc.msg}")], []
    active = all_rules() if rules is None else rules
    found: List[Finding] = []
    for rule in active:
        if module.kind in rule.scopes:
            found.extend(rule.check(module))
    found.sort(key=lambda f: f.sort_key)
    kept = [f for f in found if not module.is_suppressed(f)]
    suppressed = [f for f in found if module.is_suppressed(f)]
    return kept, suppressed


def run_lint(paths: Sequence[Path], *, rules: Optional[Sequence[str]] = None,
             baseline=None) -> LintReport:
    """Lint every Python file under ``paths``.

    ``rules`` selects a subset by name (every registered rule when omitted);
    ``baseline`` is a fingerprint multiset from
    :func:`~repro.lint.findings.load_baseline`.  The report's ``findings``
    are the *new, unsuppressed* ones — the set that gates the exit code.
    """
    active = all_rules(rules)
    report = LintReport()
    for path in iter_python_files(paths):
        found, suppressed = lint_file(path, rules=active)
        report.findings.extend(found)
        report.suppressed.extend(suppressed)
        report.n_files += 1
    report.findings.sort(key=lambda f: f.sort_key)
    report.suppressed.sort(key=lambda f: f.sort_key)
    if baseline:
        report.findings, report.baselined = match_baseline(
            report.findings, baseline)
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(report: LintReport) -> str:
    """The human report: one line per finding plus a deterministic summary."""
    lines = [finding.render() for finding in report.findings]
    counts = report.counts()
    lines.append(
        f"{len(report.findings)} finding(s) "
        f"({counts['errors']} error(s), {counts['warnings']} warning(s)), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined, "
        f"{report.n_files} file(s) checked")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine report (stable key order, byte-identical across runs)."""
    counts = report.counts()
    payload = {
        "version": 1,
        "findings": [f.to_json() for f in report.findings],
        "suppressed": [f.to_json() for f in report.suppressed],
        "baselined": [f.to_json() for f in report.baselined],
        "summary": {
            "errors": counts["errors"],
            "warnings": counts["warnings"],
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "files": report.n_files,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
