"""Scenario registry: named, seeded, parameterized worlds behind one API.

A *scenario* couples a procedural scene factory with the sequence and sensor
defaults that make it a realistic workload: a highway is long, fast and
sparse; a parking lot is short, slow and dense; a noise variant reuses an
existing world but degrades the sensor.  Every scenario is registered under a
unique name so workloads, benchmarks and the CLI can enumerate and build them
uniformly::

    from repro.scenarios import build_sequence, scenario_names

    for name in scenario_names():
        sequence = build_sequence(name, n_frames=4, seed=3)
        ...

Scenario factories take a seed and return a
:class:`~repro.pointcloud.scene.Scene`; everything else (frame count, ego
speed, LiDAR resolution, noise and dropout) lives in the spec's
:class:`ScenarioDefaults` and can be overridden per call, which is what keeps
a single registered world usable at benchmark scale and at test scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..engine.execution import ExecutionConfig
from ..pointcloud.lidar import LidarConfig
from ..pointcloud.scene import Scene, SceneConfig
from ..pointcloud.sequence import DrivingSequence, SequenceConfig

__all__ = [
    "ScenarioDefaults",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "build_scene",
    "build_sequence",
]


@dataclass(frozen=True)
class ScenarioDefaults:
    """Per-scenario sequence and sensor defaults (overridable per call)."""

    seed: int = 7
    n_frames: int = 12
    frame_rate_hz: float = 10.0
    ego_speed_mps: float = 8.0
    n_beams: int = 32
    n_azimuth_steps: int = 360
    range_noise_std: float = 0.02
    dropout_rate: float = 0.02


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: a seeded scene factory plus its defaults.

    Beyond the sensor/sequence defaults a world may pin its own *pipeline*
    behaviour: ``execution`` selects the default search backend and hardware
    mode its end-to-end runs use, and ``pipeline_overrides`` carries keyword
    overrides for :class:`~repro.workloads.pipeline.PipelineRunnerConfig`
    (e.g. an indoor world's preprocessing crop box, a sparse world's
    detection-extent bounds).  Both are defaults only: an explicit config or
    execution passed to ``PipelineRunner.from_scenario`` wins.
    """

    name: str
    description: str
    scene_factory: Callable[[int], Scene]
    defaults: ScenarioDefaults = ScenarioDefaults()
    tags: Tuple[str, ...] = ()
    #: Default execution mode of this world's pipeline runs (``None``: the
    #: global default, baseline batched, functional only).
    execution: Optional[ExecutionConfig] = None
    #: Keyword overrides applied to ``PipelineRunnerConfig`` when no explicit
    #: config is passed (``None``: no overrides).
    pipeline_overrides: Optional[Mapping[str, object]] = None

    def scene(self, seed: Optional[int] = None) -> Scene:
        """Build the scenario's world for ``seed`` (default: the spec's)."""
        return self.scene_factory(self.defaults.seed if seed is None else seed)

    def sequence(self, n_frames: Optional[int] = None, seed: Optional[int] = None,
                 n_beams: Optional[int] = None, n_azimuth_steps: Optional[int] = None,
                 ego_speed_mps: Optional[float] = None) -> DrivingSequence:
        """Build a :class:`DrivingSequence` playing this scenario.

        All parameters default to the spec's :class:`ScenarioDefaults`; the
        LiDAR seed is derived from the scene seed so two sequences with the
        same arguments are bitwise identical.
        """
        d = self.defaults
        seed = d.seed if seed is None else seed
        scene = self.scene_factory(seed)
        config = SequenceConfig(
            n_frames=d.n_frames if n_frames is None else n_frames,
            frame_rate_hz=d.frame_rate_hz,
            ego_speed_mps=d.ego_speed_mps if ego_speed_mps is None else ego_speed_mps,
            scene=SceneConfig(seed=seed),
            lidar=LidarConfig(
                n_beams=d.n_beams if n_beams is None else n_beams,
                n_azimuth_steps=d.n_azimuth_steps if n_azimuth_steps is None
                else n_azimuth_steps,
                range_noise_std=d.range_noise_std,
                dropout_rate=d.dropout_rate,
                seed=seed * 101,
            ),
        )
        return DrivingSequence(config, scene=scene)

    def with_defaults(self, **overrides) -> "ScenarioSpec":
        """A copy of the spec with some :class:`ScenarioDefaults` replaced."""
        return replace(self, defaults=replace(self.defaults, **overrides))


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(name: str, description: str,
                      defaults: Optional[ScenarioDefaults] = None,
                      tags: Tuple[str, ...] = (),
                      execution: Optional[ExecutionConfig] = None,
                      pipeline_overrides: Optional[Mapping[str, object]] = None,
                      ) -> Callable:
    """Decorator registering a seeded scene factory as a scenario.

    ::

        @register_scenario("tunnel", "two-lane road tunnel", tags=("indoor",),
                           execution=ExecutionConfig(backend="bonsai-batched"),
                           pipeline_overrides={"max_detection_extent": 12.0})
        def make_tunnel_scene(seed: int) -> Scene:
            ...
    """

    def decorator(factory: Callable[[int], Scene]) -> Callable[[int], Scene]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            scene_factory=factory,
            defaults=defaults or ScenarioDefaults(),
            tags=tags,
            execution=execution,
            pipeline_overrides=pipeline_overrides,
        )
        return factory

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; raises ``KeyError`` with the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names()) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def build_scene(name: str, seed: Optional[int] = None) -> Scene:
    """Build the named scenario's :class:`Scene`."""
    return get_scenario(name).scene(seed=seed)


def build_sequence(name: str, **overrides) -> DrivingSequence:
    """Build the named scenario's :class:`DrivingSequence` (see ``ScenarioSpec.sequence``)."""
    return get_scenario(name).sequence(**overrides)
