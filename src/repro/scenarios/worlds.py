"""The built-in scenario worlds.

Each factory procedurally builds one world the perception pipeline must
handle — the point of the library is *diversity*: point distributions range
from dense indoor aisles (every leaf crowded) to near-empty rural fields
(most leaves sparse), from canyon-like tunnels (strong coordinate locality,
ideal for leaf compression) to open highways (long thin structures).  All
worlds share the coordinate conventions of the urban seed scene: ground at
``z = -1.8``, the ego sensor at the origin looking down +x, labels drawn
from the same coarse vocabulary (``vehicle``, ``pedestrian``, ``pole``,
``building``, ``clutter``, plus world-specific ones such as ``guardrail`` or
``rack``).

Factories are deterministic in their ``seed`` argument; everything random
goes through one ``numpy`` generator per factory.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..pointcloud.scene import Box, Obstacle, Scene, SceneConfig, make_urban_scene
from .registry import ScenarioDefaults, register_scenario

__all__ = [
    "make_highway_scene",
    "make_parking_lot_scene",
    "make_tunnel_scene",
    "make_warehouse_scene",
    "make_sparse_rural_scene",
]


def _car(center, label: str = "vehicle", size=(4.5, 1.8, 1.6),
         velocity=(0.0, 0.0, 0.0)) -> Obstacle:
    return Obstacle(Box(center=tuple(center), size=tuple(size), label=label),
                    velocity=tuple(velocity))


@register_scenario(
    "urban",
    "Urban block: building facades, parked and moving vehicles, pedestrians, "
    "poles and clutter (the paper's Tier IV-like setting).",
    tags=("outdoor", "dynamic"),
)
def _make_urban(seed: int) -> Scene:
    return make_urban_scene(SceneConfig(seed=seed))


@register_scenario(
    "highway",
    "Multi-lane highway: guardrails, noise barriers, overhead gantries and "
    "fast traffic in both directions.",
    defaults=ScenarioDefaults(ego_speed_mps=25.0),
    tags=("outdoor", "dynamic", "fast"),
)
def make_highway_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    length = 300.0
    half_road = 11.0
    obstacles: List[Obstacle] = []

    # Guardrails: continuous low segments along both shoulders.
    segment = 12.0
    for side in (-1.0, 1.0):
        for i in range(int(length // segment)):
            x = -0.5 * length + (i + 0.5) * segment
            obstacles.append(Obstacle(Box(
                center=(x, side * (half_road + 0.6), -1.4),
                size=(segment, 0.3, 0.8),
                label="guardrail",
            )))

    # Noise barriers on stretches of the right side.
    for i in range(int(length // 30.0)):
        if rng.random() < 0.6:
            x = -0.5 * length + (i + 0.5) * 30.0
            obstacles.append(Obstacle(Box(
                center=(x, half_road + 4.0, 0.2),
                size=(30.0, 0.5, 4.0),
                label="building",
            )))

    # Overhead sign gantries: a beam spanning the road plus two supports.
    for x in np.linspace(-0.35 * length, 0.35 * length, 3):
        obstacles.append(Obstacle(Box(
            center=(float(x), 0.0, 4.3), size=(0.5, 2.0 * half_road + 2.0, 0.9),
            label="building",
        )))
        for side in (-1.0, 1.0):
            obstacles.append(Obstacle(Box(
                center=(float(x), side * (half_road + 0.8), 1.3),
                size=(0.4, 0.4, 6.2), label="pole",
            )))

    # Fast traffic: cars and trucks in four lanes, both directions.
    lanes = (-8.0, -4.5, 4.5, 8.0)
    for _ in range(10):
        lane = float(rng.choice(lanes))
        direction = 1.0 if lane > 0 else -1.0
        x = float(rng.uniform(-0.45, 0.45) * length)
        speed = direction * float(rng.uniform(20.0, 33.0))
        if rng.random() < 0.3:
            obstacles.append(_car((x, lane, -0.3), size=(12.0, 2.5, 3.4),
                                  velocity=(speed, 0.0, 0.0)))
        else:
            obstacles.append(_car((x, lane, -0.9), velocity=(speed, 0.0, 0.0)))

    return Scene(obstacles, extent=320.0, path_length=length)


@register_scenario(
    "parking_lot",
    "Supermarket parking lot: dense rows of parked vehicles, light poles, "
    "stray carts and pedestrians, ego creeping down an aisle.",
    defaults=ScenarioDefaults(ego_speed_mps=3.0),
    tags=("outdoor", "dense", "slow"),
)
def make_parking_lot_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    length = 60.0
    obstacles: List[Obstacle] = []

    # Perimeter wall (low kerb/fence) around the lot.
    for x, y, sx, sy in ((0.0, 24.0, length + 10.0, 0.4), (0.0, -24.0, length + 10.0, 0.4),
                         (35.0, 0.0, 0.4, 48.0), (-35.0, 0.0, 0.4, 48.0)):
        obstacles.append(Obstacle(Box(center=(x, y, -1.2), size=(sx, sy, 1.2),
                                      label="building")))

    # Parked rows flanking the driving aisle (the ego drives along y = 0).
    for row_y in (-18.0, -10.5, 10.5, 18.0):
        for slot in range(16):
            if rng.random() > 0.72:
                continue
            x = -0.5 * length + 2.0 + slot * 3.8 + float(rng.uniform(-0.25, 0.25))
            van = rng.random() < 0.15
            obstacles.append(_car(
                (x, row_y + float(rng.uniform(-0.2, 0.2)), -0.9 if not van else -0.65),
                size=(4.4, 1.8, 1.6) if not van else (5.4, 2.0, 2.3),
            ))

    # Light poles at row ends.
    for x in (-28.0, -14.0, 0.0, 14.0, 28.0):
        for y in (-14.0, 14.0):
            obstacles.append(Obstacle(Box(center=(x, y, 1.2), size=(0.3, 0.3, 6.0),
                                          label="pole")))

    # Stray shopping carts and kerb clutter.
    for _ in range(8):
        x = float(rng.uniform(-28.0, 28.0))
        y = float(rng.choice([-1.0, 1.0])) * float(rng.uniform(4.0, 22.0))
        obstacles.append(Obstacle(Box(center=(x, y, -1.3), size=(0.9, 0.5, 1.0),
                                      label="clutter")))

    # Pedestrians pushing carts towards the store.
    for _ in range(5):
        x = float(rng.uniform(-25.0, 25.0))
        y = float(rng.uniform(-20.0, 20.0))
        walk = float(rng.uniform(-1.2, 1.2))
        obstacles.append(Obstacle(Box(center=(x, y, -1.0), size=(0.5, 0.5, 1.7),
                                      label="pedestrian"),
                         velocity=(walk, float(rng.uniform(-0.5, 0.5)), 0.0)))

    # One car slowly hunting for a slot.
    obstacles.append(_car((12.0, 0.0, -0.9), velocity=(-2.0, 0.0, 0.0)))

    return Scene(obstacles, extent=90.0, path_length=length)


@register_scenario(
    "tunnel",
    "Road tunnel: continuous walls and ceiling enclosing the road, wall "
    "equipment, jet fans and moderate traffic.",
    defaults=ScenarioDefaults(ego_speed_mps=14.0),
    tags=("enclosed", "dynamic"),
)
def make_tunnel_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    length = 160.0
    half_width = 6.2
    ceiling_z = 4.4
    obstacles: List[Obstacle] = []

    segment = 10.0
    n_segments = int(length // segment)
    for i in range(n_segments):
        x = -0.5 * length + (i + 0.5) * segment
        # Side walls reach from the ground to the ceiling.
        for side in (-1.0, 1.0):
            obstacles.append(Obstacle(Box(
                center=(x, side * (half_width + 0.4), 0.5 * (ceiling_z - 1.8)),
                size=(segment, 0.8, ceiling_z + 1.8),
                label="building",
            )))
        # Ceiling slab.
        obstacles.append(Obstacle(Box(
            center=(x, 0.0, ceiling_z + 0.3),
            size=(segment, 2.0 * half_width + 1.6, 0.6),
            label="building",
        )))

    # Wall-mounted equipment cabinets, alternating sides.
    for i in range(8):
        x = -0.5 * length + (i + 0.5) * (length / 8.0)
        side = -1.0 if i % 2 else 1.0
        obstacles.append(Obstacle(Box(
            center=(x + float(rng.uniform(-2.0, 2.0)), side * (half_width - 0.4), -0.4),
            size=(0.8, 0.6, 1.4), label="clutter",
        )))

    # Jet fans hanging from the ceiling.
    for x in (-45.0, 5.0, 55.0):
        obstacles.append(Obstacle(Box(center=(x, 0.0, ceiling_z - 0.7),
                                      size=(3.0, 1.2, 1.2), label="clutter")))

    # Traffic inside the tube.
    for _ in range(4):
        lane = float(rng.choice([-2.8, 2.8]))
        direction = 1.0 if lane < 0 else -1.0
        x = float(rng.uniform(-0.4, 0.4) * length)
        obstacles.append(_car((x, lane, -0.9),
                              velocity=(direction * float(rng.uniform(14.0, 22.0)), 0.0, 0.0)))

    return Scene(obstacles, extent=180.0, path_length=length)


@register_scenario(
    "warehouse_indoor",
    "Indoor warehouse: perimeter walls, shelving racks along aisles, "
    "pallets, support columns, a moving forklift and workers (AGV ego).",
    defaults=ScenarioDefaults(ego_speed_mps=2.0, range_noise_std=0.01,
                              dropout_rate=0.01),
    tags=("indoor", "dense", "slow"),
)
def make_warehouse_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    length = 44.0
    half_width = 16.0
    obstacles: List[Obstacle] = []

    # Perimeter walls.
    wall_height = 8.0
    for x, y, sx, sy in ((0.0, half_width + 0.3, length + 8.0, 0.6),
                         (0.0, -half_width - 0.3, length + 8.0, 0.6),
                         (0.5 * length + 3.0, 0.0, 0.6, 2.0 * half_width + 1.0),
                         (-0.5 * length - 3.0, 0.0, 0.6, 2.0 * half_width + 1.0)):
        obstacles.append(Obstacle(Box(center=(x, y, 0.5 * wall_height - 1.8),
                                      size=(sx, sy, wall_height), label="building")))

    # Shelving racks in rows parallel to the driving aisle (ego runs y = 0).
    for row_y in (-12.0, -7.0, 7.0, 12.0):
        for unit in range(6):
            if rng.random() < 0.1:
                continue  # a missing rack unit opens a cross-aisle
            x = -0.5 * length + 4.0 + unit * 6.5
            obstacles.append(Obstacle(Box(
                center=(x, row_y, 1.2), size=(5.6, 1.4, 6.0), label="rack",
            )))

    # Pallets staged near the racks.
    for _ in range(9):
        x = float(rng.uniform(-18.0, 18.0))
        y = float(rng.choice([-1.0, 1.0])) * float(rng.uniform(3.0, 5.0))
        obstacles.append(Obstacle(Box(center=(x, y, -1.4),
                                      size=(1.2, 1.0, 0.9), label="clutter")))

    # Support columns.
    for x in (-15.0, 0.0, 15.0):
        for y in (-4.0, 4.0):
            obstacles.append(Obstacle(Box(center=(x, y, 2.0), size=(0.5, 0.5, 7.6),
                                          label="pole")))

    # A forklift working the aisle and two pickers.
    obstacles.append(_car((8.0, 2.5, -0.7), size=(2.4, 1.2, 2.2),
                          velocity=(-1.5, 0.0, 0.0)))
    for _ in range(2):
        x = float(rng.uniform(-15.0, 15.0))
        y = float(rng.choice([-1.0, 1.0])) * float(rng.uniform(2.0, 5.0))
        obstacles.append(Obstacle(Box(center=(x, y, -1.0), size=(0.5, 0.5, 1.7),
                                      label="pedestrian"),
                         velocity=(float(rng.uniform(-1.0, 1.0)), 0.0, 0.0)))

    return Scene(obstacles, extent=60.0, path_length=length)


@register_scenario(
    "sparse_rural",
    "Sparse rural road: scattered trees, fence posts, a barn and a tractor "
    "in otherwise open fields (mostly empty leaves).",
    defaults=ScenarioDefaults(ego_speed_mps=12.0),
    tags=("outdoor", "sparse"),
)
def make_sparse_rural_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    length = 240.0
    obstacles: List[Obstacle] = []

    # A barn, a farmhouse and a roadside shed.
    obstacles.append(Obstacle(Box(center=(40.0, 20.0, 1.2), size=(14.0, 9.0, 6.0),
                                  label="building")))
    obstacles.append(Obstacle(Box(center=(-45.0, -26.0, 0.2), size=(9.0, 7.0, 4.0),
                                  label="building")))
    obstacles.append(Obstacle(Box(center=(12.0, 9.0, 0.0), size=(6.0, 4.0, 3.6),
                                  label="building")))

    # Trees: trunk plus canopy.
    for _ in range(12):
        x = float(rng.uniform(-0.48, 0.48) * length)
        y = float(rng.choice([-1.0, 1.0])) * float(rng.uniform(8.0, 30.0))
        obstacles.append(Obstacle(Box(center=(x, y, -0.4), size=(0.45, 0.45, 2.8),
                                      label="pole")))
        obstacles.append(Obstacle(Box(center=(x, y, 2.6),
                                      size=(float(rng.uniform(2.5, 4.0)),
                                            float(rng.uniform(2.5, 4.0)),
                                            float(rng.uniform(2.5, 3.5))),
                                      label="tree")))

    # Fence posts lining both sides of the road.
    for side in (-1.0, 1.0):
        for i in range(12):
            x = -0.5 * length + (i + 0.5) * (length / 12.0)
            obstacles.append(Obstacle(Box(center=(x, side * 6.5, -1.3),
                                          size=(0.18, 0.18, 1.1), label="pole")))

    # Hay bales in the fields.
    for _ in range(5):
        x = float(rng.uniform(-0.4, 0.4) * length)
        y = float(rng.choice([-1.0, 1.0])) * float(rng.uniform(8.0, 28.0))
        obstacles.append(Obstacle(Box(center=(x, y, -1.2), size=(1.5, 1.5, 1.3),
                                      label="clutter")))

    # A tractor trundling along the opposite lane.
    obstacles.append(_car((18.0, -2.6, -0.5), size=(4.8, 2.2, 2.8),
                          velocity=(-5.0, 0.0, 0.0)))

    return Scene(obstacles, extent=260.0, path_length=length)


# ----------------------------------------------------------------------
# Sensor-degradation variants: same worlds, harder measurements.
# ----------------------------------------------------------------------

@register_scenario(
    "urban_heavy_noise",
    "Urban block under heavy range noise (rain/spray): the urban world with "
    "5x the range noise and elevated dropout.",
    defaults=ScenarioDefaults(range_noise_std=0.10, dropout_rate=0.06),
    tags=("outdoor", "dynamic", "variant", "degraded"),
)
def _make_urban_heavy_noise(seed: int) -> Scene:
    return make_urban_scene(SceneConfig(seed=seed))


@register_scenario(
    "rural_dropout",
    "Sparse rural road with severe beam dropout (dust/sensor fault): one in "
    "four returns lost.",
    defaults=ScenarioDefaults(ego_speed_mps=12.0, dropout_rate=0.25),
    tags=("outdoor", "sparse", "variant", "degraded"),
)
def _make_rural_dropout(seed: int) -> Scene:
    return make_sparse_rural_scene(seed)
