"""Scenario library: named, seeded, parameterized worlds behind one registry.

``repro.scenarios`` turns the single synthetic urban block of the seed
reproduction into a workload *suite*: every scenario couples a procedural
:class:`~repro.pointcloud.scene.Scene` factory with sequence/sensor defaults
and registers under a unique name, so pipelines, benchmarks and the CLI can
enumerate them uniformly::

    from repro.scenarios import build_sequence, scenario_names
    sequence = build_sequence("tunnel", n_frames=4, seed=3)

Importing the package registers the built-in worlds (urban, highway,
parking_lot, tunnel, warehouse_indoor, sparse_rural and the degraded-sensor
variants) plus the map-scale family (city_block, multi_level_garage,
highway_corridor), whose scenes also feed
:func:`~repro.scenarios.map_scale.sample_map_cloud` — the vectorised
1M+-point map-cloud sampler behind the sharded index benchmarks.
"""

from .registry import (
    ScenarioDefaults,
    ScenarioSpec,
    all_scenarios,
    build_scene,
    build_sequence,
    get_scenario,
    register_scenario,
    scenario_names,
)
from . import worlds  # noqa: F401  — registers the built-in scenarios
from . import map_scale  # noqa: F401  — registers the map-scale worlds
from .map_scale import build_map_cloud, sample_map_cloud

__all__ = [
    "ScenarioDefaults",
    "ScenarioSpec",
    "all_scenarios",
    "build_map_cloud",
    "build_scene",
    "build_sequence",
    "get_scenario",
    "register_scenario",
    "sample_map_cloud",
    "scenario_names",
]
