"""Map-scale scenario family: worlds big enough to stress L2 capacity.

The original worlds are single-intersection scale — a LiDAR frame of tens of
thousands of points whose tree fits comfortably inside a 1 MB L2, which
leaves the ``l2-*`` cut of the cache-sensitivity sweep compulsory-miss
dominated and flat.  The three worlds here describe *maps*, not frames: a
multi-block city grid, a three-storey parking structure and a long highway
corridor.  They register like any other scenario (the pipeline, golden
harness and CLI pick them up by name), and :func:`sample_map_cloud` turns
any scene into a 1M+-point static map cloud — sampled **vectorised** over
obstacle surfaces, no per-point Python loop — for the
:class:`~repro.engine.sharded.ShardedPointCloudIndex` and the map-scale
cache-geometry sweep (:mod:`repro.analysis.map_scale`).

Determinism: factories and the sampler are pure functions of their seed;
one ``numpy`` generator drives every random draw in document order.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..pointcloud.scene import Box, Obstacle, Scene
from .registry import ScenarioDefaults, get_scenario, register_scenario

__all__ = [
    "make_city_block_scene",
    "make_multi_level_garage_scene",
    "make_highway_corridor_scene",
    "sample_map_cloud",
    "build_map_cloud",
]


# ----------------------------------------------------------------------
# Vectorised map-cloud sampling
# ----------------------------------------------------------------------
def _box_face_areas(box: Box) -> np.ndarray:
    """Areas of the box's four vertical faces and its top (sampling weights)."""
    sx, sy, sz = box.size
    return np.array([sy * sz, sy * sz, sx * sz, sx * sz, sx * sy],
                    dtype=np.float64)


def _sample_box_surface(rng: np.random.Generator, box: Box,
                        n_points: int) -> np.ndarray:
    """Vectorised counterpart of :meth:`Box.sample_surface` (same faces).

    The per-point loop of the frame-scale sampler is fine for a LiDAR
    return budget but prohibitive at map scale; this draws all ``n_points``
    with whole-array operations.  (Draw-for-draw it is a different random
    stream than the loop version — map clouds are a new artefact, not a
    re-sampling of frames.)
    """
    cx, cy, cz = box.center
    sx, sy, sz = box.size
    areas = _box_face_areas(box)
    total = areas.sum()
    if total <= 0.0:
        return np.tile(np.asarray(box.center, dtype=np.float64), (n_points, 1))
    faces = rng.choice(5, size=n_points, p=areas / total)
    u = rng.uniform(-0.5, 0.5, size=n_points)
    v = rng.uniform(-0.5, 0.5, size=n_points)
    points = np.empty((n_points, 3), dtype=np.float64)
    for face, coords in enumerate((
            lambda m: (cx - 0.5 * sx, cy + u[m] * sy, cz + v[m] * sz),
            lambda m: (cx + 0.5 * sx, cy + u[m] * sy, cz + v[m] * sz),
            lambda m: (cx + u[m] * sx, cy - 0.5 * sy, cz + v[m] * sz),
            lambda m: (cx + u[m] * sx, cy + 0.5 * sy, cz + v[m] * sz),
            lambda m: (cx + u[m] * sx, cy + v[m] * sy, cz + 0.5 * sz),
    )):
        mask = faces == face
        if mask.any():
            x, y, z = coords(mask)
            points[mask, 0] = x
            points[mask, 1] = y
            points[mask, 2] = z
    return points


def sample_map_cloud(scene: Scene, n_points: int, seed: int = 0, *,
                     ground_fraction: float = 0.35,
                     t: float = 0.0) -> np.ndarray:
    """Sample a static ``(n_points, 3)`` float32 map cloud from a scene.

    Points are split between the ground plane (``ground_fraction`` of the
    budget, uniform over the scene extent) and the obstacle surfaces (the
    rest, proportional to surface area), so big worlds yield the spatially
    extended, surface-concentrated distributions real map clouds have —
    exactly what makes grid tiles meaningful.  Deterministic in ``seed``;
    ``t`` places moving obstacles (default: their initial pose).
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    rng = np.random.default_rng(seed)
    boxes = scene.boxes_at(t)
    areas = np.array([_box_face_areas(box).sum() for box in boxes],
                     dtype=np.float64)
    n_ground = int(round(n_points * ground_fraction)) if areas.sum() > 0 \
        else n_points
    n_surface = n_points - n_ground
    parts: List[np.ndarray] = []
    if n_surface > 0 and areas.sum() > 0:
        counts = rng.multinomial(n_surface, areas / areas.sum())
        for box, count in zip(boxes, counts):
            if count:
                parts.append(_sample_box_surface(rng, box, int(count)))
    if n_ground > 0:
        half = 0.5 * scene.extent
        ground = np.empty((n_ground, 3), dtype=np.float64)
        ground[:, 0] = rng.uniform(-half, half, size=n_ground)
        ground[:, 1] = rng.uniform(-half, half, size=n_ground)
        ground[:, 2] = scene.ground_z
        parts.append(ground)
    if not parts:
        return np.empty((0, 3), dtype=np.float32)
    return np.concatenate(parts).astype(np.float32)


def build_map_cloud(scenario: str, n_points: int,
                    seed: Optional[int] = None, **kwargs) -> np.ndarray:
    """Sample the named scenario's map cloud (see :func:`sample_map_cloud`).

    ``seed`` drives both the scene build and the sampling; it defaults to
    the scenario's registered default seed.
    """
    spec = get_scenario(scenario)
    seed = spec.defaults.seed if seed is None else seed
    return sample_map_cloud(spec.scene(seed=seed), n_points, seed=seed,
                            **kwargs)


# ----------------------------------------------------------------------
# The worlds
# ----------------------------------------------------------------------
@register_scenario(
    "city_block",
    "Multi-block city grid: rows of building facades around a street grid, "
    "parked cars along every kerb, poles at the corners — the canonical "
    "map-scale relocalization world.",
    defaults=ScenarioDefaults(ego_speed_mps=9.0),
    tags=("outdoor", "map-scale"),
)
def make_city_block_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    obstacles: List[Obstacle] = []
    block = 44.0          # building block pitch (centre to centre)
    street = 14.0         # street width between blocks
    n_x, n_y = 4, 3       # blocks along / across the ego street

    for bx in range(n_x):
        for by in range(n_y):
            # Block corner layout centred so the ego street is y = 0.
            x0 = (bx - 0.5 * (n_x - 1)) * (block + street)
            y0 = (by - 0.5 * (n_y - 1)) * (block + street) + 0.5 * (block + street)
            # Four facade strips around each block, varied heights.
            for cx, cy, sx, sy in (
                    (x0, y0 - 0.5 * block, block, 6.0),
                    (x0, y0 + 0.5 * block, block, 6.0),
                    (x0 - 0.5 * block, y0, 6.0, block - 12.0),
                    (x0 + 0.5 * block, y0, 6.0, block - 12.0)):
                height = float(rng.uniform(7.0, 18.0))
                obstacles.append(Obstacle(Box(
                    center=(cx, cy, 0.5 * height - 1.8),
                    size=(sx, sy, height), label="building")))
            # Corner poles (traffic lights / street lamps).
            for dx, dy in ((-1, -1), (-1, 1), (1, -1), (1, 1)):
                obstacles.append(Obstacle(Box(
                    center=(x0 + dx * 0.5 * (block + 4.0),
                            y0 + dy * 0.5 * (block + 4.0), 1.2),
                    size=(0.3, 0.3, 6.0), label="pole")))

    # Parked cars along the ego street and the first cross streets.
    span = 0.5 * n_x * (block + street)
    for _ in range(36):
        side = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(-span, span))
        obstacles.append(Obstacle(Box(
            center=(x, side * (0.5 * street - 1.4), -0.9),
            size=(4.4, 1.8, 1.6), label="vehicle")))

    # Kerbside clutter (bins, hydrants).
    for _ in range(16):
        x = float(rng.uniform(-span, span))
        side = float(rng.choice([-1.0, 1.0]))
        size = float(rng.uniform(0.4, 0.9))
        obstacles.append(Obstacle(Box(
            center=(x, side * (0.5 * street + 1.2), -1.8 + 0.5 * size),
            size=(size, size, size), label="clutter")))

    length = n_x * (block + street)
    return Scene(obstacles, extent=float(n_y * (block + street) + 60.0),
                 path_length=length)


@register_scenario(
    "multi_level_garage",
    "Three-storey parking structure: floor slabs, pillar grids, perimeter "
    "walls and dense parked rows on every level; ego creeping on the "
    "ground floor.",
    defaults=ScenarioDefaults(ego_speed_mps=2.5),
    tags=("enclosed", "dense", "slow", "map-scale"),
)
def make_multi_level_garage_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    obstacles: List[Obstacle] = []
    length, depth = 70.0, 34.0
    level_height = 3.2
    n_levels = 3

    for level in range(n_levels):
        z0 = -1.8 + level * level_height
        # Ceiling slab of this level (= floor of the next).
        obstacles.append(Obstacle(Box(
            center=(0.0, 0.0, z0 + level_height - 0.15),
            size=(length, depth, 0.3), label="building")))
        # Pillar grid.
        for x in np.linspace(-0.5 * length + 4.0, 0.5 * length - 4.0, 8):
            for y in (-0.5 * depth + 3.0, -4.0, 4.0, 0.5 * depth - 3.0):
                obstacles.append(Obstacle(Box(
                    center=(float(x), float(y), z0 + 0.5 * level_height),
                    size=(0.5, 0.5, level_height), label="pole")))
        # Parked rows flanking the central aisle.
        for row_y in (-0.5 * depth + 6.5, 0.5 * depth - 6.5):
            for slot in range(14):
                if rng.random() > 0.8:
                    continue
                x = -0.5 * length + 4.0 + slot * 4.6 \
                    + float(rng.uniform(-0.3, 0.3))
                obstacles.append(Obstacle(Box(
                    center=(x, row_y + float(rng.uniform(-0.2, 0.2)),
                            z0 + 0.8), size=(4.4, 1.8, 1.6),
                    label="vehicle")))

    # Perimeter walls (full height).
    total_height = n_levels * level_height
    for cx, cy, sx, sy in ((0.0, 0.5 * depth, length, 0.4),
                           (0.0, -0.5 * depth, length, 0.4),
                           (0.5 * length, 0.0, 0.4, depth),
                           (-0.5 * length, 0.0, 0.4, depth)):
        obstacles.append(Obstacle(Box(
            center=(cx, cy, -1.8 + 0.5 * total_height),
            size=(sx, sy, total_height), label="building")))

    return Scene(obstacles, extent=110.0, path_length=length)


@register_scenario(
    "highway_corridor",
    "Long highway corridor: 600 m of guardrails, noise barriers, gantries, "
    "embankment clutter and sparse fast traffic — a thin, extremely "
    "elongated map.",
    defaults=ScenarioDefaults(ego_speed_mps=30.0),
    tags=("outdoor", "fast", "sparse", "map-scale"),
)
def make_highway_corridor_scene(seed: int) -> Scene:
    rng = np.random.default_rng(seed)
    obstacles: List[Obstacle] = []
    length = 600.0
    half_road = 12.0
    segment = 20.0

    # Continuous guardrails along both shoulders.
    for side in (-1.0, 1.0):
        for i in range(int(length // segment)):
            x = -0.5 * length + (i + 0.5) * segment
            obstacles.append(Obstacle(Box(
                center=(x, side * (half_road + 0.6), -1.4),
                size=(segment, 0.3, 0.8), label="guardrail")))

    # Noise-barrier stretches, alternating sides.
    for i in range(int(length // 40.0)):
        if rng.random() < 0.55:
            x = -0.5 * length + (i + 0.5) * 40.0
            side = float(rng.choice([-1.0, 1.0]))
            obstacles.append(Obstacle(Box(
                center=(x, side * (half_road + 4.5), 0.5),
                size=(40.0, 0.5, 4.6), label="building")))

    # Overhead gantries every ~120 m.
    for x in np.linspace(-0.42 * length, 0.42 * length, 5):
        obstacles.append(Obstacle(Box(
            center=(float(x), 0.0, 4.4),
            size=(0.5, 2.0 * half_road + 2.0, 0.9), label="building")))
        for side in (-1.0, 1.0):
            obstacles.append(Obstacle(Box(
                center=(float(x), side * (half_road + 0.8), 1.3),
                size=(0.4, 0.4, 6.4), label="pole")))

    # Embankment clutter (reflector posts, emergency phones).
    for _ in range(24):
        x = float(rng.uniform(-0.48, 0.48) * length)
        side = float(rng.choice([-1.0, 1.0]))
        obstacles.append(Obstacle(Box(
            center=(x, side * (half_road + 2.2), -1.2),
            size=(0.3, 0.3, 1.2), label="clutter")))

    # Sparse fast traffic.
    lanes = (-8.5, -4.5, 4.5, 8.5)
    for _ in range(12):
        lane = float(rng.choice(lanes))
        direction = 1.0 if lane > 0 else -1.0
        x = float(rng.uniform(-0.45, 0.45) * length)
        speed = direction * float(rng.uniform(22.0, 34.0))
        truck = rng.random() < 0.25
        obstacles.append(Obstacle(Box(
            center=(x, lane, -0.3 if truck else -0.9),
            size=(13.0, 2.5, 3.4) if truck else (4.6, 1.9, 1.7),
            label="vehicle"), velocity=(speed, 0.0, 0.0)))

    return Scene(obstacles, extent=640.0, path_length=length)
