"""Driving sequence generation and frame sub-sampling.

The paper evaluates on 20 systematically sub-sampled windows of 300 ms each
from an eight-minute driving sequence (60 frames at 10 Hz total).  This
module generates an analogous synthetic sequence (ego vehicle driving down an
urban block while other actors move) and implements the same systematic
sub-sampling scheme, so the benchmarks can mirror the paper's methodology at a
scale that a pure-Python pipeline can process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .cloud import PointCloud
from .lidar import Lidar, LidarConfig
from .scene import Scene, SceneConfig, make_urban_scene

__all__ = ["SequenceConfig", "DrivingSequence", "systematic_subsample", "default_sequence"]


@dataclass
class SequenceConfig:
    """Parameters of the synthetic driving sequence."""

    n_frames: int = 60
    frame_rate_hz: float = 10.0
    ego_speed_mps: float = 8.0
    scene: SceneConfig = field(default_factory=SceneConfig)
    lidar: LidarConfig = field(default_factory=LidarConfig)

    @property
    def duration_s(self) -> float:
        """Total wall-clock duration covered by the sequence."""
        return self.n_frames / self.frame_rate_hz


class DrivingSequence:
    """Lazy generator of LiDAR frames along a straight ego trajectory.

    By default the sequence plays the procedural urban scene; any other
    :class:`~repro.pointcloud.scene.Scene` (e.g. one built by the scenario
    library, :mod:`repro.scenarios`) can be injected through ``scene``, in
    which case ``config.scene`` only seeds the default and the ego wrap
    length comes from the scene's ``path_length``.
    """

    def __init__(self, config: Optional[SequenceConfig] = None,
                 scene: Optional[Scene] = None):
        self.config = config or SequenceConfig()
        self.scene: Scene = scene if scene is not None else make_urban_scene(self.config.scene)
        self.lidar = Lidar(self.config.lidar)

    def __len__(self) -> int:
        return self.config.n_frames

    @property
    def path_length(self) -> float:
        """Length of the wrapped ego path along +x."""
        if self.scene.path_length is not None:
            return self.scene.path_length
        return self.config.scene.road_length

    def ego_position(self, index: int) -> np.ndarray:
        """Ground-truth sensor origin (world frame) at frame ``index``.

        This is the pose the localization workloads recover; the x coordinate
        wraps modulo :attr:`path_length` exactly as :meth:`frame` places the
        sensor.
        """
        if not 0 <= index < len(self):
            raise IndexError(f"frame index {index} out of range [0, {len(self)})")
        t = index / self.config.frame_rate_hz
        ego_x = self.config.ego_speed_mps * t
        length = self.path_length
        ego_x = ((ego_x + 0.5 * length) % length) - 0.5 * length
        return np.array([ego_x, 0.0, 0.0])

    def frame(self, index: int) -> PointCloud:
        """Generate frame ``index`` (0-based)."""
        if not 0 <= index < len(self):
            raise IndexError(f"frame index {index} out of range [0, {len(self)})")
        t = index / self.config.frame_rate_hz
        # Keep the ego vehicle inside the drivable stretch by wrapping.
        ego = self.ego_position(index)
        cloud = self.lidar.scan(
            self.scene, t=t, ego_position=tuple(ego), frame_index=index
        )
        cloud.timestamp = t
        return cloud

    def frames(self, indices: Optional[Sequence[int]] = None) -> Iterator[PointCloud]:
        """Iterate frames, optionally restricted to ``indices``."""
        if indices is None:
            indices = range(len(self))
        for index in indices:
            yield self.frame(index)


def systematic_subsample(n_frames: int, n_samples: int, sample_length: int) -> List[int]:
    """Systematic (equally spaced, fixed-size) frame sub-sampling.

    Mirrors the paper's methodology (Section V-A): ``n_samples`` windows of
    ``sample_length`` consecutive frames, equally spaced across the sequence.
    Returns the sorted list of selected frame indices.
    """
    if n_samples <= 0 or sample_length <= 0:
        raise ValueError("n_samples and sample_length must be positive")
    if n_samples * sample_length > n_frames:
        raise ValueError(
            f"cannot draw {n_samples} windows of {sample_length} frames "
            f"from a {n_frames}-frame sequence"
        )
    stride = n_frames / n_samples
    indices: List[int] = []
    for window in range(n_samples):
        start = int(round(window * stride))
        start = min(start, n_frames - sample_length)
        for offset in range(sample_length):
            indices.append(start + offset)
    return sorted(set(indices))


def default_sequence(n_frames: int = 12, seed: int = 7,
                     n_beams: int = 32, n_azimuth_steps: int = 360) -> DrivingSequence:
    """A compact sequence sized for the pure-Python benchmark harness."""
    config = SequenceConfig(
        n_frames=n_frames,
        scene=SceneConfig(seed=seed),
        lidar=LidarConfig(n_beams=n_beams, n_azimuth_steps=n_azimuth_steps, seed=seed * 101),
    )
    return DrivingSequence(config)
