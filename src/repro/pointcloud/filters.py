"""Point cloud pre-processing filters.

Autoware's euclidean-cluster node does not feed raw LiDAR returns straight
into clustering: the cloud is cropped, the ground plane is removed, and a
voxel-grid filter thins the data.  These filters are reproduced here so the
workload pipelines exercise the same structure the paper profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .cloud import PointCloud

__all__ = [
    "voxel_grid_filter",
    "crop_box_filter",
    "remove_ground_plane",
    "range_filter",
    "PreprocessConfig",
    "preprocess_for_clustering",
]


def voxel_grid_filter(cloud: PointCloud, leaf_size: float) -> PointCloud:
    """Downsample by keeping one centroid per occupied voxel.

    Matches PCL's ``VoxelGrid`` behaviour: points are bucketed into cubic
    voxels of edge ``leaf_size`` and each occupied voxel contributes the
    centroid of its points.
    """
    if leaf_size <= 0.0:
        raise ValueError("leaf_size must be positive")
    if cloud.is_empty:
        return PointCloud(frame_id=cloud.frame_id, timestamp=cloud.timestamp)

    points = cloud.points.astype(np.float64)
    coords = np.floor(points / leaf_size).astype(np.int64)
    # Unique voxel per point; centroid per voxel.
    _, inverse, counts = np.unique(coords, axis=0, return_inverse=True, return_counts=True)
    sums = np.zeros((counts.shape[0], 3), dtype=np.float64)
    np.add.at(sums, inverse, points)
    centroids = sums / counts[:, None]
    return PointCloud(centroids.astype(np.float32), cloud.frame_id, cloud.timestamp)


def crop_box_filter(cloud: PointCloud,
                    minimum: Sequence[float],
                    maximum: Sequence[float],
                    negative: bool = False) -> PointCloud:
    """Keep points inside (or outside, if ``negative``) an axis-aligned box."""
    minimum = np.asarray(minimum, dtype=np.float64)
    maximum = np.asarray(maximum, dtype=np.float64)
    if np.any(minimum > maximum):
        raise ValueError("crop box minimum exceeds maximum")
    points = cloud.points.astype(np.float64)
    inside = np.all((points >= minimum) & (points <= maximum), axis=1)
    mask = ~inside if negative else inside
    return PointCloud(cloud.points[mask], cloud.frame_id, cloud.timestamp)


def remove_ground_plane(cloud: PointCloud, ground_z: float = -1.6,
                        tolerance: float = 0.25) -> PointCloud:
    """Drop points within ``tolerance`` of the (known, flat) ground height.

    Autoware uses RANSAC or ray-based ground filters; for the synthetic flat
    scenes the ground height is known, so a height threshold reproduces the
    same effect (removing the dominant connected surface that would otherwise
    merge all clusters).
    """
    points = cloud.points
    keep = points[:, 2] > (ground_z + tolerance)
    return PointCloud(points[keep], cloud.frame_id, cloud.timestamp)


def range_filter(cloud: PointCloud, min_range: float = 0.0,
                 max_range: float = np.inf) -> PointCloud:
    """Keep points whose distance to the origin lies in ``[min_range, max_range]``."""
    if min_range > max_range:
        raise ValueError("min_range exceeds max_range")
    distances = np.linalg.norm(cloud.points.astype(np.float64), axis=1)
    keep = (distances >= min_range) & (distances <= max_range)
    return PointCloud(cloud.points[keep], cloud.frame_id, cloud.timestamp)


@dataclass
class PreprocessConfig:
    """Pre-processing pipeline parameters for the clustering workload."""

    crop_min: Tuple[float, float, float] = (-60.0, -30.0, -2.5)
    crop_max: Tuple[float, float, float] = (60.0, 30.0, 4.0)
    ground_z: float = -1.8
    ground_tolerance: float = 0.3
    voxel_leaf_size: float = 0.3
    min_range: float = 1.0
    max_range: float = 120.0


def preprocess_for_clustering(cloud: PointCloud,
                              config: Optional[PreprocessConfig] = None) -> PointCloud:
    """Apply the Autoware-style pre-processing chain before clustering."""
    config = config or PreprocessConfig()
    out = range_filter(cloud, config.min_range, config.max_range)
    out = crop_box_filter(out, config.crop_min, config.crop_max)
    out = remove_ground_plane(out, config.ground_z, config.ground_tolerance)
    if config.voxel_leaf_size > 0.0:
        out = voxel_grid_filter(out, config.voxel_leaf_size)
    return out
