"""Point cloud substrate: containers, synthetic LiDAR, scenes and filters."""

from .cloud import BoundingBox, PointCloud
from .filters import (
    PreprocessConfig,
    crop_box_filter,
    preprocess_for_clustering,
    range_filter,
    remove_ground_plane,
    voxel_grid_filter,
)
from .io import load_npz, load_pcd, save_npz, save_pcd
from .lidar import HDL64E_RANGE_M, Lidar, LidarConfig
from .scene import Box, Obstacle, Scene, SceneConfig, make_urban_scene
from .sequence import DrivingSequence, SequenceConfig, default_sequence, systematic_subsample

__all__ = [
    "BoundingBox",
    "PointCloud",
    "PreprocessConfig",
    "crop_box_filter",
    "preprocess_for_clustering",
    "range_filter",
    "remove_ground_plane",
    "voxel_grid_filter",
    "load_npz",
    "load_pcd",
    "save_npz",
    "save_pcd",
    "HDL64E_RANGE_M",
    "Lidar",
    "LidarConfig",
    "Box",
    "Obstacle",
    "Scene",
    "SceneConfig",
    "make_urban_scene",
    "DrivingSequence",
    "SequenceConfig",
    "default_sequence",
    "systematic_subsample",
]
