"""Point cloud serialisation.

Two formats are supported:

* NPZ — compact NumPy archive used for caching generated frames between
  benchmark runs.
* ASCII PCD — the Point Cloud Data format used by PCL/Autoware, so clouds
  produced here can be inspected with standard tooling (and PCD files from
  real sensors can be loaded if available).
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from .cloud import PointCloud

__all__ = ["save_npz", "load_npz", "save_pcd", "load_pcd"]

PathLike = Union[str, os.PathLike]


def save_npz(path: PathLike, cloud: PointCloud) -> None:
    """Write ``cloud`` to an ``.npz`` archive."""
    np.savez_compressed(
        path,
        points=cloud.points,
        frame_id=np.array(cloud.frame_id),
        timestamp=np.array(cloud.timestamp),
    )


def load_npz(path: PathLike) -> PointCloud:
    """Load a cloud previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        points = data["points"]
        frame_id = str(data["frame_id"])
        timestamp = float(data["timestamp"])
    return PointCloud(points, frame_id=frame_id, timestamp=timestamp)


def save_pcd(path: PathLike, cloud: PointCloud) -> None:
    """Write ``cloud`` as an ASCII PCD v0.7 file (fields x y z)."""
    n = len(cloud)
    header = [
        "# .PCD v0.7 - Point Cloud Data file format",
        "VERSION 0.7",
        "FIELDS x y z",
        "SIZE 4 4 4",
        "TYPE F F F",
        "COUNT 1 1 1",
        f"WIDTH {n}",
        "HEIGHT 1",
        "VIEWPOINT 0 0 0 1 0 0 0",
        f"POINTS {n}",
        "DATA ascii",
    ]
    with open(path, "w", encoding="ascii") as handle:
        handle.write("\n".join(header) + "\n")
        for x, y, z in cloud.points:
            handle.write(f"{float(x):.6f} {float(y):.6f} {float(z):.6f}\n")


def load_pcd(path: PathLike) -> PointCloud:
    """Load an ASCII PCD file containing at least x, y, z fields."""
    fields: List[str] = []
    n_points = 0
    data_started = False
    rows: List[List[float]] = []
    with open(path, "r", encoding="ascii") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if data_started:
                values = line.split()
                rows.append([float(v) for v in values])
                continue
            key, _, rest = line.partition(" ")
            key = key.upper()
            if key == "FIELDS":
                fields = rest.split()
            elif key == "POINTS":
                n_points = int(rest)
            elif key == "DATA":
                if rest.strip().lower() != "ascii":
                    raise ValueError("only ASCII PCD files are supported")
                data_started = True
    if not fields:
        raise ValueError("PCD file missing FIELDS header")
    try:
        ix, iy, iz = fields.index("x"), fields.index("y"), fields.index("z")
    except ValueError as exc:
        raise ValueError("PCD file must contain x, y and z fields") from exc
    if len(rows) != n_points:
        raise ValueError(
            f"PCD header announces {n_points} points but file contains {len(rows)}"
        )
    array = np.asarray(rows, dtype=np.float64)
    if array.size == 0:
        return PointCloud()
    return PointCloud(array[:, [ix, iy, iz]].astype(np.float32))
