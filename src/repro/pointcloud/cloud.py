"""Point cloud container used throughout the reproduction.

A :class:`PointCloud` is a thin, validated wrapper over an ``(N, 3)`` float32
array of XYZ coordinates, matching PCL's ``PointCloud<PointXYZ>`` semantics
(32-bit coordinates, points appended in sensor order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PointCloud", "BoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a set of 3D points."""

    minimum: np.ndarray
    maximum: np.ndarray

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            raise ValueError("cannot build a bounding box from an empty point set")
        return cls(points.min(axis=0), points.max(axis=0))

    @property
    def extent(self) -> np.ndarray:
        """Edge lengths of the box along each axis."""
        return self.maximum - self.minimum

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the box."""
        return 0.5 * (self.minimum + self.maximum)

    @property
    def volume(self) -> float:
        """Volume of the box (0 for degenerate boxes)."""
        return float(np.prod(np.maximum(self.extent, 0.0)))

    def contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside the box (inclusive)."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.minimum) and np.all(p <= self.maximum))

    def widest_dimension(self) -> int:
        """Index of the axis with the largest extent (PCL's split criterion)."""
        return int(np.argmax(self.extent))


class PointCloud:
    """An ordered collection of 3D points with float32 storage.

    Parameters
    ----------
    points:
        Anything convertible to an ``(N, 3)`` array.  Coordinates are stored
        as float32, matching the baseline representation in PCL/Autoware.
    frame_id:
        Optional identifier of the sensor frame the cloud was captured in.
    timestamp:
        Optional capture time in seconds.
    """

    __slots__ = ("_points", "frame_id", "timestamp")

    def __init__(
        self,
        points: Optional[Iterable[Sequence[float]]] = None,
        frame_id: str = "lidar",
        timestamp: float = 0.0,
    ):
        if points is None:
            self._points = np.empty((0, 3), dtype=np.float32)
        else:
            array = np.asarray(points, dtype=np.float32)
            if array.ndim == 1 and array.size == 0:
                array = array.reshape(0, 3)
            if array.ndim != 2 or array.shape[1] != 3:
                raise ValueError(
                    f"points must form an (N, 3) array, got shape {array.shape}"
                )
            self._points = np.ascontiguousarray(array, dtype=np.float32)
        self.frame_id = frame_id
        self.timestamp = float(timestamp)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._points.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def __getitem__(self, index) -> np.ndarray:
        return self._points[index]

    def __repr__(self) -> str:
        return (
            f"PointCloud(n_points={len(self)}, frame_id={self.frame_id!r}, "
            f"timestamp={self.timestamp})"
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The underlying ``(N, 3)`` float32 coordinate array."""
        return self._points

    @property
    def xyz(self) -> np.ndarray:
        """Alias of :attr:`points` for readability in math-heavy code."""
        return self._points

    @property
    def is_empty(self) -> bool:
        """Whether the cloud holds no points."""
        return len(self) == 0

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of all points."""
        return BoundingBox.from_points(self._points)

    def byte_size(self, bytes_per_point: int = 16) -> int:
        """Memory footprint of the stored points.

        PCL stores ``PointXYZ`` as four 32-bit floats (x, y, z, padding), so
        the default is 16 bytes per point.
        """
        return len(self) * bytes_per_point

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translated(self, offset: Sequence[float]) -> "PointCloud":
        """A copy of the cloud with ``offset`` added to every point."""
        offset = np.asarray(offset, dtype=np.float32)
        return PointCloud(self._points + offset, self.frame_id, self.timestamp)

    def transformed(self, rotation: np.ndarray, translation: Sequence[float]) -> "PointCloud":
        """A copy of the cloud under a rigid transform ``R @ p + t``."""
        rotation = np.asarray(rotation, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise ValueError("rotation must be a 3x3 matrix")
        translation = np.asarray(translation, dtype=np.float64)
        pts = self._points.astype(np.float64) @ rotation.T + translation
        return PointCloud(pts.astype(np.float32), self.frame_id, self.timestamp)

    def subsampled(self, indices: Sequence[int]) -> "PointCloud":
        """A copy holding only the points at ``indices`` (order preserved)."""
        return PointCloud(self._points[np.asarray(indices, dtype=np.intp)],
                          self.frame_id, self.timestamp)

    def concatenated(self, other: "PointCloud") -> "PointCloud":
        """A new cloud holding this cloud's points followed by ``other``'s."""
        return PointCloud(
            np.vstack([self._points, other.points]), self.frame_id, self.timestamp
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def max_range(self) -> float:
        """Largest euclidean distance of any point to the origin."""
        if self.is_empty:
            return 0.0
        return float(np.max(np.linalg.norm(self._points.astype(np.float64), axis=1)))

    def distances_to(self, query: Sequence[float]) -> np.ndarray:
        """Euclidean distance of every point to ``query``."""
        query = np.asarray(query, dtype=np.float64)
        return np.linalg.norm(self._points.astype(np.float64) - query, axis=1)

    def brute_force_radius_search(self, query: Sequence[float], radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``query`` (reference impl)."""
        d = self.distances_to(query)
        return np.nonzero(d <= radius)[0]
