"""Procedural driving scenes used to feed the synthetic LiDAR model.

The paper stimulates the euclidean-cluster node with an eight-minute LiDAR
driving sequence from Tier IV.  That data set is not redistributable, so this
module builds a deterministic synthetic substitute: an urban block populated
with ground, building facades, parked and moving vehicles, pedestrians, poles
and low clutter.  What the compression scheme cares about is preserved —
points come from surfaces at bounded range with strong spatial locality, so
k-d tree leaves group points whose coordinates share sign/exponent fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Obstacle",
    "Box",
    "Scene",
    "SceneConfig",
    "make_urban_scene",
]


@dataclass(frozen=True)
class Box:
    """An axis-aligned box obstacle (vehicle, building segment, pedestrian)."""

    center: Tuple[float, float, float]
    size: Tuple[float, float, float]
    label: str = "box"

    @property
    def minimum(self) -> np.ndarray:
        return np.asarray(self.center, dtype=np.float64) - 0.5 * np.asarray(self.size)

    @property
    def maximum(self) -> np.ndarray:
        return np.asarray(self.center, dtype=np.float64) + 0.5 * np.asarray(self.size)

    def translated(self, offset: Sequence[float]) -> "Box":
        offset = np.asarray(offset, dtype=np.float64)
        return Box(tuple(np.asarray(self.center) + offset), self.size, self.label)

    def sample_surface(self, rng: np.random.Generator, n_points: int) -> np.ndarray:
        """Uniformly sample points on the box's vertical faces and top."""
        cx, cy, cz = self.center
        sx, sy, sz = self.size
        points = np.empty((n_points, 3), dtype=np.float64)
        # Face areas: 2 along x, 2 along y, 1 top (ground-facing face ignored).
        areas = np.array([sy * sz, sy * sz, sx * sz, sx * sz, sx * sy])
        probs = areas / areas.sum()
        faces = rng.choice(5, size=n_points, p=probs)
        u = rng.uniform(-0.5, 0.5, size=n_points)
        v = rng.uniform(-0.5, 0.5, size=n_points)
        for i, face in enumerate(faces):
            if face == 0:
                points[i] = (cx - 0.5 * sx, cy + u[i] * sy, cz + v[i] * sz)
            elif face == 1:
                points[i] = (cx + 0.5 * sx, cy + u[i] * sy, cz + v[i] * sz)
            elif face == 2:
                points[i] = (cx + u[i] * sx, cy - 0.5 * sy, cz + v[i] * sz)
            elif face == 3:
                points[i] = (cx + u[i] * sx, cy + 0.5 * sy, cz + v[i] * sz)
            else:
                points[i] = (cx + u[i] * sx, cy + v[i] * sy, cz + 0.5 * sz)
        return points


@dataclass
class Obstacle:
    """A scene object: a box plus a constant velocity (for moving actors)."""

    box: Box
    velocity: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def at_time(self, t: float) -> Box:
        """The obstacle's box displaced to time ``t`` (seconds)."""
        offset = np.asarray(self.velocity, dtype=np.float64) * t
        return self.box.translated(offset)


@dataclass
class SceneConfig:
    """Parameters controlling procedural scene generation."""

    seed: int = 7
    road_length: float = 120.0
    road_width: float = 16.0
    n_parked_vehicles: int = 8
    n_moving_vehicles: int = 3
    n_pedestrians: int = 6
    n_poles: int = 10
    n_clutter: int = 12
    building_setback: float = 10.0
    building_height: float = 9.0


class Scene:
    """A static + dynamic collection of obstacles over a ground plane.

    ``path_length`` is the length (metres) of the drivable stretch along +x;
    the ego vehicle's position wraps modulo this length when a
    :class:`~repro.pointcloud.sequence.DrivingSequence` plays the scene.
    ``None`` falls back to the sequence's ``SceneConfig.road_length``, which
    keeps the historical urban-scene behaviour.
    """

    def __init__(self, obstacles: List[Obstacle], ground_z: float = -1.8,
                 extent: float = 130.0, path_length: Optional[float] = None):
        self.obstacles = obstacles
        self.ground_z = float(ground_z)
        self.extent = float(extent)
        self.path_length = float(path_length) if path_length is not None else None

    def boxes_at(self, t: float) -> List[Box]:
        """All obstacle boxes displaced to time ``t``."""
        return [obstacle.at_time(t) for obstacle in self.obstacles]

    def labels(self) -> List[str]:
        """Labels of all obstacles in scene order."""
        return [obstacle.box.label for obstacle in self.obstacles]

    def count_by_label(self, label: str) -> int:
        """Number of obstacles carrying ``label``."""
        return sum(1 for obstacle in self.obstacles if obstacle.box.label == label)


def make_urban_scene(config: Optional[SceneConfig] = None) -> Scene:
    """Build a deterministic urban driving scene.

    The ego vehicle (the LiDAR origin) sits at the world origin looking down
    +x.  The scene contains:

    * two building facades flanking the road,
    * parked vehicles along the kerbs,
    * a few moving vehicles ahead of and behind the ego vehicle,
    * pedestrians on the footpaths,
    * poles and small clutter objects.
    """
    config = config or SceneConfig()
    rng = np.random.default_rng(config.seed)
    obstacles: List[Obstacle] = []

    half_road = 0.5 * config.road_width
    wall_y = half_road + config.building_setback

    # Building facades: a row of abutting box segments on each side.
    segment_length = 12.0
    n_segments = int(config.road_length // segment_length)
    for side in (-1.0, 1.0):
        for i in range(n_segments):
            x = -0.5 * config.road_length + (i + 0.5) * segment_length
            depth = float(rng.uniform(4.0, 8.0))
            height = config.building_height * float(rng.uniform(0.7, 1.3))
            obstacles.append(
                Obstacle(
                    Box(
                        center=(x, side * (wall_y + 0.5 * depth), 0.5 * height - 1.8),
                        size=(segment_length, depth, height),
                        label="building",
                    )
                )
            )

    # Parked vehicles hugging the kerbs.
    for _ in range(config.n_parked_vehicles):
        side = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(-0.45, 0.45) * config.road_length)
        obstacles.append(
            Obstacle(
                Box(
                    center=(x, side * (half_road - 1.2), -0.9),
                    size=(4.4, 1.8, 1.6),
                    label="vehicle",
                )
            )
        )

    # Moving vehicles in the travel lanes.
    for _ in range(config.n_moving_vehicles):
        lane = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(8.0, 0.45 * config.road_length))
        speed = float(rng.uniform(4.0, 12.0)) * (1.0 if lane < 0 else -1.0)
        obstacles.append(
            Obstacle(
                Box(
                    center=(x * (1.0 if lane < 0 else -1.0), lane * 2.2, -0.9),
                    size=(4.6, 1.9, 1.7),
                    label="vehicle",
                ),
                velocity=(speed, 0.0, 0.0),
            )
        )

    # Pedestrians on the footpaths.
    for _ in range(config.n_pedestrians):
        side = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(-0.4, 0.4) * config.road_length)
        walk = float(rng.uniform(-1.4, 1.4))
        obstacles.append(
            Obstacle(
                Box(
                    center=(x, side * (half_road + 2.0), -1.0),
                    size=(0.5, 0.5, 1.7),
                    label="pedestrian",
                ),
                velocity=(walk, 0.0, 0.0),
            )
        )

    # Poles (street lights / signs).
    for _ in range(config.n_poles):
        side = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(-0.48, 0.48) * config.road_length)
        obstacles.append(
            Obstacle(
                Box(
                    center=(x, side * (half_road + 1.0), 1.0),
                    size=(0.25, 0.25, 5.5),
                    label="pole",
                )
            )
        )

    # Low clutter (bins, hydrants, boxes).
    for _ in range(config.n_clutter):
        side = float(rng.choice([-1.0, 1.0]))
        x = float(rng.uniform(-0.48, 0.48) * config.road_length)
        size = float(rng.uniform(0.4, 1.0))
        obstacles.append(
            Obstacle(
                Box(
                    center=(x, side * float(rng.uniform(half_road + 0.8, wall_y - 1.0)),
                            -1.8 + 0.5 * size),
                    size=(size, size, size),
                    label="clutter",
                )
            )
        )

    return Scene(obstacles, path_length=config.road_length)
