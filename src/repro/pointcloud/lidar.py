"""Synthetic spinning-LiDAR model (Velodyne HDL-64E class).

The paper's compression argument rests on two physical properties of the
sensor: a bounded maximum range (~120 m for the HDL-64E) and dense, locally
smooth sampling of surfaces.  This module ray-casts a :class:`~repro.pointcloud.scene.Scene`
with a configurable number of vertical beams and azimuth steps, adds range
noise, and returns a :class:`~repro.pointcloud.cloud.PointCloud` whose
statistics (range distribution, surface locality) match what the real sensor
would produce for such a scene.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .cloud import PointCloud
from .scene import Box, Scene

__all__ = ["LidarConfig", "Lidar", "HDL64E_RANGE_M"]

#: Maximum operating range of the Velodyne HDL-64E referenced in the paper.
HDL64E_RANGE_M = 120.0


@dataclass
class LidarConfig:
    """Sampling pattern and noise model of the synthetic sensor.

    The real HDL-64E has 64 beams and ~0.17 degree azimuth resolution; the
    defaults here are coarser so that a full Autoware-like pipeline (which is
    pure Python in this reproduction) stays tractable, while preserving the
    surface locality the compression exploits.
    """

    n_beams: int = 32
    n_azimuth_steps: int = 360
    vertical_fov_deg: Tuple[float, float] = (-24.8, 2.0)
    max_range: float = HDL64E_RANGE_M
    min_range: float = 1.0
    range_noise_std: float = 0.02
    sensor_height: float = 0.0
    dropout_rate: float = 0.02
    seed: int = 1234


class Lidar:
    """Ray-casting LiDAR simulator over box scenes plus a ground plane."""

    def __init__(self, config: Optional[LidarConfig] = None):
        self.config = config or LidarConfig()
        self._directions = self._build_directions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def scan(self, scene: Scene, t: float = 0.0,
             ego_position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
             frame_index: int = 0) -> PointCloud:
        """Produce one point cloud frame of ``scene`` at time ``t``.

        ``ego_position`` is the sensor origin in world coordinates; returned
        points are expressed in the sensor frame (origin at the sensor), which
        is the coordinate convention the paper's compression relies on (the
        sensor's bounded range bounds the coordinates).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + frame_index)
        origin = np.asarray(ego_position, dtype=np.float64)
        origin = origin + np.array([0.0, 0.0, cfg.sensor_height])

        ranges = np.full(self._directions.shape[0], np.inf)

        ground_t = self._intersect_ground(origin, scene.ground_z)
        ranges = np.minimum(ranges, ground_t)

        for box in scene.boxes_at(t):
            ranges = np.minimum(ranges, self._intersect_box(origin, box))

        hit = np.isfinite(ranges) & (ranges >= cfg.min_range) & (ranges <= cfg.max_range)
        if cfg.dropout_rate > 0.0:
            keep = rng.random(ranges.shape[0]) >= cfg.dropout_rate
            hit &= keep

        hit_ranges = ranges[hit]
        if cfg.range_noise_std > 0.0:
            hit_ranges = hit_ranges + rng.normal(0.0, cfg.range_noise_std, hit_ranges.shape)
            hit_ranges = np.clip(hit_ranges, cfg.min_range, cfg.max_range)

        points = self._directions[hit] * hit_ranges[:, None]
        points[:, 2] += cfg.sensor_height
        return PointCloud(points.astype(np.float32), frame_id="lidar", timestamp=float(t))

    @property
    def n_rays(self) -> int:
        """Total number of rays per revolution."""
        return self._directions.shape[0]

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _build_directions(self) -> np.ndarray:
        cfg = self.config
        elevations = np.deg2rad(
            np.linspace(cfg.vertical_fov_deg[0], cfg.vertical_fov_deg[1], cfg.n_beams)
        )
        azimuths = np.linspace(0.0, 2.0 * np.pi, cfg.n_azimuth_steps, endpoint=False)
        elev_grid, azim_grid = np.meshgrid(elevations, azimuths, indexing="ij")
        cos_e = np.cos(elev_grid)
        directions = np.stack(
            [
                cos_e * np.cos(azim_grid),
                cos_e * np.sin(azim_grid),
                np.sin(elev_grid),
            ],
            axis=-1,
        ).reshape(-1, 3)
        return directions

    def _intersect_ground(self, origin: np.ndarray, ground_z: float) -> np.ndarray:
        dz = self._directions[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (ground_z - origin[2]) / dz
        t = np.where((dz < -1e-9) & (t > 0.0), t, np.inf)
        return t

    def _intersect_box(self, origin: np.ndarray, box: Box) -> np.ndarray:
        """Slab-method ray/AABB intersection for all rays at once."""
        minimum = box.minimum - origin
        maximum = box.maximum - origin
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / self._directions
        t1 = minimum[None, :] * inv
        t2 = maximum[None, :] * inv
        t_near = np.nanmax(np.minimum(t1, t2), axis=1)
        t_far = np.nanmin(np.maximum(t1, t2), axis=1)
        hit = (t_far >= t_near) & (t_far > 0.0)
        entry = np.where(t_near > 0.0, t_near, t_far)
        return np.where(hit, entry, np.inf)
