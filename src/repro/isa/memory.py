"""Byte-addressable memory for the functional ISA model.

The Bonsai instructions move data between memory, the ZipPts buffer and the
vector register file.  This sparse paged memory backs the functional machine:
it supports raw byte reads/writes plus typed helpers for 32-bit floats (the
point array) and counts every access so the machine's load/store statistics
can be checked against the micro-op expansion.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["SparseMemory", "MemoryAccessCounters"]

_PAGE_SIZE = 4096


@dataclass
class MemoryAccessCounters:
    """Raw access counters of the functional memory."""

    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.loads = 0
        self.stores = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0


class SparseMemory:
    """A sparse, paged, byte-addressable memory."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self.counters = MemoryAccessCounters()

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        if address < 0 or size < 0:
            raise ValueError("address and size must be non-negative")
        self.counters.loads += 1
        self.counters.bytes_loaded += size
        return bytes(self._get_byte(address + i) for i in range(size))

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        if address < 0:
            raise ValueError("address must be non-negative")
        self.counters.stores += 1
        self.counters.bytes_stored += len(data)
        for i, byte in enumerate(data):
            self._set_byte(address + i, byte)

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def write_float32(self, address: int, value: float) -> None:
        """Store one 32-bit float."""
        self.write(address, struct.pack("<f", np.float32(value)))

    def read_float32(self, address: int) -> float:
        """Load one 32-bit float."""
        return float(struct.unpack("<f", self.read(address, 4))[0])

    def write_point_fp32(self, address: int, point: Sequence[float],
                         stride: int = 16) -> None:
        """Store a PointXYZ record (x, y, z as fp32; stride defaults to 16 B)."""
        data = struct.pack("<fff", *(np.float32(c) for c in point))
        padding = b"\x00" * max(stride - 12, 0)
        self.write(address, data + padding)

    def read_point_fp32(self, address: int) -> np.ndarray:
        """Load the x, y, z fields of a PointXYZ record."""
        return np.array(struct.unpack("<fff", self.read(address, 12)), dtype=np.float64)

    def write_points_fp32(self, base_address: int, points: Iterable[Sequence[float]],
                          stride: int = 16) -> int:
        """Store a contiguous array of PointXYZ records; returns bytes written."""
        count = 0
        for i, point in enumerate(points):
            self.write_point_fp32(base_address + i * stride, point, stride)
            count += 1
        return count * stride

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get_byte(self, address: int) -> int:
        page = self._pages.get(address // _PAGE_SIZE)
        if page is None:
            return 0
        return page[address % _PAGE_SIZE]

    def _set_byte(self, address: int, value: int) -> None:
        page_index = address // _PAGE_SIZE
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_index] = page
        page[address % _PAGE_SIZE] = value & 0xFF
