"""The ZipPts buffer and its compress/decompress logic (Section IV-B).

The ZipPts buffer holds up to sixteen 3D points in 16-bit representation plus
three compression-flag bits, and exchanges data with memory and the vector
register file in 128-bit slices.  The compress/decompress logic re-arranges
the bits between the "expanded" view (per-point fp16 coordinates) and the
compressed Figure 6 layout; this module implements both directions on top of
:mod:`repro.core.leaf_compression`, so the ISA model and the library-level
compression share one codec.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.floatfmt import FLOAT16, FloatFormat
from ..core.leaf_compression import (
    MAX_POINTS_PER_LEAF,
    ZIPPTS_SLICE_BYTES,
    CompressedLeaf,
    compress_leaf,
    decompress_leaf,
)

__all__ = ["ZipPtsBuffer"]


class ZipPtsBuffer:
    """Functional model of the ZipPts buffer.

    The buffer has two modes of content:

    * *expanded*: up to 16 points stored as reduced-precision coordinates
      (what LDSPZPB fills and what decompression produces);
    * *compressed*: the packed Figure 6 byte layout (what CPRZPB produces and
      what the LDDCP load micro-operations fill).
    """

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self._points = np.full((MAX_POINTS_PER_LEAF, 3), np.nan, dtype=np.float64)
        self._occupied = np.zeros(MAX_POINTS_PER_LEAF, dtype=bool)
        self._compressed: Optional[CompressedLeaf] = None

    # ------------------------------------------------------------------
    # Expanded view
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of occupied point slots."""
        return int(self._occupied.sum())

    @property
    def capacity(self) -> int:
        """Maximum number of points the buffer can hold."""
        return MAX_POINTS_PER_LEAF

    def clear(self) -> None:
        """Reset the buffer (both views)."""
        self._points[:] = np.nan
        self._occupied[:] = False
        self._compressed = None

    def load_point(self, index: int, point_fp32) -> None:
        """Place one point into slot ``index``, converting fp32 -> reduced format.

        This is what one LDSPZPB instruction does.
        """
        if not 0 <= index < MAX_POINTS_PER_LEAF:
            raise IndexError(
                f"ZipPts slot {index} out of range [0, {MAX_POINTS_PER_LEAF})"
            )
        point = np.asarray(point_fp32, dtype=np.float64)
        if point.shape != (3,):
            raise ValueError("a point must have exactly three coordinates")
        for c in range(3):
            self._points[index, c] = self.fmt.round_trip(float(point[c]))
        self._occupied[index] = True
        self._compressed = None

    def points(self, n_points: Optional[int] = None) -> np.ndarray:
        """The reduced-precision points currently held (first ``n_points`` slots)."""
        count = self.n_points if n_points is None else n_points
        return np.array(self._points[:count], dtype=np.float64)

    # ------------------------------------------------------------------
    # Compress / decompress logic
    # ------------------------------------------------------------------
    def compress(self, n_points: int) -> CompressedLeaf:
        """Compress the first ``n_points`` slots (CPRZPB)."""
        if n_points < 1 or n_points > MAX_POINTS_PER_LEAF:
            raise ValueError("n_points must be in [1, 16]")
        if not np.all(self._occupied[:n_points]):
            raise ValueError("cannot compress: some of the first n_points slots are empty")
        compressed = compress_leaf(
            self._points[:n_points].astype(np.float32), self.fmt
        )
        self._compressed = compressed
        return compressed

    def load_compressed(self, data: bytes, n_points: int) -> None:
        """Fill the buffer with compressed bytes from memory (LDDCP load µops)."""
        if len(data) % ZIPPTS_SLICE_BYTES != 0:
            raise ValueError("compressed data must be a whole number of 128-bit slices")
        n_slices = len(data) // ZIPPTS_SLICE_BYTES
        max_slices = self.max_slices()
        if n_slices > max_slices:
            raise ValueError(
                f"{n_slices} slices exceed the ZipPts buffer capacity of {max_slices}"
            )
        # Flags live in the first bits of the stream; reconstruct them so the
        # CompressedLeaf metadata matches the payload.
        first_byte = data[0]
        flags = (bool(first_byte & 0x80), bool(first_byte & 0x40), bool(first_byte & 0x20))
        from ..core.leaf_compression import compressed_size_bits

        payload_bits = compressed_size_bits(n_points, flags, self.fmt)
        self._compressed = CompressedLeaf(
            data=data,
            n_points=n_points,
            flags=flags,
            payload_bits=payload_bits,
            fmt_name=self.fmt.name,
        )
        self._occupied[:] = False

    def decompress(self) -> np.ndarray:
        """Expand the compressed content back into point slots (LDDCP decompress µop)."""
        if self._compressed is None:
            raise ValueError("ZipPts buffer holds no compressed structure")
        values = decompress_leaf(self._compressed, self.fmt)
        self._points[: values.shape[0]] = values
        self._occupied[: values.shape[0]] = True
        self._occupied[values.shape[0]:] = False
        return values

    # ------------------------------------------------------------------
    # Slice interface
    # ------------------------------------------------------------------
    def compressed_slices(self) -> List[bytes]:
        """The compressed content as 128-bit slices (what STZPB stores)."""
        if self._compressed is None:
            raise ValueError("ZipPts buffer holds no compressed structure")
        data = self._compressed.data
        return [
            data[offset: offset + ZIPPTS_SLICE_BYTES]
            for offset in range(0, len(data), ZIPPTS_SLICE_BYTES)
        ]

    @property
    def compressed(self) -> Optional[CompressedLeaf]:
        """The compressed structure currently held, if any."""
        return self._compressed

    def max_slices(self) -> int:
        """Capacity of the buffer in 128-bit slices (16 uncompressed points)."""
        bits = MAX_POINTS_PER_LEAF * 3 * self.fmt.total_bits + 3
        n_bytes = (bits + 7) // 8
        return (n_bytes + ZIPPTS_SLICE_BYTES - 1) // ZIPPTS_SLICE_BYTES
