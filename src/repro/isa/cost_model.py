"""Instruction-count cost model of baseline vs. Bonsai radius search.

The gem5 experiments of the paper report whole-kernel instruction counts.
The pure-Python pipeline cannot execute ARM code, so this module maps the
*functional* counters gathered during radius search (leaf visits, points
examined, slices loaded, inconclusive classifications, traversal steps) to
estimated dynamic instruction counts, using per-event instruction budgets
derived from the structure of PCL's radius search loop and from the paper's
own micro-op expansion (Table II, Section IV-C).

The absolute budgets are first-order estimates; what the benchmarks rely on
is that both the baseline and the Bonsai models use the *same* budgets for
the shared work (traversal, result handling), so relative changes track the
functional difference — the quantity the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bonsai_search import BonsaiStats
from ..kdtree.radius_search import SearchStats

__all__ = ["InstructionBudget", "InstructionEstimate", "estimate_baseline",
           "estimate_bonsai", "BONSAI_FU_OPS_PER_LEAF_VISIT"]

#: Operations executed on the added Bonsai units per visited compressed
#: leaf: 12 SQDWEx (four lanes x three coordinates) plus one
#: (de)compression micro-operation.  Shared by every workload's energy
#: accounting so the per-stage figures stay comparable.
BONSAI_FU_OPS_PER_LEAF_VISIT = 13


@dataclass(frozen=True)
class InstructionBudget:
    """Per-event dynamic instruction budgets (instructions per event).

    The per-result and spill budgets model the parts of PCL's radius search
    that are unchanged by K-D Bonsai (pushing indices and squared distances
    into the output vectors, scalar-loop temporaries) — they are what dilutes
    the per-point savings down to the whole-kernel relative changes Figure 9a
    reports.
    """

    #: Interior-node step: compare, select child, push/pop bookkeeping.
    traversal_step: int = 14
    #: Per-leaf fixed overhead in the baseline leaf loop.
    leaf_overhead: int = 10
    #: Baseline per-point work: load index, load 3 coords, 3 sub/mul/add, compare, branch.
    baseline_per_point: int = 15
    #: Baseline loads per point: one index load + one (vectorised) point load.
    baseline_loads_per_point: int = 2
    #: Baseline stores per examined point: squared-distance temporary and
    #: scalar-loop spills that the vectorised Bonsai path keeps in registers.
    baseline_stores_per_point: float = 0.5
    #: Bonsai stores per classified point (intermediate vector spills).
    bonsai_stores_per_point: float = 0.05
    #: Per-result bookkeeping (push index + squared distance into the output
    #: vectors, identical in both configurations).
    per_result: int = 10
    #: Loads per result (output-vector capacity checks / reallocation amortised).
    loads_per_result: int = 2
    #: Stores per result (index push + distance push).
    stores_per_result: int = 2
    #: Bonsai per-leaf fixed overhead (read ref, set up LDDCP, accumulate).
    bonsai_leaf_overhead: int = 18
    #: Bonsai per-slice cost (one LDDCP load micro-op each).
    bonsai_per_slice: int = 1
    #: Bonsai per-point vector work amortised per point:
    #: 12 SQDWEx per 16 points plus accumulate/compare.
    bonsai_per_point: int = 6
    #: Extra instructions for each inconclusive (recomputed) point.
    recompute_per_point: int = 30
    #: Loads for each recomputed point (index + original 32-bit point).
    recompute_loads_per_point: int = 2


@dataclass
class InstructionEstimate:
    """Estimated dynamic instruction mix for one kernel execution."""

    instructions: int
    loads: int
    stores: int

    def relative_to(self, baseline: "InstructionEstimate") -> dict:
        """Relative change of each metric w.r.t. ``baseline`` (e.g. -0.16)."""
        def rel(new: int, old: int) -> float:
            return (new - old) / old if old else 0.0

        return {
            "instructions": rel(self.instructions, baseline.instructions),
            "loads": rel(self.loads, baseline.loads),
            "stores": rel(self.stores, baseline.stores),
        }


def estimate_baseline(stats: SearchStats,
                      budget: InstructionBudget = InstructionBudget()) -> InstructionEstimate:
    """Instruction estimate of the baseline radius-search kernel."""
    instructions = (
        stats.interior_visited * budget.traversal_step
        + stats.leaves_visited * budget.leaf_overhead
        + stats.points_examined * budget.baseline_per_point
        + stats.points_in_radius * budget.per_result
    )
    loads = (
        stats.interior_visited  # node record
        + stats.points_examined * budget.baseline_loads_per_point
        + stats.points_in_radius * budget.loads_per_result
    )
    stores = int(
        stats.points_in_radius * budget.stores_per_result
        + stats.points_examined * budget.baseline_stores_per_point
    )
    return InstructionEstimate(instructions=instructions, loads=loads, stores=stores)


def estimate_bonsai(stats: SearchStats, bonsai: BonsaiStats,
                    budget: InstructionBudget = InstructionBudget()) -> InstructionEstimate:
    """Instruction estimate of the Bonsai radius-search kernel."""
    instructions = (
        stats.interior_visited * budget.traversal_step
        + bonsai.leaf_visits * budget.bonsai_leaf_overhead
        + bonsai.slices_loaded * budget.bonsai_per_slice
        + bonsai.points_classified * budget.bonsai_per_point
        + bonsai.inconclusive * budget.recompute_per_point
        + stats.points_in_radius * budget.per_result
    )
    loads = (
        stats.interior_visited
        + bonsai.slices_loaded
        + bonsai.inconclusive * budget.recompute_loads_per_point
        + stats.points_in_radius * budget.loads_per_result
    )
    stores = int(
        stats.points_in_radius * budget.stores_per_result
        + bonsai.points_classified * budget.bonsai_stores_per_point
    )
    return InstructionEstimate(instructions=instructions, loads=loads, stores=stores)
