"""Binary encoding, assembly and disassembly of the Bonsai-extensions.

The paper injects its new instructions into PCL by emitting raw byte-code
through the ``.inst`` directive of the ARM assembler (Section V-A), i.e. each
Bonsai instruction has a fixed 32-bit encoding living in an unused region of
the AArch64 opcode space.  This module defines such an encoding, plus a tiny
assembler/disassembler, so instruction streams can be serialised the same way
a modified library would emit them:

* 8-bit major opcode (``0xE0 | minor``) selecting the Bonsai group and the
  specific instruction;
* three 5-bit register fields (scalar or vector index, depending on the
  instruction);
* a 6-bit immediate used for slice counts;
* the remaining bits are zero and reserved.

The encoding is synthetic (the paper does not publish bit layouts) but it is
complete and reversible, which is what the tests verify.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .instructions import (
    CPRZPB,
    LDDCP,
    LDSPZPB,
    SQDWEH,
    SQDWEL,
    STZPB,
    BonsaiInstruction,
)

__all__ = [
    "BONSAI_MAJOR_OPCODE",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
    "assemble",
    "assemble_program",
    "disassemble",
    "InstructionEncodingError",
]

#: Top byte shared by every Bonsai-extension encoding (an unused AArch64 region).
BONSAI_MAJOR_OPCODE = 0xE6

_MINOR_OPCODES = {
    "LDSPZPB": 0x0,
    "CPRZPB": 0x1,
    "STZPB": 0x2,
    "LDDCP": 0x3,
    "SQDWEL": 0x4,
    "SQDWEH": 0x5,
}
_MNEMONIC_BY_MINOR = {value: key for key, value in _MINOR_OPCODES.items()}

_REG_FIELD_BITS = 5
_IMM_FIELD_BITS = 6


class InstructionEncodingError(ValueError):
    """Raised when an instruction or word cannot be (de)coded."""


def _check_register(value: int, name: str) -> int:
    if not 0 <= value < (1 << _REG_FIELD_BITS):
        raise InstructionEncodingError(
            f"{name}={value} does not fit the {_REG_FIELD_BITS}-bit register field"
        )
    return value


def _check_immediate(value: int, name: str) -> int:
    if not 0 <= value < (1 << _IMM_FIELD_BITS):
        raise InstructionEncodingError(
            f"{name}={value} does not fit the {_IMM_FIELD_BITS}-bit immediate field"
        )
    return value


def _pack(minor: int, ra: int = 0, rb: int = 0, rc: int = 0, imm: int = 0) -> int:
    word = (BONSAI_MAJOR_OPCODE << 24) | (minor << 21)
    word |= _check_register(ra, "ra") << 16
    word |= _check_register(rb, "rb") << 11
    word |= _check_register(rc, "rc") << 6
    word |= _check_immediate(imm, "imm")
    return word


def _unpack(word: int) -> Tuple[int, int, int, int, int]:
    minor = (word >> 21) & 0x7
    ra = (word >> 16) & 0x1F
    rb = (word >> 11) & 0x1F
    rc = (word >> 6) & 0x1F
    imm = word & 0x3F
    return minor, ra, rb, rc, imm


def encode_instruction(instruction: BonsaiInstruction) -> int:
    """Encode one Bonsai instruction into its 32-bit word."""
    mnemonic = instruction.mnemonic
    minor = _MINOR_OPCODES.get(mnemonic)
    if minor is None:
        raise InstructionEncodingError(f"unknown Bonsai instruction {instruction!r}")
    if mnemonic == "LDSPZPB":
        return _pack(minor, ra=instruction.r_index, rb=instruction.r_addr)
    if mnemonic == "CPRZPB":
        return _pack(minor, ra=instruction.r_size, rb=instruction.r_num_pts)
    if mnemonic == "STZPB":
        return _pack(minor, ra=instruction.r_addr, imm=instruction.n_slices)
    if mnemonic == "LDDCP":
        return _pack(minor, ra=instruction.v_base, rb=instruction.r_num_pts,
                     rc=instruction.r_addr, imm=instruction.n_slices)
    # SQDWEL / SQDWEH share the four-register form; v_b rides in the immediate
    # field's upper bits would not fit, so it uses the rc field and v_error the
    # immediate (both are register indices < 32 < 64).
    return _pack(minor, ra=instruction.v_sq_diff, rb=instruction.v_a,
                 rc=instruction.v_b, imm=instruction.v_error)


def decode_instruction(word: int) -> BonsaiInstruction:
    """Decode a 32-bit word back into a Bonsai instruction."""
    if (word >> 24) & 0xFF != BONSAI_MAJOR_OPCODE:
        raise InstructionEncodingError(
            f"word 0x{word:08x} does not carry the Bonsai major opcode "
            f"0x{BONSAI_MAJOR_OPCODE:02x}"
        )
    minor, ra, rb, rc, imm = _unpack(word)
    mnemonic = _MNEMONIC_BY_MINOR.get(minor)
    if mnemonic is None:
        raise InstructionEncodingError(f"unknown Bonsai minor opcode {minor}")
    if mnemonic == "LDSPZPB":
        return LDSPZPB(r_index=ra, r_addr=rb)
    if mnemonic == "CPRZPB":
        return CPRZPB(r_size=ra, r_num_pts=rb)
    if mnemonic == "STZPB":
        return STZPB(r_addr=ra, n_slices=imm)
    if mnemonic == "LDDCP":
        return LDDCP(v_base=ra, r_num_pts=rb, r_addr=rc, n_slices=imm)
    if mnemonic == "SQDWEL":
        return SQDWEL(v_sq_diff=ra, v_error=imm, v_a=rb, v_b=rc)
    return SQDWEH(v_sq_diff=ra, v_error=imm, v_a=rb, v_b=rc)


def encode_program(program: Iterable[BonsaiInstruction]) -> bytes:
    """Encode an instruction sequence into little-endian byte-code.

    This is the byte string a modified PCL would emit through consecutive
    ``.inst`` directives.
    """
    words = [encode_instruction(instruction) for instruction in program]
    return b"".join(word.to_bytes(4, "little") for word in words)


def decode_program(byte_code: bytes) -> List[BonsaiInstruction]:
    """Decode little-endian byte-code back into an instruction list."""
    if len(byte_code) % 4 != 0:
        raise InstructionEncodingError("byte-code length must be a multiple of 4")
    instructions = []
    for offset in range(0, len(byte_code), 4):
        word = int.from_bytes(byte_code[offset:offset + 4], "little")
        instructions.append(decode_instruction(word))
    return instructions


# ----------------------------------------------------------------------
# Textual assembly
# ----------------------------------------------------------------------
_OPERAND_PATTERN = re.compile(r"[xvr](\d+)|#(\d+)|\[\s*[xr](\d+)\s*\]", re.IGNORECASE)


def _parse_operands(text: str) -> List[int]:
    values: List[int] = []
    for match in _OPERAND_PATTERN.finditer(text):
        for group in match.groups():
            if group is not None:
                values.append(int(group))
                break
    return values


def assemble(line: str) -> BonsaiInstruction:
    """Assemble one line of Bonsai assembly into an instruction.

    Syntax mirrors Table II, e.g.::

        LDSPZPB x1, [x2]
        CPRZPB  x4, x3
        STZPB   [x5], #4
        LDDCP   v8, x6, [x7], #4
        SQDWEL  v2, v3, v1, v9
    """
    stripped = line.split("//")[0].strip()
    if not stripped:
        raise InstructionEncodingError("cannot assemble an empty line")
    mnemonic, _, rest = stripped.partition(" ")
    mnemonic = mnemonic.upper()
    operands = _parse_operands(rest)

    def need(count: int) -> None:
        if len(operands) != count:
            raise InstructionEncodingError(
                f"{mnemonic} expects {count} operands, got {len(operands)}: {line!r}"
            )

    if mnemonic == "LDSPZPB":
        need(2)
        return LDSPZPB(r_index=operands[0], r_addr=operands[1])
    if mnemonic == "CPRZPB":
        need(2)
        return CPRZPB(r_size=operands[0], r_num_pts=operands[1])
    if mnemonic == "STZPB":
        need(2)
        return STZPB(r_addr=operands[0], n_slices=operands[1])
    if mnemonic == "LDDCP":
        need(4)
        return LDDCP(v_base=operands[0], r_num_pts=operands[1], r_addr=operands[2],
                     n_slices=operands[3])
    if mnemonic == "SQDWEL":
        need(4)
        return SQDWEL(v_sq_diff=operands[0], v_error=operands[1], v_a=operands[2],
                      v_b=operands[3])
    if mnemonic == "SQDWEH":
        need(4)
        return SQDWEH(v_sq_diff=operands[0], v_error=operands[1], v_a=operands[2],
                      v_b=operands[3])
    raise InstructionEncodingError(f"unknown mnemonic {mnemonic!r}")


def assemble_program(source: str) -> List[BonsaiInstruction]:
    """Assemble a multi-line program (blank lines and // comments ignored)."""
    instructions = []
    for line in source.splitlines():
        stripped = line.split("//")[0].strip()
        if stripped:
            instructions.append(assemble(stripped))
    return instructions


def disassemble(instruction: BonsaiInstruction) -> str:
    """Render an instruction back into Table II style assembly text."""
    mnemonic = instruction.mnemonic
    if mnemonic == "LDSPZPB":
        return f"LDSPZPB x{instruction.r_index}, [x{instruction.r_addr}]"
    if mnemonic == "CPRZPB":
        return f"CPRZPB x{instruction.r_size}, x{instruction.r_num_pts}"
    if mnemonic == "STZPB":
        return f"STZPB [x{instruction.r_addr}], #{instruction.n_slices}"
    if mnemonic == "LDDCP":
        return (f"LDDCP v{instruction.v_base}, x{instruction.r_num_pts}, "
                f"[x{instruction.r_addr}], #{instruction.n_slices}")
    return (f"{mnemonic} v{instruction.v_sq_diff}, v{instruction.v_error}, "
            f"v{instruction.v_a}, v{instruction.v_b}")
