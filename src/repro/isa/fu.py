"""The approximate square-of-differences functional unit (Figures 7 and 8).

One FU takes a 32-bit operand ``A`` (a query coordinate) and a 16-bit operand
``B'`` (a decompressed leaf coordinate), extends ``B'`` to 32-bit without
changing its value, and produces both ``(A - B')²`` and the worst-case error
``max(εsd)``.  The error terms ``2·|max(δB)|`` and ``max(δB)²`` come from the
32-entry ``part_error_mem`` lookup table indexed by the exponent of ``B'``.

Four FUs operate in parallel on the four 32-bit SIMD lanes of the baseline
CPU; :class:`VectorSquareDiffUnit` models that arrangement, processing either
the low or the high half of an eight-lane 16-bit vector register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.error_model import PartErrorTable
from ..core.floatfmt import FLOAT16, FloatFormat

__all__ = ["SquareDiffErrorFU", "VectorSquareDiffUnit", "FU_LANES"]

#: Number of 32-bit lanes processed per SQDWEL/SQDWEH instruction.
FU_LANES = 4


@dataclass
class FUActivity:
    """Operation counters of the functional units (feeds the energy model)."""

    operations: int = 0
    table_lookups: int = 0


class SquareDiffErrorFU:
    """A single (A - B')² with-error functional unit."""

    def __init__(self, fmt: FloatFormat = FLOAT16,
                 part_error: PartErrorTable | None = None):
        self.fmt = fmt
        self.part_error = part_error or PartErrorTable(fmt)
        self.activity = FUActivity()

    def compute(self, a: float, b_reduced: float) -> Tuple[float, float]:
        """Return ``((a - b')², max(εsd))`` for one lane.

        ``b_reduced`` must already be representable in the reduced format (it
        comes out of the decompressed ZipPts buffer); the computation itself
        happens in 32-bit as in the hardware.
        """
        self.activity.operations += 1
        self.activity.table_lookups += 1
        a32 = float(np.float32(a))
        b32 = float(np.float32(b_reduced))  # widening 16->32 bit preserves the value
        diff = float(np.float32(a32 - b32))
        sq = float(np.float32(diff * diff))
        bits = self.fmt.encode(b_reduced)
        exponent = self.fmt.biased_exponent(bits)
        two_delta, delta_sq = self.part_error.lookup(exponent)
        error = abs(diff) * two_delta + delta_sq
        return sq, error


class VectorSquareDiffUnit:
    """Four FUs operating on SIMD lanes (the SQDWEL / SQDWEH datapath)."""

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self._fus = [SquareDiffErrorFU(fmt) for _ in range(FU_LANES)]

    @property
    def total_operations(self) -> int:
        """Total number of lane operations executed so far."""
        return sum(fu.activity.operations for fu in self._fus)

    def compute_half(self, v_a: Sequence[float], v_b16: Sequence[float],
                     high: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Process the low (``high=False``) or high half of an 8-lane fp16 vector.

        ``v_a`` holds four 32-bit query lanes (the same coordinate broadcast),
        ``v_b16`` the eight 16-bit point coordinates.  Returns the four squared
        differences and the four worst-case errors.
        """
        v_a = np.asarray(v_a, dtype=np.float64)
        v_b16 = np.asarray(v_b16, dtype=np.float64)
        if v_a.shape[0] != FU_LANES:
            raise ValueError(f"v_a must provide {FU_LANES} lanes")
        if v_b16.shape[0] != 2 * FU_LANES:
            raise ValueError(f"v_b16 must provide {2 * FU_LANES} lanes")
        offset = FU_LANES if high else 0
        sq = np.empty(FU_LANES, dtype=np.float64)
        err = np.empty(FU_LANES, dtype=np.float64)
        for lane in range(FU_LANES):
            sq[lane], err[lane] = self._fus[lane].compute(
                float(v_a[lane]), float(v_b16[offset + lane])
            )
        return sq, err
