"""Functional model of the Bonsai-extensions (new CPU instructions)."""

from .cost_model import (
    InstructionBudget,
    InstructionEstimate,
    estimate_baseline,
    estimate_bonsai,
)
from .encoding import (
    BONSAI_MAJOR_OPCODE,
    InstructionEncodingError,
    assemble,
    assemble_program,
    decode_instruction,
    decode_program,
    disassemble,
    encode_instruction,
    encode_program,
)
from .fu import FU_LANES, SquareDiffErrorFU, VectorSquareDiffUnit
from .instructions import CPRZPB, LDDCP, LDSPZPB, SQDWEH, SQDWEL, STZPB, BonsaiInstruction
from .machine import BonsaiMachine, InstructionCounters
from .memory import MemoryAccessCounters, SparseMemory
from .registers import ScalarRegisterFile, VectorRegisterFile, VECTOR_REGISTER_BITS
from .zippts_buffer import ZipPtsBuffer

__all__ = [
    "InstructionBudget",
    "InstructionEstimate",
    "estimate_baseline",
    "estimate_bonsai",
    "BONSAI_MAJOR_OPCODE",
    "InstructionEncodingError",
    "assemble",
    "assemble_program",
    "decode_instruction",
    "decode_program",
    "disassemble",
    "encode_instruction",
    "encode_program",
    "FU_LANES",
    "SquareDiffErrorFU",
    "VectorSquareDiffUnit",
    "CPRZPB",
    "LDDCP",
    "LDSPZPB",
    "SQDWEH",
    "SQDWEL",
    "STZPB",
    "BonsaiInstruction",
    "BonsaiMachine",
    "InstructionCounters",
    "MemoryAccessCounters",
    "SparseMemory",
    "ScalarRegisterFile",
    "VectorRegisterFile",
    "VECTOR_REGISTER_BITS",
    "ZipPtsBuffer",
]
