"""The Bonsai-extension instructions (Table II of the paper).

Each instruction is a small dataclass naming its operands exactly as the
paper's Table II does; the semantics live in
:class:`repro.isa.machine.BonsaiMachine`.  Instructions that the decoder
breaks into several micro-operations expose a ``micro_ops`` helper so the
machine's micro-op accounting matches Section IV-C:

* ``STZPB`` issues one store micro-op per 128-bit slice;
* ``LDDCP`` issues one load micro-op per slice, one decompress micro-op and
  three write-back micro-ops (six vector registers, two at a time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "LDSPZPB",
    "CPRZPB",
    "STZPB",
    "LDDCP",
    "SQDWEL",
    "SQDWEH",
    "BonsaiInstruction",
]


@dataclass(frozen=True)
class LDSPZPB:
    """LoaD Single-float Point into ZipPts Buffer.

    Loads one 3D point in single-float from the address in ``r_addr``,
    converts it to 16-bit and places it at buffer slot ``r_index``.
    """

    r_index: int
    r_addr: int

    mnemonic = "LDSPZPB"

    def micro_ops(self) -> int:
        """One load micro-op plus one convert/insert micro-op."""
        return 2


@dataclass(frozen=True)
class CPRZPB:
    """ComPRess ZipPts Buffer.

    Compresses the 16-bit points held in the buffer exploiting value
    similarity.  ``r_num_pts`` holds the number of points, ``r_size`` receives
    the size in bytes of the compressed structure.
    """

    r_size: int
    r_num_pts: int

    mnemonic = "CPRZPB"

    def micro_ops(self) -> int:
        """A single compression micro-op."""
        return 1


@dataclass(frozen=True)
class STZPB:
    """STore ZipPts Buffer to memory in 128-bit slices."""

    r_addr: int
    n_slices: int

    mnemonic = "STZPB"

    def micro_ops(self) -> int:
        """One store micro-op per slice."""
        return self.n_slices


@dataclass(frozen=True)
class LDDCP:
    """LoaD Decompressing Compressed Points.

    Loads ``n_slices`` 128-bit slices from the address in ``r_addr`` into the
    ZipPts buffer, decompresses them, and writes the points back to the six
    vector registers starting at ``v_base`` (two registers per coordinate).
    ``r_num_pts`` holds the number of points encoded in the structure.
    """

    v_base: int
    r_num_pts: int
    r_addr: int
    n_slices: int

    mnemonic = "LDDCP"

    def micro_ops(self) -> int:
        """``n_slices`` loads + 1 decompress + 3 write-backs."""
        return self.n_slices + 1 + 3


@dataclass(frozen=True)
class SQDWEL:
    """SQuare Difference With Error, Low half of the 16-bit vector."""

    v_sq_diff: int
    v_error: int
    v_a: int
    v_b: int

    mnemonic = "SQDWEL"
    high = False

    def micro_ops(self) -> int:
        """A single vector micro-op over four lanes."""
        return 1


@dataclass(frozen=True)
class SQDWEH:
    """SQuare Difference With Error, High half of the 16-bit vector."""

    v_sq_diff: int
    v_error: int
    v_a: int
    v_b: int

    mnemonic = "SQDWEH"
    high = True

    def micro_ops(self) -> int:
        """A single vector micro-op over four lanes."""
        return 1


BonsaiInstruction = Union[LDSPZPB, CPRZPB, STZPB, LDDCP, SQDWEL, SQDWEH]
