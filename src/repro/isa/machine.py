"""Functional machine executing the Bonsai-extension instructions.

The machine ties together the sparse memory, the scalar/vector register
files, the ZipPts buffer and the vector (A-B')² unit, and executes the six
instructions of Table II with the micro-operation expansion of Section IV-C.
It is a *functional* model: state changes and access counts are exact, but no
timing is modelled here (timing lives in :mod:`repro.hwmodel`).

It exists for three purposes:

* to demonstrate, end to end and at the instruction level, the compress /
  store / load-decompress / classify flow the paper describes;
* to validate that the ISA-level flow computes exactly the same classification
  as the library-level :class:`repro.core.BonsaiRadiusSearch`;
* to provide per-leaf instruction/micro-op counts for the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.floatfmt import FLOAT16, FloatFormat
from ..core.leaf_compression import ZIPPTS_SLICE_BYTES
from .fu import FU_LANES, VectorSquareDiffUnit
from .instructions import CPRZPB, LDDCP, LDSPZPB, SQDWEH, SQDWEL, STZPB, BonsaiInstruction
from .memory import SparseMemory
from .registers import ScalarRegisterFile, VectorRegisterFile
from .zippts_buffer import ZipPtsBuffer

__all__ = ["InstructionCounters", "BonsaiMachine"]

#: Bytes of one PointXYZ record in the original 32-bit layout.
_POINT_BYTES = 16


@dataclass
class InstructionCounters:
    """Committed instruction / micro-op accounting of the machine."""

    instructions: int = 0
    micro_ops: int = 0
    load_micro_ops: int = 0
    store_micro_ops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    per_mnemonic: Dict[str, int] = field(default_factory=dict)

    def note(self, mnemonic: str, micro_ops: int) -> None:
        """Record one committed instruction of ``mnemonic``."""
        self.instructions += 1
        self.micro_ops += micro_ops
        self.per_mnemonic[mnemonic] = self.per_mnemonic.get(mnemonic, 0) + 1


class BonsaiMachine:
    """Executes Bonsai-extension instruction streams over a functional state."""

    def __init__(self, fmt: FloatFormat = FLOAT16,
                 memory: Optional[SparseMemory] = None):
        self.fmt = fmt
        self.memory = memory or SparseMemory()
        self.scalars = ScalarRegisterFile()
        self.vectors = VectorRegisterFile()
        self.zippts = ZipPtsBuffer(fmt)
        self.fu = VectorSquareDiffUnit(fmt)
        self.counters = InstructionCounters()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, instruction: BonsaiInstruction) -> None:
        """Execute one instruction, updating machine state and counters."""
        handler = {
            "LDSPZPB": self._exec_ldspzpb,
            "CPRZPB": self._exec_cprzpb,
            "STZPB": self._exec_stzpb,
            "LDDCP": self._exec_lddcp,
            "SQDWEL": self._exec_sqdwe,
            "SQDWEH": self._exec_sqdwe,
        }.get(instruction.mnemonic)
        if handler is None:
            raise ValueError(f"unknown instruction {instruction!r}")
        handler(instruction)
        self.counters.note(instruction.mnemonic, instruction.micro_ops())

    def run(self, program: Sequence[BonsaiInstruction]) -> None:
        """Execute a sequence of instructions in order."""
        for instruction in program:
            self.execute(instruction)

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------
    def _exec_ldspzpb(self, instruction: LDSPZPB) -> None:
        address = self.scalars.read(instruction.r_addr)
        slot = self.scalars.read(instruction.r_index)
        point = self.memory.read_point_fp32(address)
        self.counters.load_micro_ops += 1
        self.counters.bytes_loaded += 12
        self.zippts.load_point(slot, point)

    def _exec_cprzpb(self, instruction: CPRZPB) -> None:
        n_points = self.scalars.read(instruction.r_num_pts)
        compressed = self.zippts.compress(n_points)
        self.scalars.write(instruction.r_size, compressed.size_bytes)

    def _exec_stzpb(self, instruction: STZPB) -> None:
        address = self.scalars.read(instruction.r_addr)
        slices = self.zippts.compressed_slices()
        if instruction.n_slices > len(slices):
            raise ValueError(
                f"STZPB asked to store {instruction.n_slices} slices but the buffer "
                f"holds only {len(slices)}"
            )
        for index in range(instruction.n_slices):
            self.memory.write(address + index * ZIPPTS_SLICE_BYTES, slices[index])
            self.counters.store_micro_ops += 1
            self.counters.bytes_stored += ZIPPTS_SLICE_BYTES

    def _exec_lddcp(self, instruction: LDDCP) -> None:
        address = self.scalars.read(instruction.r_addr)
        n_points = self.scalars.read(instruction.r_num_pts)
        data = bytearray()
        for index in range(instruction.n_slices):
            data.extend(self.memory.read(address + index * ZIPPTS_SLICE_BYTES,
                                         ZIPPTS_SLICE_BYTES))
            self.counters.load_micro_ops += 1
            self.counters.bytes_loaded += ZIPPTS_SLICE_BYTES
        self.zippts.load_compressed(bytes(data), n_points)
        values = self.zippts.decompress()
        # Write back per coordinate: two 128-bit registers hold sixteen 16-bit
        # lanes, enough for one coordinate of all buffer points.
        for coord in range(3):
            lanes = np.zeros(16, dtype=np.float64)
            lanes[: values.shape[0]] = values[:, coord]
            low_register = instruction.v_base + 2 * coord
            self.vectors.write_f16_lanes(low_register, lanes[:8])
            self.vectors.write_f16_lanes(low_register + 1, lanes[8:])

    def _exec_sqdwe(self, instruction) -> None:
        v_a = self.vectors.read_f32_lanes(instruction.v_a)
        v_b = self.vectors.read_f16_lanes(instruction.v_b)
        sq, err = self.fu.compute_half(v_a, v_b, high=instruction.high)
        self.vectors.write_f32_lanes(instruction.v_sq_diff, sq)
        self.vectors.write_f32_lanes(instruction.v_error, err)

    # ------------------------------------------------------------------
    # Convenience flows (Section IV-C usage patterns)
    # ------------------------------------------------------------------
    def compress_leaf_points(self, points_fp32: np.ndarray, points_base: int,
                             compressed_base: int) -> Tuple[int, int]:
        """Run the build-time compression flow for one leaf.

        Writes the original points at ``points_base`` (as the cloud already in
        memory), then issues LDSPZPB per point, one CPRZPB, and the STZPB
        stores.  Returns ``(compressed_size_bytes, n_slices)``.
        """
        points_fp32 = np.asarray(points_fp32, dtype=np.float32)
        n_points = points_fp32.shape[0]
        self.memory.write_points_fp32(points_base, points_fp32, stride=_POINT_BYTES)
        self.zippts.clear()
        for i in range(n_points):
            self.scalars.write(1, i)
            self.scalars.write(2, points_base + i * _POINT_BYTES)
            self.execute(LDSPZPB(r_index=1, r_addr=2))
        self.scalars.write(3, n_points)
        self.execute(CPRZPB(r_size=4, r_num_pts=3))
        size_bytes = self.scalars.read(4)
        n_slices = size_bytes // ZIPPTS_SLICE_BYTES
        self.scalars.write(5, compressed_base)
        self.execute(STZPB(r_addr=5, n_slices=n_slices))
        return size_bytes, n_slices

    def classify_leaf(self, query: Sequence[float], r2: float, compressed_base: int,
                      n_points: int, n_slices: int,
                      points_base: int) -> Tuple[List[int], int]:
        """Run the search-time flow for one leaf.

        Issues the LDDCP load/decompress, broadcasts each query coordinate and
        runs SQDWEL/SQDWEH per coordinate, accumulates distances and errors,
        applies the shell test of Eq. 12 and re-reads the original 32-bit
        points for inconclusive lanes.  Returns the local indices of in-radius
        points and the number of recomputed classifications.
        """
        query = np.asarray(query, dtype=np.float64)
        self.scalars.write(6, n_points)
        self.scalars.write(7, compressed_base)
        self.execute(LDDCP(v_base=8, r_num_pts=6, r_addr=7, n_slices=n_slices))

        d2 = np.zeros(16, dtype=np.float64)
        err = np.zeros(16, dtype=np.float64)
        for coord in range(3):
            self.vectors.write_f32_lanes(1, [query[coord]] * FU_LANES)
            low_register = 8 + 2 * coord
            for half_register, high in ((low_register, False), (low_register, True),
                                        (low_register + 1, False), (low_register + 1, True)):
                self.execute(
                    (SQDWEH if high else SQDWEL)(
                        v_sq_diff=2, v_error=3, v_a=1, v_b=half_register
                    )
                )
                sq = self.vectors.read_f32_lanes(2)
                er = self.vectors.read_f32_lanes(3)
                base_lane = (0 if half_register == low_register else 8) + (4 if high else 0)
                d2[base_lane: base_lane + 4] += sq
                err[base_lane: base_lane + 4] += er

        in_radius: List[int] = []
        recomputed = 0
        for local in range(n_points):
            if d2[local] <= r2 - err[local]:
                in_radius.append(local)
            elif d2[local] > r2 + err[local]:
                continue
            else:
                recomputed += 1
                original = self.memory.read_point_fp32(points_base + local * _POINT_BYTES)
                self.counters.load_micro_ops += 1
                self.counters.bytes_loaded += _POINT_BYTES
                diff = query - original
                if float(diff @ diff) <= r2:
                    in_radius.append(local)
        return in_radius, recomputed
