"""Register files of the functional Bonsai machine.

The baseline CPU (Table IV of the paper) is an ARMv8 core with NEON: 128-bit
vector registers, each able to hold eight 16-bit or four 32-bit lanes.  The
Bonsai-extensions write decompressed coordinates into six vector registers
(two per coordinate) and read query values / write results through the same
file.  Scalar (general-purpose) registers carry addresses, sizes and point
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["VectorRegisterFile", "ScalarRegisterFile", "VECTOR_REGISTER_BITS"]

#: NEON vector registers are 128 bits wide.
VECTOR_REGISTER_BITS = 128
_LANES_16 = VECTOR_REGISTER_BITS // 16
_LANES_32 = VECTOR_REGISTER_BITS // 32


class VectorRegisterFile:
    """A file of 128-bit vector registers with 16-bit and 32-bit lane views."""

    def __init__(self, n_registers: int = 32):
        if n_registers < 1:
            raise ValueError("need at least one vector register")
        self.n_registers = n_registers
        self._storage = np.zeros((n_registers, VECTOR_REGISTER_BITS // 8), dtype=np.uint8)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise IndexError(f"vector register v{index} out of range")

    # ------------------------------------------------------------------
    # 16-bit lane view (decompressed coordinates)
    # ------------------------------------------------------------------
    def write_f16_lanes(self, index: int, values: Sequence[float]) -> None:
        """Write up to eight fp16 values into register ``index`` (zero padded)."""
        self._check(index)
        lanes = np.zeros(_LANES_16, dtype=np.float16)
        values = np.asarray(values, dtype=np.float16)
        if values.shape[0] > _LANES_16:
            raise ValueError(f"a 128-bit register holds at most {_LANES_16} fp16 lanes")
        lanes[: values.shape[0]] = values
        self._storage[index] = lanes.view(np.uint8)

    def read_f16_lanes(self, index: int) -> np.ndarray:
        """Read register ``index`` as eight fp16 lanes (returned as float64)."""
        self._check(index)
        return self._storage[index].view(np.float16).astype(np.float64)

    # ------------------------------------------------------------------
    # 32-bit lane view (query values, squared differences, errors)
    # ------------------------------------------------------------------
    def write_f32_lanes(self, index: int, values: Sequence[float]) -> None:
        """Write up to four fp32 values into register ``index`` (zero padded)."""
        self._check(index)
        lanes = np.zeros(_LANES_32, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        if values.shape[0] > _LANES_32:
            raise ValueError(f"a 128-bit register holds at most {_LANES_32} fp32 lanes")
        lanes[: values.shape[0]] = values
        self._storage[index] = lanes.view(np.uint8)

    def read_f32_lanes(self, index: int) -> np.ndarray:
        """Read register ``index`` as four fp32 lanes (returned as float64)."""
        self._check(index)
        return self._storage[index].view(np.float32).astype(np.float64)

    def read_raw(self, index: int) -> bytes:
        """Raw 16-byte contents of register ``index``."""
        self._check(index)
        return self._storage[index].tobytes()


class ScalarRegisterFile:
    """General-purpose registers holding addresses, sizes and counts."""

    def __init__(self, n_registers: int = 32):
        self.n_registers = n_registers
        self._values: List[int] = [0] * n_registers

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise IndexError(f"scalar register x{index} out of range")

    def write(self, index: int, value: int) -> None:
        """Write an unsigned 64-bit value."""
        self._check(index)
        self._values[index] = int(value) & 0xFFFFFFFFFFFFFFFF

    def read(self, index: int) -> int:
        """Read a register value."""
        self._check(index)
        return self._values[index]
