"""Per-stage hardware reports: one trace, every model, one dictionary.

The hardware-in-the-loop pipeline mode (``ExecutionConfig(hardware=True)``)
routes each search stage's memory accesses through a
:class:`~repro.hwmodel.cache.HierarchyRecorder`.  This module turns the
recorded :class:`~repro.hwmodel.cache.HierarchyStats` of one stage — plus the
stage's instruction estimate — into a :class:`StageHardwareReport` that folds
in the first-order timing and energy models, so every pipeline stage exposes
the same structured block of hardware figures:

* access/miss counts and miss ratios per cache level (trace-driven, exact);
* **bytes moved per hierarchy level**: demand bytes the stage's loads/stores
  requested, line-fill bytes L2 served to L1, and line-fill bytes DRAM served
  to L2 (all in bytes; line fills are ``misses`` times the *filled* level's
  line size);
* cycle, execution-time (seconds) and energy (joules) estimates from
  :class:`~repro.hwmodel.timing.TimingModel` and
  :class:`~repro.hwmodel.energy.EnergyModel`.

Determinism: every integer in the report is an exact function of the recorded
trace, and every float is plain arithmetic over those integers and the model
constants — two runs of the same scenario/seed/configuration produce
identical reports, which is what the golden hardware-metric snapshots
(``tests/test_golden_hardware.py``) lock down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cache import HierarchyStats
from .energy import EnergyModel
from .timing import KernelMetrics, TimingModel

__all__ = ["StageHardwareReport"]


@dataclass
class StageHardwareReport:
    """Hardware figures of one pipeline stage under one configuration.

    Integer counters come straight from the trace-driven simulation (exact);
    ``cycles``/``seconds``/``energy_j`` come from the first-order models
    parameterised by the Table IV machine.
    """

    stage: str
    instructions: int
    loads: int
    stores: int
    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int
    memory_accesses: int
    #: Demand bytes the stage's loads/stores requested (CPU <-> L1 traffic).
    bytes_loaded: int
    bytes_stored: int
    #: Line-fill bytes moved between levels (``misses * line_size``).
    l2_to_l1_bytes: int
    dram_to_l2_bytes: int
    cycles: float
    seconds: float
    energy_j: float

    @property
    def l1_miss_ratio(self) -> float:
        """L1 miss ratio of the recorded trace (0.0 when never accessed)."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        """L2 miss ratio of the recorded trace (0.0 when never accessed)."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @classmethod
    def from_trace(cls, stage: str, hierarchy: HierarchyStats, instructions: int,
                   timing: TimingModel, energy: EnergyModel,
                   bonsai_fu_ops: int = 0,
                   l1_line_size: int = 64,
                   l2_line_size: int = 64) -> "StageHardwareReport":
        """Build a stage report from one recorded trace.

        ``instructions`` is the stage's instruction estimate (the ISA cost
        model plus phase budgets); ``bonsai_fu_ops`` counts operations on the
        added Bonsai units (zero for the baseline configuration).  Line-fill
        bytes use each level's own line size: an L1 miss pulls one
        ``l1_line_size`` line from L2, a memory access pulls one
        ``l2_line_size`` line from DRAM.
        """
        metrics = KernelMetrics.from_hierarchy(
            instructions=instructions, loads=hierarchy.loads,
            stores=hierarchy.stores, hierarchy=hierarchy)
        seconds = timing.seconds(metrics)
        return cls(
            stage=stage,
            instructions=instructions,
            loads=hierarchy.loads,
            stores=hierarchy.stores,
            l1_accesses=hierarchy.l1_accesses,
            l1_misses=hierarchy.l1_misses,
            l2_accesses=hierarchy.l2_accesses,
            l2_misses=hierarchy.l2_misses,
            memory_accesses=hierarchy.memory_accesses,
            bytes_loaded=hierarchy.bytes_loaded,
            bytes_stored=hierarchy.bytes_stored,
            l2_to_l1_bytes=hierarchy.l1_misses * l1_line_size,
            dram_to_l2_bytes=hierarchy.memory_accesses * l2_line_size,
            cycles=timing.cycles(metrics),
            seconds=seconds,
            energy_j=energy.estimate(metrics, seconds, bonsai_fu_ops).total_j,
        )

    def as_metrics(self) -> Dict[str, object]:
        """Deterministic, JSON-serialisable metrics (golden-snapshot shape)."""
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l1_miss_ratio": self.l1_miss_ratio,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "l2_miss_ratio": self.l2_miss_ratio,
            "memory_accesses": self.memory_accesses,
            "bytes_loaded": self.bytes_loaded,
            "bytes_stored": self.bytes_stored,
            "l2_to_l1_bytes": self.l2_to_l1_bytes,
            "dram_to_l2_bytes": self.dram_to_l2_bytes,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "energy_j": self.energy_j,
        }
