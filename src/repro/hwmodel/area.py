"""Area model of the K-D Bonsai hardware additions (Table V cross-check).

The paper synthesises the compression/decompression unit and the four
(A-B')² functional units in a 14 nm educational PDK and reports 0.0511 mm²
total — a 0.36% increase over the 14.26 mm² baseline core.  This module
estimates the same quantities bottom-up from a gate-count model:

* storage (the ZipPts buffer, the ``part_error_mem`` table, pipeline
  registers) is costed per bit;
* datapath logic (subtractors, multipliers, shifters/muxes of the bit
  reordering network) is costed per equivalent NAND2 gate.

The point of the cross-check is not to land on the exact synthesis numbers
(those depend on the PDK and constraints) but to confirm the magnitude: the
additions are orders of magnitude smaller than the core, unlike the
accelerators discussed in related work.

Units: areas in **mm²**, powers in **watts**, gate counts in NAND2
equivalents.  The estimate is closed-form over the format/parameter
constants — deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.floatfmt import FLOAT16, FloatFormat
from ..core.leaf_compression import MAX_POINTS_PER_LEAF

__all__ = ["AreaParameters", "AreaEstimate", "estimate_bonsai_area"]


@dataclass(frozen=True)
class AreaParameters:
    """Technology constants for the bottom-up area estimate (14 nm class)."""

    #: Area of one NAND2-equivalent gate, in mm^2 (≈0.2 µm² at 14 nm).
    nand2_area_mm2: float = 0.2e-6
    #: Area of one bit of flip-flop/SRAM-like storage, in NAND2 equivalents.
    gates_per_storage_bit: float = 4.0
    #: Gates of a w-bit carry-lookahead adder per bit.
    adder_gates_per_bit: float = 7.0
    #: Gates of a w x w multiplier per bit^2 (array multiplier).
    multiplier_gates_per_bit2: float = 1.2
    #: Gates per 2:1 mux (the reordering network is mux dominated).
    mux_gates: float = 3.0
    #: Dynamic power per gate at 3 GHz and typical activity, in watts.
    dynamic_power_per_gate_w: float = 2.0e-7
    #: Leakage per gate, in watts.
    static_power_per_gate_w: float = 1.0e-10


@dataclass
class AreaEstimate:
    """Bottom-up estimate of one unit."""

    name: str
    gates: float
    parameters: AreaParameters

    @property
    def area_mm2(self) -> float:
        """Estimated area in mm^2."""
        return self.gates * self.parameters.nand2_area_mm2

    @property
    def dynamic_power_w(self) -> float:
        """Estimated dynamic power in watts."""
        return self.gates * self.parameters.dynamic_power_per_gate_w

    @property
    def static_power_w(self) -> float:
        """Estimated leakage power in watts."""
        return self.gates * self.parameters.static_power_per_gate_w


def _compression_unit_gates(fmt: FloatFormat, params: AreaParameters) -> float:
    """Gate count of the ZipPts buffer plus compress/decompress logic."""
    # ZipPts buffer: 16 points x 3 coords x 16 bits, plus 3 flag bits, double
    # buffered for the expanded/compressed views.
    buffer_bits = MAX_POINTS_PER_LEAF * 3 * fmt.total_bits + 3
    storage_gates = 2 * buffer_bits * params.gates_per_storage_bit
    # Comparator tree over <sign, exponent> fields: one 6-bit comparator per
    # point per coordinate (roughly an adder each).
    se_bits = fmt.sign_bits + fmt.exponent_bits
    comparator_gates = MAX_POINTS_PER_LEAF * 3 * se_bits * params.adder_gates_per_bit
    # Bit-reordering network: one mux per payload bit per shift stage
    # (log2(#positions) stages).
    reorder_stages = 6
    reorder_gates = buffer_bits * reorder_stages * params.mux_gates
    return storage_gates + comparator_gates + reorder_gates


def _square_diff_fu_gates(fmt: FloatFormat, params: AreaParameters) -> float:
    """Gate count of one (A-B')^2 with-error functional unit."""
    width = 32
    # Subtractor + squarer (multiplier) + error multiply-add.
    subtractor = width * params.adder_gates_per_bit
    squarer = width * width * params.multiplier_gates_per_bit2
    error_mac = width * width * params.multiplier_gates_per_bit2 / 2 + width * params.adder_gates_per_bit
    # part_error_mem: 2^exponent_bits entries of two 32-bit constants.
    table_bits = (1 << fmt.exponent_bits) * 2 * width
    table = table_bits * params.gates_per_storage_bit
    pipeline_registers = 4 * width * params.gates_per_storage_bit
    return subtractor + squarer + error_mac + table + pipeline_registers


def estimate_bonsai_area(fmt: FloatFormat = FLOAT16, n_fus: int = 4,
                         params: AreaParameters = AreaParameters()) -> dict:
    """Bottom-up area/power estimate of all K-D Bonsai additions.

    Returns a dictionary with one :class:`AreaEstimate` per unit plus the
    combined totals, mirroring the rows of Table V.
    """
    compression = AreaEstimate(
        name="Compression/Decompression + ZipPts buffer",
        gates=_compression_unit_gates(fmt, params),
        parameters=params,
    )
    one_fu_gates = _square_diff_fu_gates(fmt, params)
    fus = AreaEstimate(
        name=f"{n_fus}x (A-B')^2 FU",
        gates=one_fu_gates * n_fus,
        parameters=params,
    )
    total_area = compression.area_mm2 + fus.area_mm2
    total_dynamic = compression.dynamic_power_w + fus.dynamic_power_w
    total_static = compression.static_power_w + fus.static_power_w
    return {
        "compression_unit": compression,
        "square_diff_fus": fus,
        "total_area_mm2": total_area,
        "total_dynamic_power_w": total_dynamic,
        "total_static_power_w": total_static,
    }
