"""Hardware cost models: caches, CPU timing, energy, area and stage reports."""

from .area import AreaEstimate, AreaParameters, estimate_bonsai_area
from .cache import (
    CacheConfig,
    CacheStats,
    HierarchyRecorder,
    HierarchyStats,
    MemoryHierarchy,
    SetAssociativeCache,
)
from .cpu_config import CPUConfig, TABLE_IV_CPU
from .energy import TABLE_V, EnergyBreakdown, EnergyModel, EnergyParameters
from .report import StageHardwareReport
from .timing import KernelMetrics, TimingBreakdown, TimingModel

__all__ = [
    "AreaEstimate",
    "AreaParameters",
    "estimate_bonsai_area",
    "CacheConfig",
    "CacheStats",
    "HierarchyRecorder",
    "HierarchyStats",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "CPUConfig",
    "TABLE_IV_CPU",
    "TABLE_V",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "StageHardwareReport",
    "KernelMetrics",
    "TimingBreakdown",
    "TimingModel",
]
