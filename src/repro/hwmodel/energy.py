"""Energy model (per-event dynamic energy plus leakage).

The paper models the baseline CPU in McPAT at 32 nm, synthesises the new
functional units at 14 nm, and scales everything to 14 nm with the Stillmaker
equations.  Reproducing McPAT is out of scope for a functional model; instead
this module uses the standard per-event decomposition

``E = E_inst * instructions + E_L1 * L1_accesses + E_L2 * L2_accesses
    + E_DRAM * DRAM_accesses + E_FU_bonsai * bonsai_FU_ops + P_static * t``

with per-event energies in the range published for 14/16 nm-class cores and
caches.  Both configurations share the same constants, so the *relative*
energy change — the result the paper reports (−10.84%) — is driven by the
measured differences in instructions, cache accesses and time.

Units: per-event energies in **joules**, powers in **watts**, estimates in
**joules**; Table V entries carry areas in **mm²**.  Like the timing model,
the estimate is a pure function of its inputs, so identical counters and
execution times produce identical energies (snapshot-safe).

Table V's area/power overhead of the added units is taken from the paper's
synthesis results (they are inputs of this model, not outputs); the area
model in :mod:`repro.hwmodel.area` cross-checks them with a gate-count
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .timing import KernelMetrics

__all__ = ["EnergyParameters", "EnergyBreakdown", "EnergyModel", "TABLE_V"]


@dataclass(frozen=True)
class TableVEntry:
    """One row of Table V (area in mm^2, power in W)."""

    area_mm2: float
    dynamic_power_w: float
    static_power_w: float


@dataclass(frozen=True)
class TableV:
    """The paper's Table V: baseline processor and K-D Bonsai additions."""

    processor: TableVEntry = TableVEntry(14.26, 1.86, 1.15)
    compression_fu: TableVEntry = TableVEntry(0.0191, 0.0095, 6.29e-06)
    square_diff_fus: TableVEntry = TableVEntry(0.0320, 0.0144, 4.55e-06)

    @property
    def bonsai_total(self) -> TableVEntry:
        """Combined overhead of the K-D Bonsai units."""
        return TableVEntry(
            self.compression_fu.area_mm2 + self.square_diff_fus.area_mm2,
            self.compression_fu.dynamic_power_w + self.square_diff_fus.dynamic_power_w,
            self.compression_fu.static_power_w + self.square_diff_fus.static_power_w,
        )

    @property
    def relative_area_increase(self) -> float:
        """Area overhead of the Bonsai units relative to the baseline core."""
        return self.bonsai_total.area_mm2 / self.processor.area_mm2

    @property
    def relative_dynamic_power_increase(self) -> float:
        """Dynamic power overhead relative to the baseline core."""
        return self.bonsai_total.dynamic_power_w / self.processor.dynamic_power_w


TABLE_V = TableV()


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies (joules) and leakage power (watts).

    Defaults are 14/16 nm-class literature values paired with the Table IV
    machine (3 GHz OoO core, 32 KB L1D, 1 MB L2, DDR3-1600); the static
    power matches Table V's baseline-processor leakage.
    """

    energy_per_instruction_j: float = 70.0e-12
    energy_per_l1_access_j: float = 20.0e-12
    energy_per_l2_access_j: float = 180.0e-12
    energy_per_dram_access_j: float = 8.0e-9
    #: Energy of one Bonsai vector FU operation (four lanes of (A-B')^2 with
    #: error) or one (de)compression micro-operation.
    energy_per_bonsai_op_j: float = 15.0e-12
    static_power_w: float = 1.15


@dataclass
class EnergyBreakdown:
    """Energy decomposition of one kernel execution."""

    core_dynamic_j: float
    l1_j: float
    l2_j: float
    dram_j: float
    bonsai_units_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return (self.core_dynamic_j + self.l1_j + self.l2_j + self.dram_j
                + self.bonsai_units_j + self.static_j)


class EnergyModel:
    """Per-event energy model shared by the baseline and Bonsai kernels."""

    def __init__(self, parameters: Optional[EnergyParameters] = None):
        self.parameters = parameters or EnergyParameters()

    def estimate(self, metrics: KernelMetrics, execution_time_s: float,
                 bonsai_fu_ops: int = 0) -> EnergyBreakdown:
        """Energy of one kernel execution.

        ``bonsai_fu_ops`` counts the operations executed on the added units
        (zero for the baseline configuration).
        """
        p = self.parameters
        return EnergyBreakdown(
            core_dynamic_j=metrics.instructions * p.energy_per_instruction_j,
            l1_j=metrics.l1_accesses * p.energy_per_l1_access_j,
            l2_j=metrics.l2_accesses * p.energy_per_l2_access_j,
            dram_j=metrics.memory_accesses * p.energy_per_dram_access_j,
            bonsai_units_j=bonsai_fu_ops * p.energy_per_bonsai_op_j,
            static_j=p.static_power_w * execution_time_s,
        )
