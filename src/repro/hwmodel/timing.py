"""First-order timing model.

The paper measures execution time in gem5 (cycle-accurate, full system).
The reproduction band explicitly scopes this work to a *functional* model, so
timing is estimated with a classic first-order CPI decomposition:

``cycles = instructions / sustained_IPC
          + exposed_l1_miss_penalty * L1_misses
          + exposed_l2_miss_penalty * L2_misses``

where the exposed penalties are the hit latencies of the next level scaled by
``(1 - miss_overlap_factor)`` to account for the latency the out-of-order
window hides.  Both the baseline and Bonsai kernels go through the same
formula with their own instruction counts and cache statistics, so the
relative changes (the numbers the paper reports) are driven entirely by the
functional differences the library measures.

Units: inputs are event **counts** (instructions, accesses, misses); outputs
are **cycles** (floats) and **seconds** (cycles times the
:class:`~repro.hwmodel.cpu_config.CPUConfig` cycle time; Table IV defaults
to 3 GHz).  The model is a pure function of its inputs — no measurement, no
randomness — so identical counters always produce identical estimates,
which is what lets the golden harnesses snapshot its outputs with tight
float tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cache import HierarchyStats
from .cpu_config import CPUConfig, TABLE_IV_CPU

__all__ = ["KernelMetrics", "TimingModel", "TimingBreakdown"]


@dataclass
class KernelMetrics:
    """Inputs of the timing/energy models for one kernel execution.

    All fields are plain event counts: retired instructions, executed
    loads/stores, and cache accesses/misses per level (line-granular, as the
    trace-driven simulation of :mod:`repro.hwmodel.cache` counts them).
    """

    instructions: int
    loads: int
    stores: int
    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int
    memory_accesses: int

    @classmethod
    def from_hierarchy(cls, instructions: int, loads: int, stores: int,
                       hierarchy: HierarchyStats) -> "KernelMetrics":
        """Build metrics from an instruction estimate plus cache statistics."""
        return cls(
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_accesses=hierarchy.l1_accesses,
            l1_misses=hierarchy.l1_misses,
            l2_accesses=hierarchy.l2_accesses,
            l2_misses=hierarchy.l2_misses,
            memory_accesses=hierarchy.memory_accesses,
        )

    def scaled(self, factor: float) -> "KernelMetrics":
        """Metrics scaled by ``factor`` (used to extrapolate sub-sampled runs)."""
        return KernelMetrics(
            instructions=int(self.instructions * factor),
            loads=int(self.loads * factor),
            stores=int(self.stores * factor),
            l1_accesses=int(self.l1_accesses * factor),
            l1_misses=int(self.l1_misses * factor),
            l2_accesses=int(self.l2_accesses * factor),
            l2_misses=int(self.l2_misses * factor),
            memory_accesses=int(self.memory_accesses * factor),
        )


@dataclass
class TimingBreakdown:
    """Cycle breakdown produced by the timing model."""

    compute_cycles: float
    l2_stall_cycles: float
    memory_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        """Total estimated cycles."""
        return self.compute_cycles + self.l2_stall_cycles + self.memory_stall_cycles


class TimingModel:
    """Estimates execution time of a kernel from its :class:`KernelMetrics`."""

    def __init__(self, cpu: Optional[CPUConfig] = None):
        self.cpu = cpu or TABLE_IV_CPU

    def breakdown(self, metrics: KernelMetrics) -> TimingBreakdown:
        """Cycle breakdown for one kernel execution."""
        cpu = self.cpu
        exposed = 1.0 - cpu.miss_overlap_factor
        compute = metrics.instructions / cpu.sustained_ipc
        l2_stalls = metrics.l1_misses * cpu.l2_hit_cycles * exposed
        memory_stalls = metrics.l2_misses * cpu.memory_latency_cycles * exposed
        return TimingBreakdown(
            compute_cycles=compute,
            l2_stall_cycles=l2_stalls,
            memory_stall_cycles=memory_stalls,
        )

    def cycles(self, metrics: KernelMetrics) -> float:
        """Total estimated cycles."""
        return self.breakdown(metrics).total_cycles

    def seconds(self, metrics: KernelMetrics) -> float:
        """Total estimated execution time in seconds."""
        return self.cycles(metrics) * self.cpu.cycle_time_s

    def ipc(self, metrics: KernelMetrics) -> float:
        """Effective IPC implied by the model."""
        total = self.cycles(metrics)
        if total == 0:
            return 0.0
        return metrics.instructions / total
