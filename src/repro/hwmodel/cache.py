"""Set-associative cache and memory-hierarchy simulation.

Figures 9a and 10 of the paper report relative changes in L1/L2/DRAM accesses
between the baseline and the Bonsai radius search.  The reproduction obtains
those from a trace-driven simulation: the searches emit their loads/stores
through a recorder (:class:`HierarchyRecorder` implements the
``MemoryRecorder`` protocol of :mod:`repro.kdtree.radius_search`), and this
module replays them through an LRU set-associative L1D backed by an L2 and
main memory, using the geometry of the paper's baseline CPU (Table IV:
32 KB 2-way L1D, 1 MB 16-way L2, 64 B lines).

Units and determinism
---------------------
All sizes and counters are in **bytes** and **accesses** (cache-line-granular
at every level).  The simulation is fully deterministic: LRU replacement has
no random state, addresses come from the synthetic
:class:`~repro.kdtree.layout.TreeMemoryLayout`, and identical access traces
therefore produce bit-identical :class:`CacheStats`/:class:`HierarchyStats` —
which is what allows the golden hardware-metric snapshots
(``tests/test_golden_hardware.py``) to pin miss counts exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CacheConfig", "CacheStats", "SetAssociativeCache", "HierarchyStats",
           "MemoryHierarchy", "HierarchyRecorder"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    line_size: int = 64
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError("size must be a multiple of associativity * line_size")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass
class CacheStats:
    """Access counters of one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses over accesses (0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """An LRU set-associative cache (tag store only, no data)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # One ordered dict per set: keys are tags, order is recency (last = MRU).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.n_sets)]

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_size
        set_index = line % self.config.n_sets
        tag = line // self.config.n_sets
        return set_index, tag

    def access(self, address: int) -> bool:
        """Access the line containing ``address``; returns True on hit."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        self.stats.accesses += 1
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        cache_set[tag] = True
        if len(cache_set) > self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        return False

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        for cache_set in self._sets:
            cache_set.clear()


@dataclass
class HierarchyStats:
    """Per-level access counts of a memory hierarchy simulation."""

    l1_accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    @property
    def l1_miss_ratio(self) -> float:
        """L1 data-cache miss ratio (0.0 when the level was never accessed)."""
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_misses / self.l1_accesses

    @property
    def l2_miss_ratio(self) -> float:
        """L2 miss ratio (0.0 when the level was never accessed)."""
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def merge(self, other: "HierarchyStats") -> None:
        """Accumulate ``other``'s counters into this object.

        Used by the end-to-end runner to fold the per-frame hierarchies of
        the clustering stage into one stage-level report; merging counters is
        exact because every frame simulates its own (cold) hierarchy.
        """
        self.l1_accesses += other.l1_accesses
        self.l1_misses += other.l1_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.memory_accesses += other.memory_accesses
        self.loads += other.loads
        self.stores += other.stores
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored


class MemoryHierarchy:
    """L1D + L2 + main-memory access simulation (Table IV geometry by default)."""

    def __init__(self, l1: Optional[CacheConfig] = None, l2: Optional[CacheConfig] = None):
        self.l1_config = l1 or CacheConfig(size_bytes=32 * 1024, associativity=2,
                                           line_size=64, name="L1D")
        self.l2_config = l2 or CacheConfig(size_bytes=1024 * 1024, associativity=16,
                                           line_size=64, name="L2")
        self.l1 = SetAssociativeCache(self.l1_config)
        self.l2 = SetAssociativeCache(self.l2_config)
        self.stats = HierarchyStats()

    def access(self, address: int, size: int, is_write: bool = False) -> None:
        """Simulate one CPU access of ``size`` bytes starting at ``address``.

        Accesses spanning multiple cache lines generate one L1 access per
        line, as the load/store unit would.
        """
        if size <= 0:
            raise ValueError("access size must be positive")
        if is_write:
            self.stats.stores += 1
            self.stats.bytes_stored += size
        else:
            self.stats.loads += 1
            self.stats.bytes_loaded += size
        line_size = self.l1_config.line_size
        first_line = address // line_size
        last_line = (address + size - 1) // line_size
        for line in range(first_line, last_line + 1):
            line_address = line * line_size
            self.stats.l1_accesses += 1
            if self.l1.access(line_address):
                continue
            self.stats.l1_misses += 1
            self.stats.l2_accesses += 1
            if self.l2.access(line_address):
                continue
            self.stats.l2_misses += 1
            self.stats.memory_accesses += 1

    def reset(self) -> None:
        """Clear caches and statistics."""
        self.l1.reset()
        self.l2.reset()
        self.stats = HierarchyStats()


class HierarchyRecorder:
    """Memory-access recorder feeding a :class:`MemoryHierarchy`.

    Implements the ``MemoryRecorder`` protocol expected by the radius search
    and the Bonsai inspector, so traces stream directly into the cache
    simulation without being materialised.
    """

    def __init__(self, hierarchy: Optional[MemoryHierarchy] = None):
        self.hierarchy = hierarchy or MemoryHierarchy()

    @classmethod
    def for_cpu(cls, cpu) -> "HierarchyRecorder":
        """Recorder simulating ``cpu``'s cache geometry.

        ``cpu`` is a :class:`~repro.hwmodel.cpu_config.CPUConfig`-like object
        with ``l1d``/``l2`` cache configs.  Use this wherever a recorded
        trace must stay consistent with the timing/energy models
        parameterised by the same CPUConfig.
        """
        return cls(MemoryHierarchy(l1=cpu.l1d, l2=cpu.l2))

    @property
    def stats(self) -> HierarchyStats:
        """The hierarchy's access statistics."""
        return self.hierarchy.stats

    def record_load(self, address: int, size: int) -> None:
        """Record one load."""
        self.hierarchy.access(address, size, is_write=False)

    def record_store(self, address: int, size: int) -> None:
        """Record one store."""
        self.hierarchy.access(address, size, is_write=True)
