"""Baseline CPU model parameters (Table IV of the paper).

The paper models an out-of-order ARMv8 core resembling a Cortex-A72 running
at 3 GHz with NEON (128-bit SIMD), 32 KB 2-way L1 caches, a 1 MB 16-way L2
and DDR3-1600 main memory.  These constants parameterise the timing and
energy models; they are collected here so every model pulls the numbers from
one place and the benchmark reports can print the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheConfig

__all__ = ["CPUConfig", "TABLE_IV_CPU"]


@dataclass(frozen=True)
class CPUConfig:
    """Microarchitectural parameters of the modelled core.

    Defaults reproduce the paper's Table IV machine: a 3 GHz out-of-order
    ARMv8 core with 32 KB 2-way L1 caches, a 1 MB 16-way L2 and DDR3-1600
    memory.  Frequencies are in **Hz**, cache geometries in **bytes** (64 B
    lines), and all latencies in **cycles**.
    """

    name: str = "OoO ARMv8 (Cortex-A72 class)"
    frequency_hz: float = 3.0e9
    fetch_width: int = 3
    issue_width: int = 8
    int_physical_registers: int = 90
    fp_physical_registers: int = 256
    simd_width_bits: int = 128
    #: Sustained IPC assumed for the instruction-throughput component of the
    #: timing model.  A72-class cores sustain roughly 1.5-2 IPC on pointer
    #: chasing plus vector arithmetic; the exact value cancels out in the
    #: relative comparisons the benchmarks report.
    sustained_ipc: float = 1.6
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, associativity=2, line_size=64, name="L1D"))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, associativity=2, line_size=64, name="L1I"))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1024 * 1024, associativity=16, line_size=64, name="L2"))
    #: Load-to-use latencies in cycles.
    l1_hit_cycles: int = 4
    l2_hit_cycles: int = 21
    memory_latency_cycles: int = 180
    #: Fraction of miss latency the out-of-order window hides on this
    #: pointer-chasing workload (MLP is low during tree traversal).
    miss_overlap_factor: float = 0.45

    @property
    def cycle_time_s(self) -> float:
        """Cycle time in seconds."""
        return 1.0 / self.frequency_hz


#: The configuration of Table IV.
TABLE_IV_CPU = CPUConfig()
