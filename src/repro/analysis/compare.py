"""Baseline vs. Bonsai comparison over a set of frames (Figures 9-12).

Given the per-frame measurements produced by
:class:`repro.workloads.EuclideanClusterPipeline` for the baseline and the
Bonsai configuration, this module aggregates them into the quantities the
paper's evaluation section reports: relative changes of the extract-kernel
hardware metrics (Fig. 9a), bytes loaded during the search (Fig. 9b), memory
hierarchy accesses (Fig. 10), end-to-end latency distributions (Fig. 11) and
energy (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..workloads.autoware import FrameMeasurement
from .boxplot import BoxPlotStats, compare_distributions

__all__ = ["MetricComparison", "ComparisonSummary", "compare_measurements"]

#: Order of Figure 9a's metric bars.
FIG9A_METRICS = (
    "execution_time",
    "instructions",
    "loads",
    "stores",
    "l1_accesses",
    "l1_misses",
)


@dataclass
class MetricComparison:
    """Relative change of one metric between baseline and Bonsai."""

    name: str
    baseline: float
    bonsai: float

    @property
    def relative_change(self) -> float:
        """``(bonsai - baseline) / baseline`` (negative means reduction)."""
        if self.baseline == 0:
            return 0.0
        return (self.bonsai - self.baseline) / self.baseline


@dataclass
class ComparisonSummary:
    """All paper-style aggregates for one pair of measurement sets."""

    fig9a: Dict[str, MetricComparison]
    fig10: Dict[str, MetricComparison]
    latency_baseline: BoxPlotStats
    latency_bonsai: BoxPlotStats
    latency_improvements: Dict[str, float]
    energy_baseline: BoxPlotStats
    energy_bonsai: BoxPlotStats
    energy_improvements: Dict[str, float]
    bytes_baseline: int
    bytes_bonsai: int
    inconclusive_rate: float
    mean_visits_per_leaf: float

    @property
    def bytes_fraction(self) -> float:
        """Bonsai bytes over baseline bytes for leaf point fetches (Fig. 9b)."""
        if self.bytes_baseline == 0:
            return 1.0
        return self.bytes_bonsai / self.bytes_baseline


def _sum_metric(measurements: Sequence[FrameMeasurement], name: str) -> float:
    return float(sum(m.extract.as_dict()[name] for m in measurements))


def compare_measurements(baseline: Sequence[FrameMeasurement],
                         bonsai: Sequence[FrameMeasurement]) -> ComparisonSummary:
    """Aggregate paired baseline/Bonsai frame measurements.

    The two sequences must cover the same frames in the same order.
    """
    if len(baseline) != len(bonsai):
        raise ValueError("baseline and bonsai measurement lists must have equal length")
    if any(b.frame_index != o.frame_index for b, o in zip(baseline, bonsai)):
        raise ValueError("baseline and bonsai measurements must cover the same frames")

    fig9a = {
        name: MetricComparison(
            name=name,
            baseline=_sum_metric(baseline, name),
            bonsai=_sum_metric(bonsai, name),
        )
        for name in FIG9A_METRICS
    }
    fig10 = {
        name: MetricComparison(
            name=name,
            baseline=_sum_metric(baseline, name),
            bonsai=_sum_metric(bonsai, name),
        )
        for name in ("l1_accesses", "l2_accesses", "memory_accesses")
    }

    latency_baseline = [m.end_to_end_seconds for m in baseline]
    latency_bonsai = [m.end_to_end_seconds for m in bonsai]
    energy_baseline = [m.extract.energy_j for m in baseline]
    energy_bonsai = [m.extract.energy_j for m in bonsai]

    total_classified = sum(
        m.bonsai_stats.points_classified for m in bonsai if m.bonsai_stats is not None
    )
    total_inconclusive = sum(
        m.bonsai_stats.inconclusive for m in bonsai if m.bonsai_stats is not None
    )
    visits = [m.search_stats.mean_visits_per_leaf for m in bonsai]

    return ComparisonSummary(
        fig9a=fig9a,
        fig10=fig10,
        latency_baseline=BoxPlotStats.from_values("Baseline", latency_baseline),
        latency_bonsai=BoxPlotStats.from_values("Bonsai-extensions", latency_bonsai),
        latency_improvements=compare_distributions(latency_baseline, latency_bonsai),
        energy_baseline=BoxPlotStats.from_values("Baseline", energy_baseline),
        energy_bonsai=BoxPlotStats.from_values("Bonsai-extensions", energy_bonsai),
        energy_improvements=compare_distributions(energy_baseline, energy_bonsai),
        bytes_baseline=int(sum(m.point_bytes_loaded for m in baseline)),
        bytes_bonsai=int(sum(m.point_bytes_loaded for m in bonsai)),
        inconclusive_rate=total_inconclusive / total_classified if total_classified else 0.0,
        mean_visits_per_leaf=float(np.mean(visits)) if visits else 0.0,
    )
