"""Map-scale cache-geometry sensitivity: the ``l2-*`` cut, finally mapped.

The frame-scale cache sweep (:mod:`repro.analysis.cache_sweep`) showed the
``l2-256k`` / ``l2-4m`` rows barely moving: a LiDAR frame's tree fits in
any of those L2s, so DRAM traffic stays compulsory-miss dominated and the
L2 axis is flat.  This sweep rebuilds the experiment at **map scale**: a
1M+-point map cloud sampled from a map-scale scenario
(:func:`~repro.scenarios.map_scale.sample_map_cloud`), indexed by a
:class:`~repro.engine.sharded.ShardedPointCloudIndex`, and probed with a
fuzzed batch of relocalization-style radius queries whose tree accesses
stream through the trace-driven cache simulation — once per (geometry,
flavour) cell.

Per cell the sweep reports the recorded hierarchy totals, summed over the
tiles the queries touched: demand bytes (geometry-invariant), the line-fill
traffic per level (``L2->L1`` = L1 misses x line size, ``DRAM->L2`` =
memory accesses x line size) and the per-level miss ratios.  Cycle/energy
folding is deliberately out of scope — those models need the pipeline's
instruction estimates, and the map-scale question is a *traffic* question:
where does the compressed-leaf byte win keep paying once the working set
overflows the L2?

Recording always runs the per-query paths (the recorded wrapper's
contract), so results are exact traces and the sweep is deterministic in
``(scenario, n_points, seed)``.  ``benchmarks/bench_map_scale.py`` renders
the result into ``benchmarks/results/map_scale_sensitivity.txt``;
``docs/PERFORMANCE.md`` explains how to read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hwmodel.cache import HierarchyStats
from .cache_sweep import GEOMETRIES, CacheGeometry

__all__ = [
    "MAP_SCALE_GEOMETRY_NAMES",
    "MAP_SCALE_FLAVORS",
    "MapScaleCell",
    "MapScaleResult",
    "MapScaleSweep",
]

#: Default geometry grid of the map-scale sweep: the L2-size cut around the
#: paper's machine — the axis the frame-scale sweep cannot stress.
MAP_SCALE_GEOMETRY_NAMES: Tuple[str, ...] = ("l2-256k", "table-iv", "l2-4m")

#: The compared search flavours (recorded runs always trace the flavour's
#: per-query path, so ``-batched``/``-mp`` strategy suffixes are moot here).
MAP_SCALE_FLAVORS: Tuple[str, ...] = ("baseline", "bonsai")


@dataclass
class MapScaleCell:
    """One (geometry, flavour) cell: recorded hierarchy totals at map scale."""

    geometry: CacheGeometry
    flavor: str
    hierarchy: HierarchyStats

    @property
    def line_size(self) -> int:
        return self.geometry.cpu().l1d.line_size

    @property
    def l2_to_l1_bytes(self) -> int:
        """Line-fill traffic into L1 (L1 misses x line size)."""
        return self.hierarchy.l1_misses * self.line_size

    @property
    def dram_to_l2_bytes(self) -> int:
        """Line-fill traffic from memory (memory accesses x line size)."""
        return self.hierarchy.memory_accesses * self.line_size

    def totals(self) -> Dict[str, float]:
        """The cell's reported quantities as one flat mapping."""
        return {
            "bytes_loaded": self.hierarchy.bytes_loaded,
            "l2_to_l1_bytes": self.l2_to_l1_bytes,
            "dram_to_l2_bytes": self.dram_to_l2_bytes,
            "l1_miss_ratio": self.hierarchy.l1_miss_ratio,
            "l2_miss_ratio": self.hierarchy.l2_miss_ratio,
        }


@dataclass
class MapScaleResult:
    """All cells of one map-scale sensitivity sweep, geometry-major."""

    scenario: str
    n_points: int
    tile_size: float
    n_tiles: int
    n_touched_tiles: int
    n_queries: int
    radius: float
    seed: int
    geometries: List[CacheGeometry]
    flavors: Tuple[str, ...]
    cells: Dict[Tuple[str, str], MapScaleCell] = field(default_factory=dict)

    def cell(self, geometry: str, flavor: str) -> MapScaleCell:
        """The named (geometry, flavour) cell."""
        return self.cells[(geometry, flavor)]

    def comparison_rows(self) -> List[Dict[str, object]]:
        """Per-geometry (first flavour vs. second flavour) comparison.

        Mirrors :meth:`CacheSweepResult.comparison_rows`: each row carries
        both flavours' traffic totals plus the relative change of the
        second (Bonsai) flavour — the quantities the sensitivity table
        renders.
        """
        if len(self.flavors) < 2:
            raise ValueError("comparison needs at least two swept flavours")
        base_flavor, other_flavor = self.flavors[0], self.flavors[1]
        rows: List[Dict[str, object]] = []
        for geometry in self.geometries:
            base = self.cell(geometry.name, base_flavor).totals()
            other = self.cell(geometry.name, other_flavor).totals()
            rows.append({
                "geometry": geometry,
                "base": base,
                "other": other,
                "change": {
                    key: ((other[key] - base[key]) / base[key]
                          if base[key] else 0.0)
                    for key in ("bytes_loaded", "l2_to_l1_bytes",
                                "dram_to_l2_bytes")
                },
            })
        return rows


class MapScaleSweep:
    """Cache-geometry sensitivity of sharded map-scale radius queries.

    Builds one :class:`~repro.engine.sharded.ShardedPointCloudIndex` over
    the scenario's sampled map cloud, fuzzes ``n_queries`` query points
    around the map's populated extent, then runs the batch once per
    (geometry, flavour) cell in recorded mode — each cell gets its own
    per-tile recorders (the tile backend cache keys on the geometry's CPU
    config), so cells never share counters.  One index serves every cell:
    tile trees build once, Bonsai compression runs once.
    """

    def __init__(self, scenario: str = "city_block", *,
                 n_points: int = 1_000_000,
                 tile_size: float = 32.0,
                 n_queries: int = 256,
                 radius: float = 2.0,
                 query_extent: float = 30.0,
                 seed: int = 7,
                 geometries: Optional[Sequence] = None,
                 flavors: Optional[Sequence[str]] = None):
        self.scenario = scenario
        self.n_points = n_points
        self.tile_size = tile_size
        self.n_queries = n_queries
        self.radius = radius
        self.query_extent = query_extent
        self.seed = seed
        names = geometries if geometries is not None else MAP_SCALE_GEOMETRY_NAMES
        self.geometries = [g if isinstance(g, CacheGeometry) else GEOMETRIES[g]
                           for g in names]
        self.flavors = tuple(flavors) if flavors is not None else MAP_SCALE_FLAVORS

    def build_index(self):
        """The sweep's sharded index over the sampled map cloud."""
        from ..engine.sharded import ShardedPointCloudIndex
        from ..scenarios import build_map_cloud

        cloud = build_map_cloud(self.scenario, self.n_points, seed=self.seed)
        return ShardedPointCloudIndex(cloud, tile_size=self.tile_size)

    def queries(self, index) -> np.ndarray:
        """Fuzzed relocalization-style query batch: one scan's worth.

        Queries concentrate in a disc of radius ``query_extent`` around the
        map centre at sensor heights — the shape of one vehicle's scan
        points probing the map.  The concentration is the point: queries
        re-reference the same few tiles' trees, so the recorded caches see
        *reuse*, and L2 capacity (the swept axis) decides how much of a
        tile's working set survives between queries.  Deterministic in the
        sweep seed.
        """
        rng = np.random.default_rng(self.seed * 7919 + 13)
        lo = index.points.min(axis=0).astype(np.float64)
        hi = index.points.max(axis=0).astype(np.float64)
        center = 0.5 * (lo + hi)
        angle = rng.uniform(0.0, 2.0 * np.pi, size=self.n_queries)
        rho = self.query_extent * np.sqrt(
            rng.uniform(0.0, 1.0, size=self.n_queries))
        queries = np.empty((self.n_queries, 3), dtype=np.float64)
        queries[:, 0] = center[0] + rho * np.cos(angle)
        queries[:, 1] = center[1] + rho * np.sin(angle)
        queries[:, 2] = rng.uniform(lo[2], min(hi[2], lo[2] + 4.0),
                                    size=self.n_queries)
        return queries

    def run(self, index=None) -> MapScaleResult:
        """Execute the grid over one shared index and return the result.

        ``index`` may be passed in (benchmarks pre-build it outside the
        timed region); otherwise it is built here and closed afterwards.
        """
        own_index = index is None
        if own_index:
            index = self.build_index()
        try:
            queries = self.queries(index)
            result = MapScaleResult(
                scenario=self.scenario, n_points=index.n_points,
                tile_size=self.tile_size, n_tiles=index.n_tiles,
                n_touched_tiles=0, n_queries=self.n_queries,
                radius=self.radius, seed=self.seed,
                geometries=list(self.geometries), flavors=self.flavors)
            for geometry in self.geometries:
                cpu = geometry.cpu()
                for flavor in self.flavors:
                    backend = f"{flavor}-perquery"
                    index.radius_search(queries, self.radius, backend=backend,
                                        recorded=True, cpu=cpu)
                    totals = HierarchyStats()
                    for _, tile_index in index.built_tile_indexes():
                        recorded = tile_index.backend(backend, recorded=True,
                                                      cpu=cpu)
                        totals.merge(recorded.hierarchy)
                    result.cells[(geometry.name, flavor)] = MapScaleCell(
                        geometry=geometry, flavor=flavor, hierarchy=totals)
            result.n_touched_tiles = len(index.built_tile_indexes())
            return result
        finally:
            if own_index:
                index.close()
