"""Cache-geometry sensitivity: where does the Bonsai byte win stop paying?

The paper evaluates one machine (Table IV: 32 KB 2-way L1D, 1 MB 16-way L2).
The byte *demand* reduction of the compressed search is geometry-independent
— Bonsai always requests fewer bytes — but how much of that reduction turns
into fewer line fills, fewer DRAM transfers and less energy depends on the
cache geometry: a large enough L1 absorbs the baseline's extra traffic too,
and the win compresses toward the pure demand-byte delta.

:class:`CacheGeometrySweep` maps that boundary in-repo.  It re-runs the
hardware scenario matrix (:mod:`repro.analysis.hw_sweep`) once per **named
geometry variant** — L1/L2 size and associativity variations of the Table IV
machine, threaded into both stage recorders through
``ExecutionConfig.cache_config`` — and aggregates, per geometry, the bytes
each hierarchy level moved and the energy each mode spent.

Every (geometry, scenario, backend) cell is an independent deterministic
pipeline run, so the sweep flattens all cells into one task list and runs
them across a single process pool (``n_jobs``), collecting by task index —
the same deterministic-merge contract as the parallel hardware sweep.

``benchmarks/bench_cache_sensitivity.py`` renders the result into
``benchmarks/results/cache_sensitivity.txt``; ``docs/PERFORMANCE.md``
explains how to read the table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .hw_sweep import (
    SWEEP_BACKENDS,
    HardwareSweepResult,
    SweepTask,
    mode_label,
    run_sweep_task,
)

__all__ = [
    "CacheGeometry",
    "CacheGeometrySweep",
    "CacheSweepResult",
    "GeometryRun",
    "GEOMETRIES",
    "DEFAULT_GEOMETRY_NAMES",
    "geometry_names",
]


@dataclass(frozen=True)
class CacheGeometry:
    """A named L1/L2 geometry variation of the paper's Table IV machine.

    Sizes are in **KiB** (the cache model itself takes bytes), associativity
    in ways; line size stays at the machine's 64 B.  ``cpu()`` materialises
    the variant as a :class:`~repro.hwmodel.cpu_config.CPUConfig` suitable
    for ``ExecutionConfig.cache_config`` — only the L1D/L2 geometry differs
    from Table IV, so timing/energy constants stay comparable across
    variants.
    """

    name: str
    l1_kib: int = 32
    l1_assoc: int = 2
    l2_kib: int = 1024
    l2_assoc: int = 16

    @property
    def label(self) -> str:
        """Human-readable geometry, e.g. ``"L1 32K/2w, L2 1024K/16w"``."""
        return (f"L1 {self.l1_kib}K/{self.l1_assoc}w, "
                f"L2 {self.l2_kib}K/{self.l2_assoc}w")

    def cpu(self):
        """This variant as a :class:`~repro.hwmodel.cpu_config.CPUConfig`."""
        from ..hwmodel.cpu_config import TABLE_IV_CPU

        return replace(
            TABLE_IV_CPU,
            name=f"{TABLE_IV_CPU.name} [{self.name}]",
            l1d=replace(TABLE_IV_CPU.l1d, size_bytes=self.l1_kib * 1024,
                        associativity=self.l1_assoc),
            l2=replace(TABLE_IV_CPU.l2, size_bytes=self.l2_kib * 1024,
                       associativity=self.l2_assoc),
        )


#: The named geometry variants, keyed by name.  ``table-iv`` is the paper's
#: machine; the others vary exactly one axis so the sensitivity table reads
#: as a set of one-dimensional cuts.  CLI ``--cache-geometry`` choices and
#: the default sweep grid both come from here.
GEOMETRIES: Dict[str, CacheGeometry] = {
    geometry.name: geometry for geometry in (
        CacheGeometry("table-iv"),
        CacheGeometry("l1-8k", l1_kib=8),
        CacheGeometry("l1-16k", l1_kib=16),
        CacheGeometry("l1-64k", l1_kib=64),
        CacheGeometry("l1-128k", l1_kib=128),
        CacheGeometry("l1-direct", l1_assoc=1),
        CacheGeometry("l1-8way", l1_assoc=8),
        CacheGeometry("l2-256k", l2_kib=256),
        CacheGeometry("l2-4m", l2_kib=4096),
    )
}

#: The default sweep grid: the L1-size cut plus the reference machine —
#: the axis along which the Bonsai byte win visibly stops paying off.
DEFAULT_GEOMETRY_NAMES: Tuple[str, ...] = (
    "l1-8k", "l1-16k", "table-iv", "l1-64k", "l1-128k")


def geometry_names() -> List[str]:
    """Sorted names of all named cache-geometry variants."""
    return sorted(GEOMETRIES)


@dataclass
class GeometryRun:
    """One geometry's full hardware scenario sweep."""

    geometry: CacheGeometry
    sweep: HardwareSweepResult

    def mode_totals(self, mode: str) -> Dict[str, float]:
        """One mode's hardware counters summed over scenarios and stages.

        Keys: ``bytes_loaded`` (demand bytes, geometry-independent),
        ``l2_to_l1_bytes`` / ``dram_to_l2_bytes`` (line-fill traffic, the
        geometry-sensitive quantities), ``cycles`` and ``energy_j``.
        """
        totals = {"bytes_loaded": 0, "l2_to_l1_bytes": 0,
                  "dram_to_l2_bytes": 0, "cycles": 0.0, "energy_j": 0.0}
        for run in self.sweep.runs:
            if run.mode != mode:
                continue
            for stage in run.hardware.values():
                for key in totals:
                    totals[key] += stage[key]
        return totals


@dataclass
class CacheSweepResult:
    """All geometry runs of one sensitivity sweep, in grid order."""

    runs: List[GeometryRun]
    n_frames: int
    n_beams: int
    n_azimuth_steps: int
    #: Mode labels of the swept backends, in backend order.
    modes: Tuple[str, ...]

    def geometries(self) -> List[CacheGeometry]:
        """The swept geometry variants, in sweep order."""
        return [run.geometry for run in self.runs]

    def comparison_rows(self) -> List[Dict[str, object]]:
        """Per-geometry (first mode vs. second mode) aggregate comparison.

        For the default backend pair the first mode is the baseline and the
        second the Bonsai search; each row carries both modes' traffic and
        energy totals plus the relative change of the second mode — the
        numbers the sensitivity table renders.
        """
        if len(self.modes) < 2:
            raise ValueError("comparison needs at least two swept backends")
        base_mode, other_mode = self.modes[0], self.modes[1]
        rows = []
        for run in self.runs:
            base = run.mode_totals(base_mode)
            other = run.mode_totals(other_mode)
            rows.append({
                "geometry": run.geometry,
                "base": base,
                "other": other,
                "change": {
                    key: ((other[key] - base[key]) / base[key]
                          if base[key] else 0.0)
                    for key in base
                },
            })
        return rows


class CacheGeometrySweep:
    """Re-runs the hardware matrix over L1/L2 geometry variations.

    ``geometries`` is a sequence of variant names (keys of
    :data:`GEOMETRIES`) or :class:`CacheGeometry` values, defaulting to the
    L1-size cut (:data:`DEFAULT_GEOMETRY_NAMES`); ``scenarios`` /
    ``backends`` / the sensor preset mean the same as in
    :class:`~repro.analysis.hw_sweep.HardwareScenarioSweep`.  All
    (geometry, scenario, backend) cells run across **one** process pool of
    ``n_jobs`` workers and merge by task index, so the result is identical
    to the serial nested loop's.
    """

    def __init__(self, geometries: Optional[Sequence] = None,
                 scenarios: Optional[Sequence[str]] = None, *,
                 n_frames: int = 3, seed: Optional[int] = None,
                 n_beams: int = 18, n_azimuth_steps: int = 180,
                 backends: Optional[Sequence[str]] = None,
                 n_jobs: Optional[int] = None):
        from ..scenarios import scenario_names

        names = geometries if geometries is not None else DEFAULT_GEOMETRY_NAMES
        self.geometries = [g if isinstance(g, CacheGeometry) else GEOMETRIES[g]
                           for g in names]
        self.scenarios = (list(scenarios) if scenarios is not None
                          else scenario_names())
        self.backends = tuple(backends) if backends is not None else SWEEP_BACKENDS
        self.n_frames = n_frames
        self.seed = seed
        self.n_beams = n_beams
        self.n_azimuth_steps = n_azimuth_steps
        self.n_jobs = 1 if n_jobs is None else n_jobs

    def tasks(self) -> List[SweepTask]:
        """Every (geometry, scenario, backend) cell, geometry-major."""
        return [
            SweepTask(scenario=scenario, backend=backend,
                      n_frames=self.n_frames, seed=self.seed,
                      n_beams=self.n_beams,
                      n_azimuth_steps=self.n_azimuth_steps,
                      cache_config=geometry.cpu())
            for geometry in self.geometries
            for scenario in self.scenarios
            for backend in self.backends
        ]

    def run(self) -> CacheSweepResult:
        """Execute the grid (serial or pooled) and return the result."""
        from ..engine.parallel import process_map

        modes = tuple(mode_label(backend) for backend in self.backends)
        all_runs = process_map(run_sweep_task, self.tasks(), n_jobs=self.n_jobs)
        per_geometry = len(self.scenarios) * len(self.backends)
        runs: List[GeometryRun] = []
        for index, geometry in enumerate(self.geometries):
            chunk = all_runs[index * per_geometry:(index + 1) * per_geometry]
            runs.append(GeometryRun(
                geometry=geometry,
                sweep=HardwareSweepResult(
                    runs=chunk, n_frames=self.n_frames, n_beams=self.n_beams,
                    n_azimuth_steps=self.n_azimuth_steps, modes=modes),
            ))
        return CacheSweepResult(
            runs=runs, n_frames=self.n_frames, n_beams=self.n_beams,
            n_azimuth_steps=self.n_azimuth_steps, modes=modes)
