"""Distribution statistics for box-plot style figures (Figures 11 and 12).

The paper presents end-to-end latency and energy as box plots annotated with
the mean, and additionally reports the 99th-percentile tail latency.  This
module computes those summary statistics and renders a coarse ASCII box plot
so benchmark output can be inspected without plotting libraries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["BoxPlotStats", "compare_distributions"]


@dataclass
class BoxPlotStats:
    """Summary statistics of one distribution."""

    label: str
    n: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    p99: float
    std: float

    @classmethod
    def from_values(cls, label: str, values: Sequence[float]) -> "BoxPlotStats":
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot summarise an empty distribution")
        return cls(
            label=label,
            n=int(array.size),
            mean=float(array.mean()),
            minimum=float(array.min()),
            q1=float(np.percentile(array, 25)),
            median=float(np.percentile(array, 50)),
            q3=float(np.percentile(array, 75)),
            maximum=float(array.max()),
            p99=float(np.percentile(array, 99)),
            std=float(array.std()),
        )

    def ascii_box(self, lo: float, hi: float, width: int = 48) -> str:
        """Render the box plot on a shared ``[lo, hi]`` axis of ``width`` chars."""
        if hi <= lo:
            raise ValueError("hi must exceed lo")

        def position(value: float) -> int:
            frac = (value - lo) / (hi - lo)
            return int(round(np.clip(frac, 0.0, 1.0) * (width - 1)))

        line = [" "] * width
        for index in range(position(self.minimum), position(self.maximum) + 1):
            line[index] = "-"
        for index in range(position(self.q1), position(self.q3) + 1):
            line[index] = "="
        line[position(self.median)] = "|"
        line[position(self.mean)] = "o"
        return "".join(line)


def compare_distributions(baseline: Sequence[float], improved: Sequence[float],
                          label_baseline: str = "Baseline",
                          label_improved: str = "Bonsai-extensions") -> Dict[str, float]:
    """Mean / p99 improvements of ``improved`` over ``baseline``.

    Returns fractional reductions (positive = improvement), the quantities
    the paper quotes for Figures 11 and 12 (e.g. 9.26% mean latency, 12.19%
    tail latency, 10.84% energy).
    """
    base = BoxPlotStats.from_values(label_baseline, baseline)
    new = BoxPlotStats.from_values(label_improved, improved)
    return {
        "mean_reduction": (base.mean - new.mean) / base.mean if base.mean else 0.0,
        "median_reduction": (base.median - new.median) / base.median if base.median else 0.0,
        "p99_reduction": (base.p99 - new.p99) / base.p99 if base.p99 else 0.0,
    }
