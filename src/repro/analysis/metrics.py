"""Accuracy metrics for reduced-precision radius search (Table I).

Table I of the paper reports, for each reduced floating-point format, the
fraction of radius-search classifications that flip relative to the 32-bit
baseline when the stored points are truncated to that format (no shell, no
recomputation — this is the raw error the shell mechanism later removes).

:class:`FormatErrorInspector` plugs into the standard radius-search traversal
and, for every point examined in a leaf, classifies it both with the original
32-bit coordinates and with coordinates quantised to the reduced format,
tallying the disagreements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.floatfmt import FLOAT16, FloatFormat, table1_formats
from ..kdtree.build import KDTree
from ..kdtree.node import LeafNode
from ..kdtree.radius_search import SearchStats, radius_search

__all__ = [
    "ClassificationErrorStats",
    "FormatErrorInspector",
    "classification_error",
    "table1_classification_errors",
]


@dataclass
class ClassificationErrorStats:
    """Tally of classification agreements/disagreements for one format."""

    format_name: str
    classifications: int = 0
    misclassified: int = 0
    false_in: int = 0
    false_out: int = 0

    @property
    def error_rate(self) -> float:
        """Fraction of classifications that disagree with the baseline."""
        if self.classifications == 0:
            return 0.0
        return self.misclassified / self.classifications

    def merge(self, other: "ClassificationErrorStats") -> None:
        """Accumulate another tally of the same format."""
        if other.format_name != self.format_name:
            raise ValueError("cannot merge error stats of different formats")
        self.classifications += other.classifications
        self.misclassified += other.misclassified
        self.false_in += other.false_in
        self.false_out += other.false_out


class FormatErrorInspector:
    """Leaf inspector comparing reduced-precision vs. 32-bit classification.

    Results appended to the search output match the *baseline* (32-bit)
    classification, so searches remain correct; the reduced-precision outcome
    is only tallied.  Quantised leaves are cached because leaves are visited
    many times per frame.
    """

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self.stats = ClassificationErrorStats(format_name=fmt.name)
        self._quantised_cache: Dict[int, np.ndarray] = {}

    def inspect(self, tree: KDTree, leaf: LeafNode, query: np.ndarray, r2: float,
                results: List[int], stats: SearchStats, recorder, layout) -> None:
        original = tree.points[leaf.indices].astype(np.float64)
        quantised = self._quantised(tree, leaf)

        diffs = original - query
        d2_exact = np.einsum("ij,ij->i", diffs, diffs)
        diffs_q = quantised - query
        d2_reduced = np.einsum("ij,ij->i", diffs_q, diffs_q)

        in_exact = d2_exact <= r2
        in_reduced = d2_reduced <= r2

        stats.points_examined += leaf.n_points
        stats.points_in_radius += int(in_exact.sum())

        self.stats.classifications += leaf.n_points
        disagreements = in_exact != in_reduced
        self.stats.misclassified += int(disagreements.sum())
        self.stats.false_in += int((in_reduced & ~in_exact).sum())
        self.stats.false_out += int((~in_reduced & in_exact).sum())

        for point_index, inside in zip(leaf.indices, in_exact):
            if inside:
                results.append(int(point_index))

    def _quantised(self, tree: KDTree, leaf: LeafNode) -> np.ndarray:
        cached = self._quantised_cache.get(leaf.leaf_id)
        if cached is not None:
            return cached
        quantised = self.fmt.quantize_array(tree.points[leaf.indices].astype(np.float64))
        self._quantised_cache[leaf.leaf_id] = quantised
        return quantised


def classification_error(tree: KDTree, queries: Sequence[Sequence[float]], radius: float,
                         fmt: FloatFormat) -> ClassificationErrorStats:
    """Classification error of ``fmt`` over a set of radius searches."""
    inspector = FormatErrorInspector(fmt)
    stats = SearchStats()
    for query in queries:
        radius_search(tree, query, radius, inspector=inspector, stats=stats)
    return inspector.stats


def table1_classification_errors(tree: KDTree, queries: Sequence[Sequence[float]],
                                 radius: float,
                                 formats: Optional[Iterable[FloatFormat]] = None,
                                 ) -> Dict[str, ClassificationErrorStats]:
    """Classification error of every Table I format over the same searches."""
    formats = list(formats) if formats is not None else table1_formats()
    return {
        fmt.name: classification_error(tree, queries, radius, fmt) for fmt in formats
    }
