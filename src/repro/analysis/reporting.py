"""Plain-text renderers for the paper's tables and figures.

The benchmark harness prints its results through these helpers so every bench
produces a self-describing block of text (the "regenerated" table or figure)
next to the paper's reported values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .boxplot import BoxPlotStats
from .compare import ComparisonSummary, MetricComparison

__all__ = [
    "render_table",
    "render_fig2",
    "render_table1",
    "render_fig9a",
    "render_fig9b",
    "render_fig10",
    "render_boxplot_figure",
    "render_table5",
    "render_hw_matrix",
]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with column alignment."""
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def _pct(value: float, signed: bool = False) -> str:
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100:.2f}%"


def render_fig2(shares: Sequence, paper_values: Optional[Mapping[str, float]] = None) -> str:
    """Figure 2: share of execution time spent in radius search per task."""
    rows = []
    for share in shares:
        paper = ""
        if paper_values and share.task in paper_values:
            paper = _pct(paper_values[share.task])
        rows.append((share.task, _pct(share.radius_search_share), paper))
    return render_table(
        ("Task", "Radius search share (measured)", "Paper"),
        rows,
        title="Figure 2 - Radius search execution-time share",
    )


def render_table1(errors: Mapping[str, object],
                  paper_values: Optional[Mapping[str, float]] = None) -> str:
    """Table I: misclassification rate per reduced floating-point format."""
    rows = []
    for name, stats in errors.items():
        paper = ""
        if paper_values and name in paper_values:
            paper = _pct(paper_values[name])
        rows.append((name, f"{stats.classifications}", _pct(stats.error_rate), paper))
    return render_table(
        ("Format", "Classifications", "Misclassified (measured)", "Paper"),
        rows,
        title="Table I - Classification error with reduced FP formats",
    )


def render_fig9a(summary: ComparisonSummary,
                 paper_values: Optional[Mapping[str, float]] = None) -> str:
    """Figure 9a: relative change of the extract-kernel hardware metrics."""
    rows = []
    for name, comparison in summary.fig9a.items():
        paper = ""
        if paper_values and name in paper_values:
            paper = _pct(paper_values[name], signed=True)
        rows.append((name, f"{comparison.baseline:.3e}", f"{comparison.bonsai:.3e}",
                     _pct(comparison.relative_change, signed=True), paper))
    return render_table(
        ("Metric", "Baseline", "Bonsai", "Relative change (measured)", "Paper"),
        rows,
        title="Figure 9a - Extract kernel hardware metrics",
    )


def render_fig9b(summary: ComparisonSummary, paper_fraction: float = 0.37) -> str:
    """Figure 9b: bytes loaded to fetch leaf points during the search."""
    rows = [
        ("Baseline", f"{summary.bytes_baseline / 1e6:.2f} MB", ""),
        ("Bonsai-extensions", f"{summary.bytes_bonsai / 1e6:.2f} MB",
         f"{_pct(summary.bytes_fraction)} of baseline (paper: {_pct(paper_fraction)})"),
    ]
    return render_table(
        ("Configuration", "Bytes to load points", "Note"),
        rows,
        title="Figure 9b - Bytes loaded to fetch points during radius search",
    )


def render_fig10(summary: ComparisonSummary,
                 paper_values: Optional[Mapping[str, float]] = None) -> str:
    """Figure 10: accesses per memory-hierarchy level."""
    rows = []
    for name, comparison in summary.fig10.items():
        paper = ""
        if paper_values and name in paper_values:
            paper = _pct(paper_values[name], signed=True)
        rows.append((name, f"{comparison.baseline:.3e}", f"{comparison.bonsai:.3e}",
                     _pct(comparison.relative_change, signed=True), paper))
    return render_table(
        ("Level", "Baseline accesses", "Bonsai accesses", "Relative change", "Paper"),
        rows,
        title="Figure 10 - Memory hierarchy accesses",
    )


def render_boxplot_figure(title: str, baseline: BoxPlotStats, improved: BoxPlotStats,
                          improvements: Mapping[str, float],
                          paper_mean_reduction: Optional[float] = None,
                          unit: str = "") -> str:
    """Figures 11/12: two distributions plus mean/p99 improvements."""
    lo = min(baseline.minimum, improved.minimum)
    hi = max(baseline.maximum, improved.maximum)
    if hi <= lo:
        hi = lo + 1e-12
    lines = [title]
    for stats in (baseline, improved):
        lines.append(
            f"  {stats.label:<20} mean={stats.mean:.4g}{unit} "
            f"median={stats.median:.4g}{unit} p99={stats.p99:.4g}{unit}"
        )
        lines.append(f"  {'':<20} [{stats.ascii_box(lo, hi)}]")
    lines.append(
        f"  Mean improvement: {_pct(improvements['mean_reduction'])}"
        + (f" (paper: {_pct(paper_mean_reduction)})" if paper_mean_reduction is not None else "")
    )
    lines.append(f"  P99 improvement:  {_pct(improvements['p99_reduction'])}")
    return "\n".join(lines)


def render_hw_matrix(sweep) -> str:
    """Hardware scenario matrix: per-stage cache/timing/energy, every world.

    Takes a :class:`~repro.analysis.hw_sweep.HardwareSweepResult` and renders
    one row per (scenario, stage) with the baseline and Bonsai trace-driven
    figures side by side: L1 miss ratios, demand bytes the stage loaded,
    line-fill bytes DRAM served to L2, and the relative cycle and energy
    changes of the Bonsai configuration.
    """
    rows = []
    for scenario in sweep.scenarios():
        baseline, bonsai = sweep.pair(scenario)
        for stage in sorted(baseline.hardware):
            base = baseline.hardware[stage]
            bon = bonsai.hardware[stage]
            base_bytes = base["bytes_loaded"]
            byte_change = ((bon["bytes_loaded"] - base_bytes) / base_bytes
                           if base_bytes else 0.0)
            cycle_change = ((bon["cycles"] - base["cycles"]) / base["cycles"]
                            if base["cycles"] else 0.0)
            energy_change = ((bon["energy_j"] - base["energy_j"]) / base["energy_j"]
                             if base["energy_j"] else 0.0)
            rows.append((
                scenario,
                stage,
                _pct(base["l1_miss_ratio"]),
                _pct(bon["l1_miss_ratio"]),
                f"{base_bytes:,}",
                f"{bon['bytes_loaded']:,}",
                _pct(byte_change, signed=True),
                f"{base['dram_to_l2_bytes']:,}",
                f"{bon['dram_to_l2_bytes']:,}",
                _pct(cycle_change, signed=True),
                _pct(energy_change, signed=True),
            ))
    return render_table(
        ("Scenario", "Stage", "L1 miss", "L1 miss (B)", "Demand B", "Demand B (B)",
         "Change", "DRAM->L2 B", "DRAM->L2 B (B)", "Cycles chg", "Energy chg"),
        rows,
        title=(f"Hardware scenario matrix - trace-driven cache/timing/energy, "
               f"{sweep.n_frames} frames at {sweep.n_beams}x{sweep.n_azimuth_steps} "
               f"rays ((B) = Bonsai-extensions)"),
    )


def render_cache_sensitivity(result) -> str:
    """Cache-geometry sensitivity table: the Bonsai win per geometry.

    Takes a :class:`~repro.analysis.cache_sweep.CacheSweepResult` and renders
    one row per geometry variant with the two modes' traffic and energy
    totals (summed over scenarios and stages) side by side.  Demand bytes
    are geometry-independent — that column's change is constant — while the
    line-fill columns (L2->L1, DRAM->L2) and energy show where bigger caches
    absorb the baseline's extra traffic and the Bonsai byte win stops
    paying off.
    """
    rows = []
    for row in result.comparison_rows():
        geometry = row["geometry"]
        base, other, change = row["base"], row["other"], row["change"]
        rows.append((
            geometry.name,
            geometry.label,
            _pct(change["bytes_loaded"], signed=True),
            f"{base['l2_to_l1_bytes']:,}",
            f"{other['l2_to_l1_bytes']:,}",
            _pct(change["l2_to_l1_bytes"], signed=True),
            f"{base['dram_to_l2_bytes']:,}",
            f"{other['dram_to_l2_bytes']:,}",
            _pct(change["dram_to_l2_bytes"], signed=True),
            _pct(change["cycles"], signed=True),
            _pct(change["energy_j"], signed=True),
        ))
    scenario_set = sorted({run.scenario
                           for geo in result.runs for run in geo.sweep.runs})
    return render_table(
        ("Geometry", "L1/L2", "Demand chg", "L2->L1 B", "L2->L1 B (B)",
         "Change", "DRAM->L2 B", "DRAM->L2 B (B)", "Change",
         "Cycles chg", "Energy chg"),
        rows,
        title=(f"Cache-geometry sensitivity - {len(scenario_set)} scenarios "
               f"({', '.join(scenario_set)}), {result.n_frames} frames at "
               f"{result.n_beams}x{result.n_azimuth_steps} rays "
               f"((B) = Bonsai-extensions; totals over scenarios+stages)"),
    )


def render_map_scale_sensitivity(result) -> str:
    """Map-scale cache-geometry table: the L2 cut at 1M+ points.

    Takes a :class:`~repro.analysis.map_scale.MapScaleResult` and renders
    one row per geometry with both flavours' recorded traffic totals side
    by side.  Unlike the frame-scale sensitivity table there are no
    cycle/energy columns — the map-scale sweep records raw search traffic,
    not a full pipeline — but it adds the per-level miss ratios, which is
    where L2 capacity actually shows.
    """
    rows = []
    for row in result.comparison_rows():
        geometry = row["geometry"]
        base, other, change = row["base"], row["other"], row["change"]
        rows.append((
            geometry.name,
            geometry.label,
            _pct(change["bytes_loaded"], signed=True),
            f"{base['l2_to_l1_bytes']:,}",
            f"{other['l2_to_l1_bytes']:,}",
            _pct(change["l2_to_l1_bytes"], signed=True),
            f"{base['dram_to_l2_bytes']:,}",
            f"{other['dram_to_l2_bytes']:,}",
            _pct(change["dram_to_l2_bytes"], signed=True),
            f"{_pct(base['l2_miss_ratio'])}/{_pct(other['l2_miss_ratio'])}",
        ))
    return render_table(
        ("Geometry", "L1/L2", "Demand chg", "L2->L1 B", "L2->L1 B (B)",
         "Change", "DRAM->L2 B", "DRAM->L2 B (B)", "Change",
         "L2 miss base/(B)"),
        rows,
        title=(f"Map-scale cache sensitivity - scenario {result.scenario}, "
               f"{result.n_points:,} points, tile {result.tile_size:g} m "
               f"({result.n_touched_tiles}/{result.n_tiles} tiles touched), "
               f"{result.n_queries} radius-{result.radius:g} queries "
               f"((B) = Bonsai-extensions)"),
    )


def render_table5(estimates: Mapping[str, object], table_v) -> str:
    """Table V: area and power of the K-D Bonsai additions."""
    compression = estimates["compression_unit"]
    fus = estimates["square_diff_fus"]
    rows = [
        ("Compression/Decompression FU",
         f"{compression.area_mm2:.4f}", f"{table_v.compression_fu.area_mm2:.4f}",
         f"{compression.dynamic_power_w:.4f}", f"{table_v.compression_fu.dynamic_power_w:.4f}"),
        ("4x (A-B')^2 FU",
         f"{fus.area_mm2:.4f}", f"{table_v.square_diff_fus.area_mm2:.4f}",
         f"{fus.dynamic_power_w:.4f}", f"{table_v.square_diff_fus.dynamic_power_w:.4f}"),
        ("Total",
         f"{estimates['total_area_mm2']:.4f}", f"{table_v.bonsai_total.area_mm2:.4f}",
         f"{estimates['total_dynamic_power_w']:.4f}",
         f"{table_v.bonsai_total.dynamic_power_w:.4f}"),
        ("Relative to baseline core",
         _pct(estimates['total_area_mm2'] / table_v.processor.area_mm2),
         _pct(table_v.relative_area_increase),
         _pct(estimates['total_dynamic_power_w'] / table_v.processor.dynamic_power_w),
         _pct(table_v.relative_dynamic_power_increase)),
    ]
    return render_table(
        ("Unit", "Area mm^2 (model)", "Area mm^2 (paper)",
         "Dyn. power W (model)", "Dyn. power W (paper)"),
        rows,
        title="Table V - Area and power of the K-D Bonsai additions",
    )
