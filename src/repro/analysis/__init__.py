"""Metrics, comparisons and report rendering for the paper's evaluation."""

from .boxplot import BoxPlotStats, compare_distributions
from .cache_sweep import (
    CacheGeometry,
    CacheGeometrySweep,
    CacheSweepResult,
    GEOMETRIES,
    geometry_names,
)
from .compare import ComparisonSummary, MetricComparison, compare_measurements
from .hw_sweep import HardwareScenarioRun, HardwareScenarioSweep, HardwareSweepResult
from .map_scale import (
    MAP_SCALE_GEOMETRY_NAMES,
    MapScaleCell,
    MapScaleResult,
    MapScaleSweep,
)
from .metrics import (
    ClassificationErrorStats,
    FormatErrorInspector,
    classification_error,
    table1_classification_errors,
)
from .reporting import (
    render_boxplot_figure,
    render_cache_sensitivity,
    render_map_scale_sensitivity,
    render_fig2,
    render_fig9a,
    render_fig9b,
    render_fig10,
    render_hw_matrix,
    render_table,
    render_table1,
    render_table5,
)

__all__ = [
    "BoxPlotStats",
    "compare_distributions",
    "CacheGeometry",
    "CacheGeometrySweep",
    "CacheSweepResult",
    "GEOMETRIES",
    "geometry_names",
    "ComparisonSummary",
    "MetricComparison",
    "compare_measurements",
    "HardwareScenarioRun",
    "HardwareScenarioSweep",
    "HardwareSweepResult",
    "MAP_SCALE_GEOMETRY_NAMES",
    "MapScaleCell",
    "MapScaleResult",
    "MapScaleSweep",
    "ClassificationErrorStats",
    "FormatErrorInspector",
    "classification_error",
    "table1_classification_errors",
    "render_boxplot_figure",
    "render_cache_sensitivity",
    "render_map_scale_sensitivity",
    "render_fig2",
    "render_fig9a",
    "render_fig9b",
    "render_fig10",
    "render_hw_matrix",
    "render_table",
    "render_table1",
    "render_table5",
]
