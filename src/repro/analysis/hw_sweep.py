"""Hardware-in-the-loop scenario sweep: every world through the cache model.

The paper validates its cache/timing/energy claims on one urban point
distribution.  :class:`HardwareScenarioSweep` runs every registered scenario
(:mod:`repro.scenarios`) end-to-end through
:class:`~repro.workloads.PipelineRunner` in hardware-in-the-loop mode
(``hardware=True``), with the baseline and the Bonsai search, and collects
the per-stage trace-driven hardware metrics — miss ratios, bytes moved per
hierarchy level, cycle and energy estimates — into one structured,
deterministic result.

The result answers, in-repo, whether the paper's byte-reduction and
cache-behaviour claims generalize beyond the urban world: dense indoor
aisles, sparse rural fields, degraded sensors.  ``bench_scenario_hw_matrix``
renders it as a table; ``tests/test_golden_hardware.py`` locks the underlying
per-scenario metrics down as golden snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["HardwareScenarioRun", "HardwareSweepResult", "HardwareScenarioSweep"]

#: The two search configurations every scenario runs under.
SWEEP_MODES = ("baseline", "bonsai")


@dataclass
class HardwareScenarioRun:
    """One scenario under one search configuration."""

    scenario: str
    mode: str
    #: The full deterministic metrics dictionary of the run, including the
    #: per-stage ``"hardware"`` section (see ``PipelineRunResult.metrics``).
    metrics: Dict[str, object]

    @property
    def hardware(self) -> Dict[str, Dict[str, object]]:
        """The per-stage hardware section of the run's metrics."""
        return self.metrics["hardware"]  # type: ignore[return-value]


@dataclass
class HardwareSweepResult:
    """All runs of one sweep plus the sweep's sensor/sequence preset."""

    runs: List[HardwareScenarioRun]
    n_frames: int
    n_beams: int
    n_azimuth_steps: int

    def scenarios(self) -> List[str]:
        """Scenario names covered by the sweep, in run order (deduplicated)."""
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.scenario, None)
        return list(seen)

    def pair(self, scenario: str) -> Tuple[HardwareScenarioRun, HardwareScenarioRun]:
        """The (baseline, bonsai) runs of one scenario."""
        by_mode = {run.mode: run for run in self.runs if run.scenario == scenario}
        missing = [mode for mode in SWEEP_MODES if mode not in by_mode]
        if missing:
            raise KeyError(f"scenario {scenario!r} missing modes {missing} in sweep")
        return by_mode["baseline"], by_mode["bonsai"]

    def as_dict(self) -> Dict[str, object]:
        """The whole sweep as one deterministic, JSON-serialisable mapping."""
        return {
            "preset": {
                "n_frames": self.n_frames,
                "n_beams": self.n_beams,
                "n_azimuth_steps": self.n_azimuth_steps,
            },
            "scenarios": {
                scenario: {mode: run.metrics
                           for mode, run in zip(SWEEP_MODES, self.pair(scenario))}
                for scenario in sorted(self.scenarios())
            },
        }


class HardwareScenarioSweep:
    """Runs every scenario x {baseline, Bonsai} in hardware-in-the-loop mode.

    ``scenarios`` defaults to every registered scenario; the sensor preset
    (``n_frames``/``n_beams``/``n_azimuth_steps``) applies to all of them so
    the rows of the resulting matrix are comparable.  The sweep is
    deterministic: same scenarios, same preset, same seeds, same result.
    """

    def __init__(self, scenarios: Optional[Sequence[str]] = None, *,
                 n_frames: int = 3, seed: Optional[int] = None,
                 n_beams: int = 18, n_azimuth_steps: int = 180):
        from ..scenarios import scenario_names

        self.scenarios = list(scenarios) if scenarios is not None else scenario_names()
        self.n_frames = n_frames
        self.seed = seed
        self.n_beams = n_beams
        self.n_azimuth_steps = n_azimuth_steps

    def _run_one(self, scenario: str, mode: str) -> HardwareScenarioRun:
        from ..workloads import PipelineRunner, PipelineRunnerConfig

        runner = PipelineRunner.from_scenario(
            scenario,
            config=PipelineRunnerConfig(use_bonsai=(mode == "bonsai"), hardware=True),
            n_frames=self.n_frames, seed=self.seed,
            n_beams=self.n_beams, n_azimuth_steps=self.n_azimuth_steps,
        )
        return HardwareScenarioRun(scenario=scenario, mode=mode,
                                   metrics=runner.run().metrics())

    def run(self) -> HardwareSweepResult:
        """Execute the sweep and return the structured result."""
        runs = [
            self._run_one(scenario, mode)
            for scenario in self.scenarios
            for mode in SWEEP_MODES
        ]
        return HardwareSweepResult(
            runs=runs, n_frames=self.n_frames,
            n_beams=self.n_beams, n_azimuth_steps=self.n_azimuth_steps,
        )
