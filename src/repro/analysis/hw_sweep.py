"""Hardware-in-the-loop scenario sweep: every world through the cache model.

The paper validates its cache/timing/energy claims on one urban point
distribution.  :class:`HardwareScenarioSweep` runs every registered scenario
(:mod:`repro.scenarios`) end-to-end through
:class:`~repro.workloads.PipelineRunner` in hardware-in-the-loop mode
(``hardware=True``), with the baseline and the Bonsai search, and collects
the per-stage trace-driven hardware metrics — miss ratios, bytes moved per
hierarchy level, cycle and energy estimates — into one structured,
deterministic result.

The result answers, in-repo, whether the paper's byte-reduction and
cache-behaviour claims generalize beyond the urban world: dense indoor
aisles, sparse rural fields, degraded sensors.  ``bench_scenario_hw_matrix``
renders it as a table; ``tests/test_golden_hardware.py`` locks the underlying
per-scenario metrics down as golden snapshots.

The sweep runs its (scenario, backend) cells across a **process pool** when
``n_jobs > 1`` (each cell is an independent, seeded, deterministic pipeline
run) and collects the results **by task index**, so the parallel sweep
returns exactly the result the serial loop returns — same runs, same order,
same metrics — whatever order the workers complete in
(``tests/test_parallel_sweep.py`` locks this down).  That is what makes the
8-world matrix and full-resolution sensors affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["HardwareScenarioRun", "HardwareSweepResult", "HardwareScenarioSweep",
           "SweepTask", "run_sweep_task",
           "SWEEP_BACKENDS", "SWEEP_MODES", "mode_label"]

#: The execution backends every scenario runs under (registry names).
SWEEP_BACKENDS = ("baseline-batched", "bonsai-batched")


def mode_label(backend: str) -> str:
    """A backend's short mode label, unique per backend.

    The default batched backends keep the historical short labels
    (``baseline`` / ``bonsai``); any other backend is labelled by its full
    registry name so two same-flavour backends never collide in
    ``HardwareSweepResult.pair``, a rendered table, or a golden-snapshot
    filename (``tests/goldens.py`` reuses this mapping).
    """
    flavor, strategy = backend.split("-", 1)
    return flavor if strategy == "batched" else backend


#: Short mode labels of the default sweep backends, used in table rows and
#: golden-snapshot filenames.
SWEEP_MODES = tuple(mode_label(backend) for backend in SWEEP_BACKENDS)


@dataclass
class HardwareScenarioRun:
    """One scenario under one search configuration."""

    scenario: str
    mode: str
    #: The full deterministic metrics dictionary of the run, including the
    #: per-stage ``"hardware"`` section (see ``PipelineRunResult.metrics``).
    metrics: Dict[str, object]
    #: Registered name of the execution backend that served the run.
    backend: str = "baseline-batched"

    @property
    def hardware(self) -> Dict[str, Dict[str, object]]:
        """The per-stage hardware section of the run's metrics."""
        return self.metrics["hardware"]  # type: ignore[return-value]


@dataclass
class HardwareSweepResult:
    """All runs of one sweep plus the sweep's sensor/sequence preset."""

    runs: List[HardwareScenarioRun]
    n_frames: int
    n_beams: int
    n_azimuth_steps: int
    #: The sweep's mode labels, in backend order (not hardwired to the
    #: defaults — a sweep over other backends carries its own labels).
    modes: Tuple[str, ...] = SWEEP_MODES

    def scenarios(self) -> List[str]:
        """Scenario names covered by the sweep, in run order (deduplicated)."""
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.scenario, None)
        return list(seen)

    def pair(self, scenario: str) -> Tuple[HardwareScenarioRun, ...]:
        """One scenario's runs, in the sweep's mode order.

        For the default sweep this is the (baseline, bonsai) pair the
        renderers compare.
        """
        by_mode = {run.mode: run for run in self.runs if run.scenario == scenario}
        missing = [mode for mode in self.modes if mode not in by_mode]
        if missing:
            raise KeyError(f"scenario {scenario!r} missing modes {missing} in sweep")
        return tuple(by_mode[mode] for mode in self.modes)

    def as_dict(self) -> Dict[str, object]:
        """The whole sweep as one deterministic, JSON-serialisable mapping."""
        return {
            "preset": {
                "n_frames": self.n_frames,
                "n_beams": self.n_beams,
                "n_azimuth_steps": self.n_azimuth_steps,
            },
            "scenarios": {
                scenario: {mode: run.metrics
                           for mode, run in zip(self.modes, self.pair(scenario))}
                for scenario in sorted(self.scenarios())
            },
        }


@dataclass(frozen=True)
class SweepTask:
    """One independent (scenario, backend) cell of a hardware sweep.

    The task is a picklable, self-contained description of one
    hardware-in-the-loop pipeline run — everything a worker process needs.
    ``cache_config`` is the optional :class:`~repro.hwmodel.cpu_config.CPUConfig`
    the recorded machine simulates (``None`` = each stage's default, the
    paper's Table IV geometry).
    """

    scenario: str
    backend: str
    n_frames: int
    seed: Optional[int]
    n_beams: int
    n_azimuth_steps: int
    cache_config: object = None


def run_sweep_task(task: SweepTask) -> HardwareScenarioRun:
    """Execute one sweep cell (in this process or a pool worker).

    A pure function of the task: scenario and seeds drive every generator,
    the cache simulation is trace-exact, and ``metrics()`` excludes
    wall-clock — so the same task returns identical metrics in any process,
    which is what lets the parallel sweep reproduce the serial (and golden)
    results bit for bit.
    """
    from ..engine import ExecutionConfig
    from ..workloads import PipelineRunner, PipelineRunnerConfig

    execution = ExecutionConfig(backend=task.backend, hardware=True,
                                cache_config=task.cache_config)
    runner = PipelineRunner.from_scenario(
        task.scenario,
        config=PipelineRunnerConfig(execution=execution),
        n_frames=task.n_frames, seed=task.seed,
        n_beams=task.n_beams, n_azimuth_steps=task.n_azimuth_steps,
    )
    return HardwareScenarioRun(scenario=task.scenario,
                               mode=mode_label(task.backend),
                               metrics=runner.run().metrics(),
                               backend=task.backend)


class HardwareScenarioSweep:
    """Runs every scenario x execution backend in hardware-in-the-loop mode.

    ``scenarios`` defaults to every registered scenario and ``backends`` to
    the baseline/Bonsai batched pair (``SWEEP_BACKENDS``), both selected by
    registry name; ``cache_config`` optionally pins the recorded machine's
    cache geometry for sensitivity sweeps.  The sensor preset
    (``n_frames``/``n_beams``/``n_azimuth_steps``) applies to every run so
    the rows of the resulting matrix are comparable.

    ``n_jobs`` selects how many worker processes run the sweep's cells
    (``None``/``1`` = serial in this process).  The sweep is deterministic
    either way: same scenarios, same preset, same seeds, same result — the
    parallel path collects results by task index, so worker completion
    order never reaches the output.
    """

    def __init__(self, scenarios: Optional[Sequence[str]] = None, *,
                 n_frames: int = 3, seed: Optional[int] = None,
                 n_beams: int = 18, n_azimuth_steps: int = 180,
                 backends: Optional[Sequence[str]] = None,
                 cache_config=None, n_jobs: Optional[int] = None):
        from ..scenarios import scenario_names

        self.scenarios = list(scenarios) if scenarios is not None else scenario_names()
        self.backends = tuple(backends) if backends is not None else SWEEP_BACKENDS
        self.cache_config = cache_config
        self.n_frames = n_frames
        self.seed = seed
        self.n_beams = n_beams
        self.n_azimuth_steps = n_azimuth_steps
        self.n_jobs = 1 if n_jobs is None else n_jobs

    def tasks(self) -> List[SweepTask]:
        """The sweep's cells in deterministic (scenario-major) order."""
        return [
            SweepTask(scenario=scenario, backend=backend,
                      n_frames=self.n_frames, seed=self.seed,
                      n_beams=self.n_beams,
                      n_azimuth_steps=self.n_azimuth_steps,
                      cache_config=self.cache_config)
            for scenario in self.scenarios
            for backend in self.backends
        ]

    def run(self) -> HardwareSweepResult:
        """Execute the sweep (serial or pooled) and return the result."""
        from ..engine.parallel import process_map

        runs = process_map(run_sweep_task, self.tasks(), n_jobs=self.n_jobs)
        return HardwareSweepResult(
            runs=runs, n_frames=self.n_frames,
            n_beams=self.n_beams, n_azimuth_steps=self.n_azimuth_steps,
            modes=tuple(mode_label(backend) for backend in self.backends),
        )
