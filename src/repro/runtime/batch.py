"""Batched k-d tree queries: many queries per traversal, NumPy throughout.

The single-query paths (:mod:`repro.kdtree.knn`,
:mod:`repro.kdtree.radius_search`) walk the tree once per query and pay the
Python interpreter for every node.  The perception workloads, however, issue
queries in large, known batches — every scan point of an NDT iteration, every
frontier of a euclidean-clustering BFS wave, every ICP correspondence round —
so this module traverses the tree once per *batch*: each node is visited with
the subset of queries whose search region reaches it, and leaf work becomes
one ``(queries, points)`` distance matrix per leaf
(:func:`repro.runtime.kernels.pairwise_distances2`).

Results are exact: the traversal applies the same per-query pruning rules as
the single-query code, and the distance kernels are shared, so
``batch_radius_search`` / ``batch_knn`` return precisely the points the
per-query functions return (radius results are index-sorted per query; kNN
results are ``(distance, index)``-sorted like the single-query output).  The
one defined difference is kNN *distance ties at the k-th place*: the batched
engine breaks them deterministically by lowest point index, whereas the
per-query heap keeps whichever tied point its traversal encountered first —
on such ties the two may pick different (equidistant) points.

:class:`~repro.kdtree.radius_search.SearchStats` counters aggregate exactly
as if the queries had been issued one by one.

Example
-------
>>> import numpy as np
>>> from repro.kdtree import build_kdtree
>>> from repro.runtime import batch_knn, batch_radius_search
>>> points = np.random.default_rng(0).uniform(-1, 1, (500, 3)).astype(np.float32)
>>> tree = build_kdtree(points)
>>> queries = points[:100]
>>> near = batch_radius_search(tree, queries, radius=0.25)
>>> len(near.indices_for(0)) >= 1        # every query point finds itself
True
>>> knn = batch_knn(tree, queries, k=4)
>>> knn.indices.shape
(100, 4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..kdtree.build import KDTree
from ..kdtree.layout import POINT_STRIDE_BYTES
from ..kdtree.node import LeafNode
from ..kdtree.radius_search import SearchStats
from .kernels import pairwise_distances2

__all__ = [
    "BatchRadiusResult",
    "BatchKNNResult",
    "BatchQueryEngine",
    "batch_radius_search",
    "batch_knn",
]


def as_query_batch(queries) -> np.ndarray:
    """Validate and convert ``queries`` into a ``(Q, 3)`` float64 array."""
    arr = np.asarray(queries, dtype=np.float64)
    if arr.ndim == 1 and arr.shape == (3,):
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError("queries must form a (Q, 3) array of 3D points")
    return arr


@dataclass
class BatchRadiusResult:
    """Per-query radius-search results in CSR (offsets + flat indices) form.

    ``point_indices[offsets[q]:offsets[q + 1]]`` are the tree points within
    the radius of query ``q``, sorted by point index.  The CSR layout keeps a
    10k-query sweep in two flat arrays instead of 10k Python lists.
    """

    offsets: np.ndarray
    point_indices: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.offsets.shape[0] - 1

    @property
    def counts(self) -> np.ndarray:
        """Number of in-radius points per query."""
        return np.diff(self.offsets)

    @property
    def total_matches(self) -> int:
        """Total number of (query, point) matches in the batch."""
        return int(self.point_indices.shape[0])

    def indices_for(self, query_index: int) -> np.ndarray:
        """In-radius point indices of one query (sorted by index)."""
        return self.point_indices[self.offsets[query_index]:self.offsets[query_index + 1]]

    def as_lists(self) -> List[List[int]]:
        """Results as one Python list per query (the single-query format)."""
        return [self.indices_for(q).tolist() for q in range(self.n_queries)]


@dataclass
class BatchKNNResult:
    """Per-query kNN results as dense ``(Q, k)`` arrays.

    Rows are sorted by increasing distance (ties by point index, like the
    single-query kNN).  When the tree holds fewer than ``k`` points the
    trailing entries are padding: index ``-1``, distance ``inf``.
    """

    indices: np.ndarray
    distances: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.indices.shape[0]

    def as_lists(self) -> List[List[Tuple[int, float]]]:
        """Results as ``(index, distance)`` lists (the single-query format)."""
        out: List[List[Tuple[int, float]]] = []
        for row_idx, row_dist in zip(self.indices, self.distances):
            valid = row_idx >= 0
            out.append([(int(i), float(d)) for i, d in zip(row_idx[valid], row_dist[valid])])
        return out


class BatchQueryEngine:
    """Batched radius / kNN searches over one tree with shared statistics.

    Binds a :class:`~repro.kdtree.build.KDTree` and a
    :class:`~repro.kdtree.radius_search.SearchStats` accumulator, mirroring
    :class:`~repro.kdtree.radius_search.RadiusSearcher` for the batched case.

    Example
    -------
    >>> engine = BatchQueryEngine(tree)                        # doctest: +SKIP
    >>> result = engine.radius_search(queries, radius=0.5)     # doctest: +SKIP
    >>> engine.stats.queries == len(queries)                   # doctest: +SKIP
    True
    """

    def __init__(self, tree: KDTree, stats: Optional[SearchStats] = None):
        self.tree = tree
        self.stats = stats if stats is not None else SearchStats()

    # ------------------------------------------------------------------
    # Radius search
    # ------------------------------------------------------------------
    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """All tree points within ``radius`` of each query."""
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        query_arr = as_query_batch(queries)
        n_queries = query_arr.shape[0]
        self.stats.queries += n_queries
        if n_queries == 0:
            return _empty_radius_result(0)

        r2 = float(radius) * float(radius)
        points_f64 = self.tree.points_f64
        stats = self.stats
        hit_queries: List[np.ndarray] = []
        hit_points: List[np.ndarray] = []

        def visit_leaf(leaf: LeafNode, qidx: np.ndarray) -> None:
            points = points_f64[leaf.indices]
            d2 = pairwise_distances2(points, query_arr[qidx])
            inside = d2 <= r2
            stats.points_examined += qidx.size * leaf.n_points
            stats.points_in_radius += int(inside.sum())
            stats.point_bytes_loaded += qidx.size * leaf.n_points * POINT_STRIDE_BYTES
            rows, cols = np.nonzero(inside)
            if rows.size:
                hit_queries.append(qidx[rows])
                hit_points.append(leaf.indices[cols])

        radius_traverse(self.tree, query_arr, float(radius), stats, visit_leaf)
        return _build_radius_result(n_queries, hit_queries, hit_points)

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query convenience wrapper (sorted point indices)."""
        return self.radius_search(as_query_batch(query), radius).indices_for(0).tolist()

    # ------------------------------------------------------------------
    # k nearest neighbours
    # ------------------------------------------------------------------
    def knn(self, queries, k: int) -> BatchKNNResult:
        """The ``k`` nearest tree points of each query.

        Two-pass bound-then-sweep algorithm: a planning descent first drops
        every query into its home leaf and derives an upper bound ``tau`` on
        its k-th nearest squared distance; a single radius-style traversal
        then visits exactly the subtrees within that bound of each query and
        the k nearest are selected from the collected candidates.  Results
        match :func:`repro.kdtree.knn.nearest_neighbors` per query, except
        that distance ties at the k-th place are broken by lowest point index
        (the per-query heap keeps the first-encountered tied point instead).
        ``SearchStats`` counters are charged by the sweep pass only, so they
        approximate (within a few node visits per query) the per-query
        traversal's counters; radius-search counters, by contrast, aggregate
        exactly.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        query_arr = as_query_batch(queries)
        n_queries = query_arr.shape[0]
        self.stats.queries += n_queries
        width = min(k, self.tree.n_points)
        if n_queries == 0:
            return BatchKNNResult(
                indices=np.empty((0, width), dtype=np.intp),
                distances=np.empty((0, width), dtype=np.float64),
            )

        stats = self.stats
        points_f64 = self.tree.points_f64
        tau = self._knn_home_leaf_bounds(query_arr, width)

        cand_queries: List[np.ndarray] = []
        cand_points: List[np.ndarray] = []
        cand_d2: List[np.ndarray] = []

        # Sweep pass: a batched traversal pruned per query by gap^2 <= tau,
        # collecting every point within the bound.
        stack: List[tuple] = [(self.tree.root, np.arange(n_queries, dtype=np.intp))]
        while stack:
            node, qidx = stack.pop()
            if node.is_leaf:
                stats.note_leaf_visit_batch(node.leaf_id, qidx.size)
                stats.points_examined += qidx.size * node.n_points
                d2 = pairwise_distances2(points_f64[node.indices], query_arr[qidx])
                if node.n_points >= width:
                    # This leaf's width-th smallest distance is itself an
                    # upper bound on the true k-th distance: keep tightening
                    # tau as the sweep progresses so later subtrees prune
                    # harder and fewer candidates reach the selection.
                    leaf_kth = np.partition(d2, width - 1, axis=1)[:, width - 1]
                    tau[qidx] = np.minimum(tau[qidx], leaf_kth)
                rows, cols = np.nonzero(d2 <= tau[qidx][:, None])
                if rows.size:
                    cand_queries.append(qidx[rows])
                    cand_points.append(node.indices[cols])
                    cand_d2.append(d2[rows, cols])
                continue
            stats.interior_visited += qidx.size
            values = query_arr[qidx, node.split_dim]
            bounds = tau[qidx]
            on_left = values <= node.split_value
            left_gap = values - node.split_low
            right_gap = node.split_high - values
            visit_left = on_left | (left_gap * left_gap <= bounds)
            visit_right = ~on_left | (right_gap * right_gap <= bounds)
            right_q = qidx[visit_right]
            if right_q.size:
                stack.append((node.right, right_q))
            left_q = qidx[visit_left]
            if left_q.size:
                stack.append((node.left, left_q))

        return self._knn_select(n_queries, width, cand_queries, cand_points, cand_d2)

    def _knn_home_leaf_bounds(self, query_arr: np.ndarray, width: int) -> np.ndarray:
        """Upper bound on each query's ``width``-th nearest squared distance.

        Pure planning pass (no statistics): descend every query to the leaf
        containing it; if that leaf holds at least ``width`` points, the
        ``width``-th smallest leaf distance bounds the true k-th distance.
        """
        n_queries = query_arr.shape[0]
        points_f64 = self.tree.points_f64
        tau = np.full(n_queries, np.inf)
        stack: List[tuple] = [(self.tree.root, np.arange(n_queries, dtype=np.intp))]
        while stack:
            node, qidx = stack.pop()
            if node.is_leaf:
                if node.n_points >= width:
                    d2 = pairwise_distances2(points_f64[node.indices], query_arr[qidx])
                    tau[qidx] = np.partition(d2, width - 1, axis=1)[:, width - 1]
                continue
            values = query_arr[qidx, node.split_dim]
            on_left = values <= node.split_value
            right_q = qidx[~on_left]
            if right_q.size:
                stack.append((node.right, right_q))
            left_q = qidx[on_left]
            if left_q.size:
                stack.append((node.left, left_q))
        return tau

    @staticmethod
    def _knn_select(n_queries: int, width: int, cand_queries: List[np.ndarray],
                    cand_points: List[np.ndarray],
                    cand_d2: List[np.ndarray]) -> BatchKNNResult:
        """Select each query's ``width`` nearest from the collected candidates."""
        indices = np.full((n_queries, width), -1, dtype=np.intp)
        distances = np.full((n_queries, width), np.inf)
        if cand_queries:
            flat_q = np.concatenate(cand_queries)
            flat_p = np.concatenate(cand_points)
            flat_d2 = np.concatenate(cand_d2)
            # Sort by (query, distance, index) — the single-query ordering —
            # then keep each query's first `width` entries.
            order = np.lexsort((flat_p, flat_d2, flat_q))
            flat_q = flat_q[order]
            flat_p = flat_p[order]
            flat_d2 = flat_d2[order]
            counts = np.bincount(flat_q, minlength=n_queries)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            rank = np.arange(flat_q.size) - starts[flat_q]
            keep = rank < width
            flat_q = flat_q[keep]
            rank = rank[keep]
            indices[flat_q, rank] = flat_p[keep]
            distances[flat_q, rank] = np.sqrt(flat_d2[keep])
        return BatchKNNResult(indices=indices, distances=distances)


def radius_traverse(tree: KDTree, query_arr: np.ndarray, radius: float,
                    stats: SearchStats,
                    visit_leaf: Callable[[LeafNode, np.ndarray], None]) -> None:
    """Drive one batched radius traversal, calling ``visit_leaf(leaf, qidx)``.

    ``qidx`` indexes into ``query_arr`` and contains exactly the queries whose
    single-query traversal would reach that leaf, so pluggable leaf processing
    (baseline 32-bit, Bonsai compressed) sees the same visits as the
    per-query :class:`~repro.kdtree.radius_search.LeafInspector` protocol.
    """
    if query_arr.shape[0] == 0:
        return
    stack: List[tuple] = [(tree.root, np.arange(query_arr.shape[0], dtype=np.intp))]
    while stack:
        node, qidx = stack.pop()
        if node.is_leaf:
            stats.note_leaf_visit_batch(node.leaf_id, qidx.size)
            visit_leaf(node, qidx)
            continue
        stats.interior_visited += qidx.size
        values = query_arr[qidx, node.split_dim]
        on_left = values <= node.split_value
        # A query descends into the side containing it, and into the other
        # side when the gap to that side's edge is within the radius — the
        # same rule as the per-query traversal.
        visit_left = on_left | (values - node.split_low <= radius)
        visit_right = ~on_left | (node.split_high - values <= radius)
        right_q = qidx[visit_right]
        if right_q.size:
            stack.append((node.right, right_q))
        left_q = qidx[visit_left]
        if left_q.size:
            stack.append((node.left, left_q))


def _empty_radius_result(n_queries: int) -> BatchRadiusResult:
    return BatchRadiusResult(
        offsets=np.zeros(n_queries + 1, dtype=np.intp),
        point_indices=np.empty(0, dtype=np.intp),
    )


def _build_radius_result(n_queries: int, hit_queries: List[np.ndarray],
                         hit_points: List[np.ndarray]) -> BatchRadiusResult:
    """Assemble per-leaf (query, point) hit pairs into a sorted CSR result."""
    if not hit_queries:
        return _empty_radius_result(n_queries)
    flat_q = np.concatenate(hit_queries)
    flat_p = np.concatenate(hit_points)
    order = np.lexsort((flat_p, flat_q))
    flat_q = flat_q[order]
    flat_p = flat_p[order]
    counts = np.bincount(flat_q, minlength=n_queries)
    offsets = np.zeros(n_queries + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    return BatchRadiusResult(offsets=offsets, point_indices=flat_p)


def batch_radius_search(tree: KDTree, queries, radius: float,
                        stats: Optional[SearchStats] = None) -> BatchRadiusResult:
    """Radius-search a whole query batch in one vectorised traversal.

    Returns the same points as calling
    :func:`repro.kdtree.radius_search.radius_search` once per query (indices
    sorted per query), while visiting each tree node once per query *subset*
    rather than once per query.

    Parameters
    ----------
    tree:
        The k-d tree to search.
    queries:
        ``(Q, 3)`` array-like of query points; an empty batch is allowed.
    radius:
        Search radius (must be positive, as in the single-query path).
    stats:
        Optional :class:`~repro.kdtree.radius_search.SearchStats` accumulator;
        counters aggregate exactly as per-query searches would.
    """
    return BatchQueryEngine(tree, stats=stats).radius_search(queries, radius)


def batch_knn(tree: KDTree, queries, k: int,
              stats: Optional[SearchStats] = None) -> BatchKNNResult:
    """Find the ``k`` nearest tree points of every query in one traversal.

    Returns the same neighbours as
    :func:`repro.kdtree.knn.nearest_neighbors` per query, sorted by
    ``(distance, index)`` — up to distance ties at the k-th place, which are
    broken deterministically by lowest point index.  Rows are ``inf``/``-1``
    padded when the tree holds fewer than ``k`` points.  See
    :func:`batch_radius_search` for the shared parameters.
    """
    return BatchQueryEngine(tree, stats=stats).knn(queries, k)
