"""Vectorised leaf-point distance kernels shared by every query path.

These are the innermost numeric routines of the query engine: squared
euclidean distances between leaf points and one query
(:func:`leaf_distances2`), a whole query batch
(:func:`pairwise_distances2`) or matched row pairs
(:func:`rowwise_distances2`), and the reduced-precision error bound / shell
classification of the K-D Bonsai paper (:func:`reduced_precision_max_delta`,
:func:`batch_shell_distances`, :func:`shell_classify`).

Both the single-query paths (:mod:`repro.kdtree.knn`,
:mod:`repro.kdtree.radius_search`, :mod:`repro.core.bonsai_search`) and the
batched engine (:mod:`repro.runtime.batch`) call into this module, so the two
produce bit-identical distances: ``(a - b)**2`` summed over the three
coordinates in the same order, in float64.

The module intentionally imports nothing from the rest of :mod:`repro`
(only NumPy), so it can be used from any layer without import cycles.

Example
-------
>>> import numpy as np
>>> from repro.runtime.kernels import pairwise_distances2
>>> points = np.zeros((4, 3))
>>> queries = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
>>> pairwise_distances2(points, queries).shape
(2, 4)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "leaf_distances2",
    "pairwise_distances2",
    "rowwise_distances2",
    "reduced_precision_max_delta",
    "batch_shell_distances",
    "shell_error_bound",
    "shell_classify",
]


def leaf_distances2(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared distances from one ``(3,)`` query to ``(M, 3)`` leaf points."""
    diffs = points - query
    return np.einsum("ij,ij->i", diffs, diffs)


def pairwise_distances2(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Squared distances between ``(Q, 3)`` queries and ``(M, 3)`` points.

    Returns a ``(Q, M)`` matrix.  The arithmetic matches
    :func:`leaf_distances2` exactly (an einsum over the coordinate axis of the
    per-pair differences), so batched and per-query classifications agree
    bitwise.
    """
    diffs = queries[:, None, :] - points[None, :, :]
    return np.einsum("qmd,qmd->qm", diffs, diffs)


def rowwise_distances2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared distances between matched rows of two ``(N, 3)`` arrays."""
    diffs = a - b
    return np.einsum("nd,nd->n", diffs, diffs)


def batch_shell_distances(reduced: np.ndarray, queries: np.ndarray,
                          max_delta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate squared distances and error bounds for a query batch.

    For ``(M, 3)`` reduced-precision leaf coordinates and ``(Q, 3)`` queries
    returns the ``(Q, M)`` approximate squared distances (same arithmetic as
    :func:`pairwise_distances2`) together with the worst-case error bound of
    Eq. 11 per (query, point) pair — the inputs of :func:`shell_classify`.
    """
    diffs = queries[:, None, :] - reduced[None, :, :]
    d2_approx = np.einsum("qmd,qmd->qm", diffs, diffs)
    return d2_approx, shell_error_bound(np.abs(diffs), max_delta)


def reduced_precision_max_delta(reduced: np.ndarray, fmt) -> np.ndarray:
    """Per-coordinate worst-case rounding error of reduced values (Eq. 6).

    ``fmt`` is any object with ``mantissa_bits``, ``bias``,
    ``max_biased_exponent`` and ``min_normal`` attributes
    (:class:`repro.core.floatfmt.FloatFormat`).  The hardware derives this
    from the exponent field via the ``part_error_mem`` lookup; here the same
    half-ULP quantity is computed from the decoded magnitudes.
    """
    magnitude = np.abs(reduced)
    with np.errstate(divide="ignore"):
        exponent = np.floor(
            np.log2(np.where(magnitude > 0, magnitude, fmt.min_normal)))
    exponent = np.clip(exponent, 1 - fmt.bias, fmt.max_biased_exponent - fmt.bias)
    return np.power(2.0, exponent) * 2.0 ** (-(fmt.mantissa_bits + 1))


def shell_error_bound(abs_diffs: np.ndarray, max_delta: np.ndarray) -> np.ndarray:
    """Worst-case error of the approximate squared distance (Eq. 11).

    ``abs_diffs`` holds ``|query - reduced|`` per coordinate; ``max_delta``
    the per-coordinate rounding bound.  Sums over the last (coordinate) axis.
    """
    return (2.0 * abs_diffs * max_delta + max_delta * max_delta).sum(axis=-1)


def shell_classify(d2_approx: np.ndarray, eps: np.ndarray,
                   r2: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shell classification of Eq. 12.

    Returns ``(conclusive_in, conclusive_out, inconclusive)`` boolean masks:
    points conclusively inside the radius, conclusively outside, and those
    whose approximate distance falls inside the error shell and need an exact
    32-bit recomputation.
    """
    conclusive_in = d2_approx <= r2 - eps
    conclusive_out = d2_approx > r2 + eps
    inconclusive = ~(conclusive_in | conclusive_out)
    return conclusive_in, conclusive_out, inconclusive
