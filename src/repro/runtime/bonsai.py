"""Batched radius search over compressed (K-D Bonsai) leaves.

Combines the batched traversal of :mod:`repro.runtime.batch` with the
compressed leaf processing of :mod:`repro.core.bonsai_search`: approximate
squared distances from the reduced-precision coordinates, the shell
classification of Eq. 12, and exact 32-bit recomputation of inconclusive
points only — so results are identical to the baseline search.

The batched form adds the natural leaf-level optimisation the per-query
inspector cannot exploit: each visited leaf is decompressed **once per call**
and its decoded coordinates (plus per-coordinate error bounds) are reused for
every query that reaches the leaf in the batch.  The byte/slice accounting
still charges every (query, leaf) visit, as the hardware would, so
:class:`~repro.core.bonsai_search.BonsaiStats` aggregates exactly like the
per-query inspector's.

Example
-------
>>> searcher = BonsaiBatchSearcher(tree)                    # doctest: +SKIP
>>> result = searcher.radius_search(scan_points, radius=2.5)  # doctest: +SKIP
>>> searcher.bonsai_stats.inconclusive_rate < 0.05          # doctest: +SKIP
True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..core.compressed_leaf import CompressedStructArray, compress_tree
from ..core.floatfmt import FLOAT16, FloatFormat
from ..core.leaf_compression import ZIPPTS_SLICE_BYTES, decompress_leaf
from ..kdtree.build import KDTree
from ..kdtree.layout import POINT_STRIDE_BYTES
from ..kdtree.node import LeafNode
from ..kdtree.radius_search import SearchStats
from .batch import (
    BatchRadiusResult,
    _build_radius_result,
    _empty_radius_result,
    as_query_batch,
    radius_traverse,
)
from .kernels import (
    batch_shell_distances,
    pairwise_distances2,
    reduced_precision_max_delta,
    rowwise_distances2,
    shell_classify,
)

__all__ = ["BonsaiBatchSearcher"]


class BonsaiBatchSearcher:
    """Batched K-D Bonsai radius search: compress once, query in batches.

    The batched counterpart of
    :class:`~repro.core.bonsai_search.BonsaiRadiusSearch`; exposes the same
    ``stats`` / ``bonsai_stats`` / ``report`` surface so pipelines can swap
    one for the other.

    Parameters
    ----------
    tree:
        The k-d tree; compressed on construction if it is not already.
    fmt:
        Reduced float format of the compressed coordinates.
    """

    def __init__(self, tree: KDTree, fmt: FloatFormat = FLOAT16):
        self.tree = tree
        self.fmt = fmt
        if getattr(tree, "compressed_array", None) is None:
            self.report = compress_tree(tree, fmt)
        else:
            self.report = None
        self.stats = SearchStats()
        self.bonsai_stats = BonsaiStats()

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """Batched radius search; identical results to the baseline engine."""
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        query_arr = as_query_batch(queries)
        n_queries = query_arr.shape[0]
        self.stats.queries += n_queries
        if n_queries == 0:
            return _empty_radius_result(0)

        r2 = float(radius) * float(radius)
        tree = self.tree
        points_f64 = tree.points_f64
        array: Optional[CompressedStructArray] = getattr(tree, "compressed_array", None)
        stats = self.stats
        bstats = self.bonsai_stats
        # Per-call decompressed-leaf cache: each leaf is decoded at most once
        # per batch, no matter how many queries visit it.
        decoded: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        hit_queries: List[np.ndarray] = []
        hit_points: List[np.ndarray] = []

        def visit_leaf(leaf: LeafNode, qidx: np.ndarray) -> None:
            ref = leaf.compressed_ref
            if array is None or ref is None:
                # No compressed structure: baseline 32-bit processing.
                bstats.fallback_leaf_visits += qidx.size
                d2 = pairwise_distances2(points_f64[leaf.indices], query_arr[qidx])
                inside = d2 <= r2
                stats.points_examined += qidx.size * leaf.n_points
                stats.points_in_radius += int(inside.sum())
                stats.point_bytes_loaded += qidx.size * leaf.n_points * POINT_STRIDE_BYTES
                rows, cols = np.nonzero(inside)
                if rows.size:
                    hit_queries.append(qidx[rows])
                    hit_points.append(leaf.indices[cols])
                return

            n_visits = qidx.size
            bstats.leaf_visits += n_visits
            bstats.slices_loaded += n_visits * ref.n_slices
            bstats.compressed_bytes_loaded += n_visits * ref.n_slices * ZIPPTS_SLICE_BYTES
            stats.points_examined += n_visits * leaf.n_points
            stats.point_bytes_loaded += n_visits * ref.n_slices * ZIPPTS_SLICE_BYTES
            bstats.points_classified += n_visits * leaf.n_points

            cached = decoded.get(leaf.leaf_id)
            if cached is None:
                reduced = decompress_leaf(array.get(leaf.leaf_id), self.fmt)
                cached = (reduced, reduced_precision_max_delta(reduced, self.fmt))
                decoded[leaf.leaf_id] = cached
            reduced, max_delta = cached

            d2_approx, eps = batch_shell_distances(reduced, query_arr[qidx], max_delta)
            conclusive_in, conclusive_out, inconclusive = shell_classify(
                d2_approx, eps, r2)

            bstats.conclusive_in += int(conclusive_in.sum())
            bstats.conclusive_out += int(conclusive_out.sum())
            n_inconclusive = int(inconclusive.sum())
            bstats.inconclusive += n_inconclusive

            in_rows, in_cols = np.nonzero(conclusive_in)
            n_in = in_rows.size
            if n_in:
                hit_queries.append(qidx[in_rows])
                hit_points.append(leaf.indices[in_cols])
            stats.points_in_radius += n_in

            if n_inconclusive:
                # Inconclusive pairs: fetch the original 32-bit points and
                # recompute the exact classification.
                bstats.recompute_bytes_loaded += n_inconclusive * POINT_STRIDE_BYTES
                stats.point_bytes_loaded += n_inconclusive * POINT_STRIDE_BYTES
                rows, cols = np.nonzero(inconclusive)
                originals = points_f64[leaf.indices[cols]]
                exact_d2 = rowwise_distances2(query_arr[qidx[rows]], originals)
                exact_in = exact_d2 <= r2
                n_exact = int(exact_in.sum())
                if n_exact:
                    hit_queries.append(qidx[rows[exact_in]])
                    hit_points.append(leaf.indices[cols[exact_in]])
                stats.points_in_radius += n_exact

        radius_traverse(tree, query_arr, float(radius), stats, visit_leaf)
        return _build_radius_result(n_queries, hit_queries, hit_points)

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query convenience wrapper (sorted point indices)."""
        return self.radius_search(as_query_batch(query), radius).indices_for(0).tolist()
