"""Batched, vectorised query engine for the K-D Bonsai reproduction.

The hot paths of the paper — radius and kNN search over (compressed) k-d
tree leaves — are issued by the workloads in large batches.  This subsystem
amortises the Python-level tree traversal across the whole batch and performs
all leaf work as NumPy matrix kernels, while returning exactly the results of
the per-query reference paths.

Public API
----------
:func:`batch_radius_search` / :func:`batch_knn`
    One-shot batched queries over a tree.
:class:`BatchQueryEngine`
    Binds a tree plus a :class:`~repro.kdtree.radius_search.SearchStats`
    accumulator for repeated batches (the batched ``RadiusSearcher``).
:class:`BonsaiBatchSearcher`
    The compressed-leaf (K-D Bonsai) variant with a per-call
    decompressed-leaf cache; same results as the baseline.
:class:`BatchRadiusResult` / :class:`BatchKNNResult`
    CSR-style and dense result containers with ``as_lists()`` converters to
    the single-query formats.
:mod:`repro.runtime.kernels`
    The shared leaf-distance kernels (also used by the single-query paths).

Attributes resolve lazily (PEP 562): the single-query modules import
:mod:`repro.runtime.kernels` without dragging in the engine, and the engine
imports the k-d tree package — laziness is what keeps that acyclic.

Example
-------
>>> import numpy as np
>>> from repro.kdtree import build_kdtree
>>> from repro.runtime import BatchQueryEngine
>>> points = np.random.default_rng(1).uniform(-5, 5, (2000, 3)).astype(np.float32)
>>> engine = BatchQueryEngine(build_kdtree(points))
>>> result = engine.radius_search(points[:512], radius=0.8)
>>> result.n_queries, engine.stats.queries
(512, 512)
"""

from importlib import import_module

__all__ = [
    "kernels",
    "BatchKNNResult",
    "BatchQueryEngine",
    "BatchRadiusResult",
    "batch_knn",
    "batch_radius_search",
    "BonsaiBatchSearcher",
]

#: Lazy export table: public name -> submodule that defines it.
#: Do NOT replace this with eager `from .batch import ...` imports:
#: repro.kdtree imports repro.runtime.kernels while repro.runtime.batch
#: imports repro.kdtree, and only the laziness here keeps that acyclic.
_EXPORTS = {
    "BatchKNNResult": ".batch",
    "BatchQueryEngine": ".batch",
    "BatchRadiusResult": ".batch",
    "batch_knn": ".batch",
    "batch_radius_search": ".batch",
    "BonsaiBatchSearcher": ".bonsai",
    "kernels": ".kernels",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = import_module(module_name, __name__)
    if name == "kernels":
        value = module
    else:
        value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
