"""Autoware-like euclidean-cluster pipeline with full cost accounting.

This is the harness the benchmarks drive.  For every LiDAR frame it runs the
same stages Autoware's euclidean-cluster node runs —

1. pre-processing (range/crop filters, ground removal, voxel grid),
2. the *extract kernel*: k-d tree build (+ leaf compression when Bonsai is
   enabled) and the cluster-growing radius searches,
3. labeling (bounding boxes, classes),

— once with the baseline 32-bit search and once with the K-D Bonsai search,
and converts the functional counters into the hardware metrics the paper
reports: instruction/load/store counts, cache accesses and misses (from the
trace-driven cache simulation), execution time, end-to-end latency and
energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..engine.execution import ExecutionConfig
from ..hwmodel.cache import HierarchyStats
from ..hwmodel.cpu_config import CPUConfig, TABLE_IV_CPU
from ..hwmodel.energy import EnergyModel, EnergyParameters
from ..hwmodel.timing import KernelMetrics, TimingModel
from ..isa.cost_model import (
    BONSAI_FU_OPS_PER_LEAF_VISIT,
    InstructionBudget,
    estimate_baseline,
    estimate_bonsai,
)
from ..kdtree.radius_search import SearchStats
from ..perception.cluster_filter import DetectedObject, label_clusters
from ..perception.euclidean_cluster import ClusterConfig, EuclideanClusterExtractor
from ..pointcloud.cloud import PointCloud
from ..pointcloud.filters import PreprocessConfig, preprocess_for_clustering

__all__ = [
    "PhaseBudget",
    "PipelineConfig",
    "KernelReport",
    "FrameMeasurement",
    "EuclideanClusterPipeline",
]


@dataclass(frozen=True)
class PhaseBudget:
    """Per-event instruction budgets of the non-search pipeline phases.

    These cover the work that is identical between the baseline and Bonsai
    configurations (pre-processing, tree build, labeling) plus the
    compression overhead that only the Bonsai configuration pays at build
    time.  Values are first-order estimates of the per-point work of the
    corresponding PCL/Autoware code.
    """

    preprocess_per_raw_point: int = 70
    build_per_point_per_level: int = 24
    build_loads_per_point_per_level: int = 2
    label_per_clustered_point: int = 35
    #: Cluster-growing BFS bookkeeping (queue pop, query fetch, loop control)
    #: per radius-search query; identical in both configurations.
    bfs_per_query: int = 30
    bfs_loads_per_query: int = 5
    bfs_stores_per_query: int = 2
    #: BFS bookkeeping per returned neighbour (processed-flag check, queue
    #: push, cluster membership append); identical in both configurations.
    bfs_per_neighbor: int = 12
    bfs_loads_per_neighbor: int = 2
    bfs_stores_per_neighbor: int = 1
    #: Build-time compression: LDSPZPB per point (2 µops) plus amortised
    #: CPRZPB / STZPB work per leaf.
    compress_per_point: int = 6
    compress_per_leaf: int = 24
    #: Fraction of build/preprocess/label memory accesses that miss in L1
    #: (streaming passes over contiguous arrays).
    streaming_l1_miss_fraction: float = 0.06


@dataclass
class PipelineConfig:
    """Configuration of the end-to-end pipeline."""

    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cpu: CPUConfig = field(default_factory=lambda: TABLE_IV_CPU)
    energy: EnergyParameters = field(default_factory=EnergyParameters)
    instruction_budget: InstructionBudget = field(default_factory=InstructionBudget)
    phase_budget: PhaseBudget = field(default_factory=PhaseBudget)
    simulate_caches: bool = True


@dataclass
class KernelReport:
    """Hardware metrics of the extract kernel for one configuration."""

    instructions: int
    loads: int
    stores: int
    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int
    memory_accesses: int
    cycles: float
    seconds: float
    energy_j: float
    ipc: float

    def as_dict(self) -> Dict[str, float]:
        """Metrics as a plain dictionary (used by the report renderers)."""
        return {
            "execution_time": self.seconds,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l2_accesses": self.l2_accesses,
            "memory_accesses": self.memory_accesses,
            "energy": self.energy_j,
        }


@dataclass
class FrameMeasurement:
    """Everything measured for one frame under one configuration."""

    frame_index: int
    use_bonsai: bool
    n_raw_points: int
    n_filtered_points: int
    n_clusters: int
    extract: KernelReport
    end_to_end_seconds: float
    search_stats: SearchStats
    bonsai_stats: Optional[BonsaiStats]
    point_bytes_loaded: int
    compressed_total_bytes: Optional[int] = None
    baseline_point_bytes: Optional[int] = None
    #: The labelled detections the node would publish; consumed by the
    #: cluster-filtering and tracking stages of the end-to-end runner.
    detections: List[DetectedObject] = field(default_factory=list)
    #: Raw per-frame cache-hierarchy statistics of the recorded search trace
    #: (``None`` when ``simulate_caches`` is off and no trace was recorded).
    hierarchy: Optional[HierarchyStats] = None


class EuclideanClusterPipeline:
    """Runs the euclidean-cluster workload with full cost accounting."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self.timing = TimingModel(self.config.cpu)
        self.energy = EnergyModel(self.config.energy)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_frame(self, cloud: PointCloud, frame_index: int = 0,
                  use_bonsai: bool = False,
                  execution: Optional[ExecutionConfig] = None) -> FrameMeasurement:
        """Process one raw LiDAR frame and return its measurements.

        ``execution`` selects the search backend and the hardware-recording
        mode; when omitted it is derived from the legacy knobs (``use_bonsai``
        plus the config's ``simulate_caches`` switch, which maps to
        ``hardware=True``).
        """
        config = self.config
        if execution is None:
            execution = ExecutionConfig(
                backend="bonsai-batched" if use_bonsai else "baseline-batched",
                hardware=config.simulate_caches)
        use_bonsai = execution.use_bonsai
        filtered = preprocess_for_clustering(cloud, config.preprocess)
        if filtered.is_empty:
            raise ValueError("pre-processing removed every point; adjust PreprocessConfig")

        recorder = (execution.make_recorder(config.cpu)
                    if execution.hardware else None)
        extractor = EuclideanClusterExtractor(
            config=config.cluster, execution=execution, recorder=recorder,
        )
        result = extractor.extract(filtered)
        detections = label_clusters(filtered, result.clusters)

        search_stats = result.search_stats
        bonsai_stats = result.bonsai.bonsai_stats if result.bonsai is not None else None
        extract_report = self._extract_kernel_report(
            filtered, result.tree.n_leaves, result.tree.depth(), search_stats,
            bonsai_stats, recorder.stats if recorder is not None else None, use_bonsai,
        )
        end_to_end = self._end_to_end_seconds(
            cloud, filtered, result, extract_report,
        )
        return FrameMeasurement(
            frame_index=frame_index,
            use_bonsai=use_bonsai,
            n_raw_points=len(cloud),
            n_filtered_points=len(filtered),
            n_clusters=result.n_clusters,
            extract=extract_report,
            end_to_end_seconds=end_to_end,
            search_stats=search_stats,
            bonsai_stats=bonsai_stats,
            point_bytes_loaded=search_stats.point_bytes_loaded,
            compressed_total_bytes=(
                result.bonsai.report.compressed_bytes
                if result.bonsai is not None and result.bonsai.report is not None else None
            ),
            baseline_point_bytes=(
                result.bonsai.report.baseline_bytes
                if result.bonsai is not None and result.bonsai.report is not None else None
            ),
            detections=detections,
            hierarchy=recorder.stats if recorder is not None else None,
        )

    def run_frames(self, clouds: Iterable[PointCloud],
                   use_bonsai: bool = False,
                   execution: Optional[ExecutionConfig] = None,
                   ) -> List[FrameMeasurement]:
        """Process several frames; frame indices follow iteration order."""
        return [
            self.run_frame(cloud, frame_index=i, use_bonsai=use_bonsai,
                           execution=execution)
            for i, cloud in enumerate(clouds)
        ]

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def _extract_kernel_report(self, filtered: PointCloud, n_leaves: int, depth: int,
                               search_stats: SearchStats,
                               bonsai_stats: Optional[BonsaiStats],
                               hierarchy: Optional[HierarchyStats],
                               use_bonsai: bool) -> KernelReport:
        budget = self.config.instruction_budget
        phase = self.config.phase_budget
        n_points = len(filtered)
        levels = max(depth, 1)

        # Search component (differs between the configurations).
        if use_bonsai and bonsai_stats is not None:
            search_estimate = estimate_bonsai(search_stats, bonsai_stats, budget)
        else:
            search_estimate = estimate_baseline(search_stats, budget)

        # Tree build (identical in both configurations).
        build_instructions = n_points * levels * phase.build_per_point_per_level
        build_loads = n_points * levels * phase.build_loads_per_point_per_level
        build_stores = n_points * levels

        # Cluster-growing BFS bookkeeping (identical in both configurations).
        n_queries = search_stats.queries
        n_neighbors = search_stats.points_in_radius
        bfs_instructions = (
            n_queries * phase.bfs_per_query + n_neighbors * phase.bfs_per_neighbor
        )
        bfs_loads = (
            n_queries * phase.bfs_loads_per_query
            + n_neighbors * phase.bfs_loads_per_neighbor
        )
        bfs_stores = (
            n_queries * phase.bfs_stores_per_query
            + n_neighbors * phase.bfs_stores_per_neighbor
        )

        # Build-time compression overhead (Bonsai only).
        compress_instructions = 0
        compress_stores = 0
        if use_bonsai and bonsai_stats is not None:
            compress_instructions = (
                n_points * phase.compress_per_point + n_leaves * phase.compress_per_leaf
            )
            compress_stores = n_leaves * 4  # STZPB slices, ~4 per leaf

        instructions = (
            search_estimate.instructions + build_instructions + bfs_instructions
            + compress_instructions
        )
        loads = search_estimate.loads + build_loads + bfs_loads
        stores = search_estimate.stores + build_stores + bfs_stores + compress_stores

        # Cache statistics: the search accesses come from the trace-driven
        # simulation; the build's streaming accesses are added analytically
        # and identically for both configurations.
        build_accesses = build_loads + build_stores
        build_misses = int(build_accesses * phase.streaming_l1_miss_fraction)
        if hierarchy is not None:
            l1_accesses = hierarchy.l1_accesses + build_accesses
            l1_misses = hierarchy.l1_misses + build_misses
            l2_accesses = hierarchy.l2_accesses + build_misses
            l2_misses = hierarchy.l2_misses + int(build_misses * 0.3)
            memory_accesses = hierarchy.memory_accesses + int(build_misses * 0.3)
        else:
            l1_accesses = loads + stores
            l1_misses = int(l1_accesses * phase.streaming_l1_miss_fraction)
            l2_accesses = l1_misses
            l2_misses = int(l1_misses * 0.3)
            memory_accesses = l2_misses

        metrics = KernelMetrics(
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_accesses=l1_accesses,
            l1_misses=l1_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            memory_accesses=memory_accesses,
        )
        cycles = self.timing.cycles(metrics)
        seconds = self.timing.seconds(metrics)
        bonsai_fu_ops = 0
        if use_bonsai and bonsai_stats is not None:
            bonsai_fu_ops = bonsai_stats.leaf_visits * BONSAI_FU_OPS_PER_LEAF_VISIT
        energy = self.energy.estimate(metrics, seconds, bonsai_fu_ops).total_j
        return KernelReport(
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_accesses=l1_accesses,
            l1_misses=l1_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            memory_accesses=memory_accesses,
            cycles=cycles,
            seconds=seconds,
            energy_j=energy,
            ipc=self.timing.ipc(metrics),
        )

    def _end_to_end_seconds(self, raw: PointCloud, filtered: PointCloud, result,
                            extract: KernelReport) -> float:
        """End-to-end node latency: pre-processing + extract kernel + labeling."""
        phase = self.config.phase_budget
        clustered_points = sum(cluster.size for cluster in result.clusters)
        other_instructions = (
            len(raw) * phase.preprocess_per_raw_point
            + clustered_points * phase.label_per_clustered_point
        )
        other_metrics = KernelMetrics(
            instructions=other_instructions,
            loads=other_instructions // 4,
            stores=other_instructions // 8,
            l1_accesses=other_instructions // 3,
            l1_misses=int(other_instructions // 3 * phase.streaming_l1_miss_fraction),
            l2_accesses=int(other_instructions // 3 * phase.streaming_l1_miss_fraction),
            l2_misses=int(other_instructions // 3 * phase.streaming_l1_miss_fraction * 0.3),
            memory_accesses=int(other_instructions // 3 * phase.streaming_l1_miss_fraction * 0.3),
        )
        return extract.seconds + self.timing.seconds(other_metrics)
