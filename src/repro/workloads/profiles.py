"""Execution-share profiling (Figure 2 of the paper).

Figure 2 motivates the work by showing that radius search accounts for ~61%
of Autoware's euclidean cluster task and ~51% of NDT matching.  The profiler
here reproduces that measurement on the synthetic workloads: it runs each
pipeline with the baseline search, converts the per-phase functional counters
into cycle estimates with the shared instruction budgets and timing model,
and reports the fraction of cycles spent inside radius search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwmodel.timing import KernelMetrics, TimingModel
from ..isa.cost_model import InstructionBudget, estimate_baseline
from ..perception.euclidean_cluster import ClusterConfig, EuclideanClusterExtractor
from ..perception.ndt import NDTConfig, NDTMap, NDTMatcher
from ..pointcloud.cloud import PointCloud
from ..pointcloud.filters import PreprocessConfig, preprocess_for_clustering
from .autoware import PhaseBudget

__all__ = ["ExecutionShare", "profile_euclidean_cluster", "profile_ndt_matching"]


@dataclass
class ExecutionShare:
    """Cycle share of radius search within a task."""

    task: str
    radius_search_cycles: float
    other_cycles: float

    @property
    def total_cycles(self) -> float:
        """Total cycles of the task."""
        return self.radius_search_cycles + self.other_cycles

    @property
    def radius_search_share(self) -> float:
        """Fraction of cycles spent in radius search."""
        if self.total_cycles == 0:
            return 0.0
        return self.radius_search_cycles / self.total_cycles


def _cycles_from_instructions(timing: TimingModel, instructions: int,
                              miss_fraction: float = 0.06) -> float:
    """Cycle estimate of a streaming phase characterised by instruction count."""
    accesses = instructions // 3
    misses = int(accesses * miss_fraction)
    metrics = KernelMetrics(
        instructions=instructions,
        loads=instructions // 4,
        stores=instructions // 8,
        l1_accesses=accesses,
        l1_misses=misses,
        l2_accesses=misses,
        l2_misses=int(misses * 0.3),
        memory_accesses=int(misses * 0.3),
    )
    return timing.cycles(metrics)


def _search_cycles(timing: TimingModel, stats, budget: InstructionBudget,
                   miss_fraction: float = 0.12) -> float:
    """Cycle estimate of the radius-search portion from its functional counters."""
    estimate = estimate_baseline(stats, budget)
    accesses = estimate.loads + estimate.stores
    misses = int(accesses * miss_fraction)
    metrics = KernelMetrics(
        instructions=estimate.instructions,
        loads=estimate.loads,
        stores=estimate.stores,
        l1_accesses=accesses,
        l1_misses=misses,
        l2_accesses=misses,
        l2_misses=int(misses * 0.3),
        memory_accesses=int(misses * 0.3),
    )
    return timing.cycles(metrics)


def profile_euclidean_cluster(cloud: PointCloud,
                              preprocess: Optional[PreprocessConfig] = None,
                              cluster: Optional[ClusterConfig] = None,
                              budget: InstructionBudget = InstructionBudget(),
                              phase: PhaseBudget = PhaseBudget()) -> ExecutionShare:
    """Radius-search share of the euclidean-cluster task for one frame."""
    timing = TimingModel()
    filtered = preprocess_for_clustering(cloud, preprocess)
    extractor = EuclideanClusterExtractor(config=cluster, use_bonsai=False)
    result = extractor.extract(filtered)

    search_cycles = _search_cycles(timing, result.search_stats, budget)
    levels = max(result.tree.depth(), 1)
    clustered_points = sum(c.size for c in result.clusters)
    other_instructions = (
        len(cloud) * phase.preprocess_per_raw_point
        + len(filtered) * levels * phase.build_per_point_per_level
        + clustered_points * phase.label_per_clustered_point
    )
    other_cycles = _cycles_from_instructions(timing, other_instructions)
    return ExecutionShare(
        task="Euclidean Cluster (Segmentation)",
        radius_search_cycles=search_cycles,
        other_cycles=other_cycles,
    )


def profile_ndt_matching(scan: PointCloud, map_cloud: PointCloud,
                         config: Optional[NDTConfig] = None,
                         budget: InstructionBudget = InstructionBudget()) -> ExecutionShare:
    """Radius-search share of the NDT-matching task for one scan registration."""
    timing = TimingModel()
    config = config or NDTConfig()
    ndt_map = NDTMap(map_cloud, config)
    matcher = NDTMatcher(ndt_map, use_bonsai=False)
    result = matcher.register(scan, initial_translation=(0.4, 0.2, 0.0))

    search_cycles = _search_cycles(timing, result.search_stats, budget)

    # Non-search NDT work: voxel Gaussian fits (once per map build) and the
    # score/gradient/Hessian contributions (per point-voxel pair per
    # iteration).  Instruction budgets mirror the arithmetic in NDTMatcher.
    pair_evaluations = result.search_stats.points_in_radius
    n_scan_points = min(len(scan), config.max_scan_points)
    per_pair_instructions = 160        # 3x3 mat-vec products, exp(), outer product
    per_point_overhead = 40            # transform + loop bookkeeping
    per_voxel_fit_instructions = 90    # covariance accumulate + eigen decomposition share
    newton_solve_instructions = 600    # 3x3 solve per iteration
    other_instructions = (
        pair_evaluations * per_pair_instructions
        + n_scan_points * result.iterations * per_point_overhead
        + len(ndt_map.voxels) * per_voxel_fit_instructions
        + result.iterations * newton_solve_instructions
    )
    other_cycles = _cycles_from_instructions(timing, other_instructions)
    return ExecutionShare(
        task="NDT Matching (Localization)",
        radius_search_cycles=search_cycles,
        other_cycles=other_cycles,
    )
