"""Systematic frame sub-sampling and its error analysis (Table III).

The paper cannot simulate an eight-minute sequence in gem5, so it processes
20 systematically chosen 300 ms windows and shows (Table III) that the
sub-sampled statistics track the full run closely.  This module reproduces
the methodology: given a sequence, it compares the metrics measured over a
systematic sub-sample against the metrics of the full sequence and reports
the same error figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..pointcloud.sequence import DrivingSequence, systematic_subsample
from .autoware import EuclideanClusterPipeline, FrameMeasurement, PipelineConfig

__all__ = ["SubsamplingErrors", "evaluate_subsampling", "measure_sequence"]


@dataclass
class SubsamplingErrors:
    """Error of sub-sampled statistics w.r.t. the full-sequence statistics."""

    latency_mean_error: float
    ipc_relative_error: float
    l1_miss_ratio_difference: float
    l2_miss_ratio_difference: float
    n_full_frames: int
    n_sampled_frames: int

    def as_rows(self) -> List[tuple]:
        """Rows for the Table III renderer."""
        return [
            ("Mean latency error", self.latency_mean_error),
            ("IPC relative error", self.ipc_relative_error),
            ("L1-D miss ratio difference", self.l1_miss_ratio_difference),
            ("L2 miss ratio difference", self.l2_miss_ratio_difference),
        ]


def measure_sequence(sequence: DrivingSequence, indices: Optional[Sequence[int]] = None,
                     pipeline: Optional[EuclideanClusterPipeline] = None,
                     use_bonsai: bool = False) -> List[FrameMeasurement]:
    """Run the euclidean-cluster pipeline over (a subset of) a sequence."""
    pipeline = pipeline or EuclideanClusterPipeline()
    measurements: List[FrameMeasurement] = []
    frame_indices = list(indices) if indices is not None else list(range(len(sequence)))
    for index in frame_indices:
        cloud = sequence.frame(index)
        measurements.append(pipeline.run_frame(cloud, frame_index=index, use_bonsai=use_bonsai))
    return measurements


def _mean_latency(measurements: Iterable[FrameMeasurement]) -> float:
    values = [m.end_to_end_seconds for m in measurements]
    return float(np.mean(values)) if values else 0.0


def _mean_ipc(measurements: Iterable[FrameMeasurement]) -> float:
    values = [m.extract.ipc for m in measurements]
    return float(np.mean(values)) if values else 0.0


def _miss_ratio(measurements: Iterable[FrameMeasurement], level: str) -> float:
    accesses = 0
    misses = 0
    for m in measurements:
        if level == "l1":
            accesses += m.extract.l1_accesses
            misses += m.extract.l1_misses
        else:
            accesses += m.extract.l2_accesses
            misses += m.extract.l2_misses
    return misses / accesses if accesses else 0.0


def evaluate_subsampling(sequence: DrivingSequence, n_samples: int, sample_length: int,
                         pipeline: Optional[EuclideanClusterPipeline] = None,
                         use_bonsai: bool = False) -> SubsamplingErrors:
    """Compare sub-sampled metrics against the full sequence (Table III)."""
    pipeline = pipeline or EuclideanClusterPipeline()
    full = measure_sequence(sequence, None, pipeline, use_bonsai)
    indices = systematic_subsample(len(sequence), n_samples, sample_length)
    sampled = [m for m in full if m.frame_index in set(indices)]

    full_latency = _mean_latency(full)
    sampled_latency = _mean_latency(sampled)
    full_ipc = _mean_ipc(full)
    sampled_ipc = _mean_ipc(sampled)

    return SubsamplingErrors(
        latency_mean_error=abs(sampled_latency - full_latency) / full_latency
        if full_latency else 0.0,
        ipc_relative_error=abs(sampled_ipc - full_ipc) / full_ipc if full_ipc else 0.0,
        l1_miss_ratio_difference=abs(_miss_ratio(sampled, "l1") - _miss_ratio(full, "l1")),
        l2_miss_ratio_difference=abs(_miss_ratio(sampled, "l2") - _miss_ratio(full, "l2")),
        n_full_frames=len(full),
        n_sampled_frames=len(sampled),
    )
