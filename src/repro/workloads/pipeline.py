"""End-to-end perception pipeline runner over the scenario library.

The paper evaluates individual kernels; a deployed stack chains them.  This
module runs the *whole* perception path over a multi-frame
:class:`~repro.pointcloud.sequence.DrivingSequence` — systematic frame
sub-sampling, per-frame pre-processing, k-d tree build, euclidean clustering
(through the batched query engine of :mod:`repro.runtime`), cluster
filtering, frame-to-frame tracking, and NDT localization against the first
frame — and folds every stage's functional counters, hardware-model metrics
and outcomes into one structured :class:`PipelineRunResult`.

The result's :meth:`PipelineRunResult.metrics` dictionary is deterministic
for a fixed scenario/seed/sensor configuration, which is what the
golden-metric regression harness (``tests/test_golden_pipeline.py``) locks
down: a perf refactor that changes *any* stage's behaviour — cluster counts,
search counters, localization error — trips the snapshot comparison.

The execution mode — which search backend serves the stages, and whether
they run through the hardware models — is carried as data:
``PipelineRunnerConfig(execution=ExecutionConfig(backend=<name>,
hardware=...))``, with backend names resolved by the
:mod:`repro.engine` registry.

**Hardware-in-the-loop mode** (``ExecutionConfig(hardware=True)``)
additionally routes the clustering and localization search stages through
the recorded per-query backend, so every tree access streams through the
trace-driven cache simulation of :mod:`repro.hwmodel`.  Functional outcomes
are identical to the default batched path (the per-query and batched
searches return the same results and the per-query hits are re-sorted into
the batched order); on top of them the result carries per-stage
:class:`~repro.hwmodel.report.StageHardwareReport` objects — miss ratios,
bytes moved per hierarchy level, cycle and energy estimates — surfaced under
the ``"hardware"`` key of :meth:`PipelineRunResult.metrics` and locked down
by the golden snapshots of ``tests/test_golden_hardware.py``.

Example
-------
>>> from repro.workloads import PipelineRunner
>>> result = PipelineRunner.from_scenario(          # doctest: +SKIP
...     "tunnel", n_frames=4, backend="bonsai-batched").run()
>>> result.metrics()["clusters_total"]              # doctest: +SKIP
42
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..engine.execution import ExecutionConfig
from ..hwmodel.cache import HierarchyStats
from ..hwmodel.energy import EnergyModel
from ..hwmodel.report import StageHardwareReport
from ..hwmodel.timing import TimingModel
from ..isa.cost_model import BONSAI_FU_OPS_PER_LEAF_VISIT
from ..kdtree.radius_search import SearchStats
from ..perception.cluster_filter import filter_by_extent
from ..perception.tracking import ClusterTracker, TrackerConfig
from ..perception.ndt import NDTConfig
from ..pointcloud.sequence import DrivingSequence, systematic_subsample
from .autoware import EuclideanClusterPipeline, FrameMeasurement, PipelineConfig
from .localization import LocalizationConfig, NDTLocalizationPipeline

__all__ = [
    "PipelineRunnerConfig",
    "FrameRecord",
    "LocalizationReport",
    "PipelineRunResult",
    "PipelineRunner",
    "FrameFold",
]


def _default_pipeline_config() -> PipelineConfig:
    # By default the runner serves every frame through the batched engine;
    # the trace-driven cache simulation (which forces the recorded per-query
    # backend) is opted into end-to-end via ``ExecutionConfig(hardware=True)``.
    return PipelineConfig(simulate_caches=False)


def _default_localization_config() -> LocalizationConfig:
    # Coarser voxels and a lower occupancy threshold than the map-scale
    # defaults, so localization stays solvable on the sparse worlds
    # (rural roads) as well as the dense ones.
    return LocalizationConfig(
        ndt=NDTConfig(voxel_size=3.0, min_points_per_voxel=2,
                      max_iterations=10, max_scan_points=250),
    )


@dataclass
class PipelineRunnerConfig:
    """Configuration of the end-to-end runner.

    The execution mode — which search backend serves the clustering and
    localization stages, and whether the searches run through the
    trace-driven hardware models — is one value, ``execution``
    (:class:`~repro.engine.execution.ExecutionConfig`).  The pre-engine
    boolean pair (``PipelineRunnerConfig(use_bonsai=..., hardware=...)``)
    went through its deprecation cycle and has been removed; spell the mode
    as ``execution=ExecutionConfig(backend=<name>, hardware=...)``.
    """

    #: The execution mode (backend name, hardware switch, cache geometry).
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Process only the first ``n_frames`` frames (``None``: the whole sequence).
    n_frames: Optional[int] = None
    #: ``(n_samples, sample_length)`` systematic frame sub-sampling applied to
    #: the selected frames (``None``: process every selected frame).
    subsample: Optional[Tuple[int, int]] = None
    #: Euclidean-cluster pipeline configuration (batched engine by default).
    pipeline: PipelineConfig = field(default_factory=_default_pipeline_config)
    #: Detection-extent bounds of the cluster-filtering stage.
    min_detection_extent: float = 0.2
    max_detection_extent: float = 18.0
    #: Tracker parameters (gating sized for inter-frame actor motion).
    tracker: TrackerConfig = field(default_factory=lambda: TrackerConfig(
        gating_distance=3.0, confirmation_hits=2))
    #: Run the NDT localization stage (first selected frame becomes the map).
    localization: bool = True
    localization_config: LocalizationConfig = field(
        default_factory=_default_localization_config)
    #: Cap on the number of scans registered during localization.
    max_localization_scans: int = 4
    #: Odometry-style perturbation added to the ground-truth initial guess.
    initial_translation_error: Tuple[float, float, float] = (0.3, 0.2, 0.0)


@dataclass
class FrameRecord:
    """Per-frame outcome of the clustering/filtering/tracking stages."""

    frame_index: int
    n_raw_points: int
    n_filtered_points: int
    n_clusters: int
    n_detections_kept: int
    n_confirmed_tracks: int
    model_extract_seconds: float
    model_end_to_end_seconds: float


@dataclass
class LocalizationReport:
    """Outcome and cost of the NDT localization stage."""

    n_scans: int
    mean_error_m: float
    max_error_m: float
    iterations_total: int
    instructions_total: int
    point_bytes_loaded: int
    model_seconds_total: float
    energy_j_total: float


@dataclass
class PipelineRunResult:
    """Structured result of one end-to-end run."""

    scenario: str
    use_bonsai: bool
    frame_indices: List[int]
    frames: List[FrameRecord]
    #: Aggregated radius-search counters of the clustering stage.
    cluster_search: SearchStats
    #: Aggregated compressed-search counters (Bonsai runs only).
    cluster_bonsai: Optional[BonsaiStats]
    #: Histogram of confirmed-track labels at the end of the run.
    track_labels: Dict[str, int]
    tracks_spawned: int
    confirmed_tracks_final: int
    localization: Optional[LocalizationReport]
    #: Wall-clock seconds per stage (measured, excluded from golden metrics).
    stage_seconds: Dict[str, float]
    #: The underlying per-frame measurements (hardware-model reports).
    measurements: List[FrameMeasurement] = field(default_factory=list, repr=False)
    #: Per-stage trace-driven hardware reports (hardware-in-the-loop runs only).
    hardware_stages: Optional[Dict[str, StageHardwareReport]] = None
    #: Name of the execution backend that served the run's searches.
    #: Deliberately *not* part of :meth:`metrics` — the golden snapshots key
    #: runs by backend through their filenames already.
    backend: str = "baseline-batched"

    def metrics(self) -> Dict[str, object]:
        """Deterministic, JSON-serialisable metrics for golden snapshots.

        Wall-clock stage timings are deliberately excluded — everything in
        the dictionary is a function of the scenario, seeds and
        configuration only.
        """
        frames = self.frames
        search = self.cluster_search
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "use_bonsai": self.use_bonsai,
            "n_frames": len(frames),
            "frame_indices": list(self.frame_indices),
            "raw_points_total": sum(f.n_raw_points for f in frames),
            "filtered_points_total": sum(f.n_filtered_points for f in frames),
            "clusters_total": sum(f.n_clusters for f in frames),
            "detections_kept_total": sum(f.n_detections_kept for f in frames),
            "confirmed_tracks_final": self.confirmed_tracks_final,
            "tracks_spawned": self.tracks_spawned,
            "track_labels": dict(sorted(self.track_labels.items())),
            "cluster_search": {
                "queries": search.queries,
                "leaves_visited": search.leaves_visited,
                "interior_visited": search.interior_visited,
                "points_examined": search.points_examined,
                "points_in_radius": search.points_in_radius,
                "point_bytes_loaded": search.point_bytes_loaded,
            },
            "model": {
                "extract_seconds_total": sum(f.model_extract_seconds for f in frames),
                "end_to_end_seconds_total": sum(
                    f.model_end_to_end_seconds for f in frames),
                "extract_instructions_total": sum(
                    m.extract.instructions for m in self.measurements),
                "extract_energy_j_total": sum(
                    m.extract.energy_j for m in self.measurements),
            },
        }
        if self.cluster_bonsai is not None:
            b = self.cluster_bonsai
            out["cluster_bonsai"] = {
                "leaf_visits": b.leaf_visits,
                "compressed_bytes_loaded": b.compressed_bytes_loaded,
                "points_classified": b.points_classified,
                "conclusive_in": b.conclusive_in,
                "conclusive_out": b.conclusive_out,
                "inconclusive": b.inconclusive,
                "recompute_bytes_loaded": b.recompute_bytes_loaded,
            }
        if self.localization is not None:
            loc = self.localization
            out["localization"] = {
                "n_scans": loc.n_scans,
                "mean_error_m": loc.mean_error_m,
                "max_error_m": loc.max_error_m,
                "iterations_total": loc.iterations_total,
                "instructions_total": loc.instructions_total,
                "point_bytes_loaded": loc.point_bytes_loaded,
                "model_seconds_total": loc.model_seconds_total,
                "energy_j_total": loc.energy_j_total,
            }
        if self.hardware_stages is not None:
            out["hardware"] = {
                name: self.hardware_stages[name].as_metrics()
                for name in sorted(self.hardware_stages)
            }
        return out


class FrameFold:
    """Order-sensitive accumulation of per-frame clustering results.

    The per-frame *stage* work (frame generation + clustering) is a pure
    function of the frame index, so it can run out of order or in parallel;
    everything stateful — extent filtering feeding the tracker, the
    tracker's own update, the commutative-but-ordered statistics merges and
    the record lists — lives here and must be fed **strictly in frame-index
    order**.  Both the serial :class:`PipelineRunner` and the streaming
    :class:`~repro.serve.streaming.StreamingPipelineRunner` fold through
    this one code path, which is what makes their metrics bitwise
    identical.
    """

    def __init__(self, config: PipelineRunnerConfig, execution: ExecutionConfig):
        self.config = config
        self.tracker = ClusterTracker(config.tracker)
        self.cluster_search = SearchStats()
        self.cluster_bonsai = BonsaiStats() if execution.use_bonsai else None
        self.frames: List[FrameRecord] = []
        self.measurements: List[FrameMeasurement] = []

    def fold(self, index: int, cloud, measurement: FrameMeasurement) -> float:
        """Fold one frame's stage output; returns the tracker wall-time."""
        config = self.config
        kept = filter_by_extent(
            measurement.detections,
            min_extent=config.min_detection_extent,
            max_extent=config.max_detection_extent,
        )
        start = time.perf_counter()
        confirmed = self.tracker.update(kept, timestamp=cloud.timestamp)
        track_s = time.perf_counter() - start

        self.cluster_search.merge(measurement.search_stats)
        if self.cluster_bonsai is not None and measurement.bonsai_stats is not None:
            self.cluster_bonsai.merge(measurement.bonsai_stats)
        self.measurements.append(measurement)
        self.frames.append(FrameRecord(
            frame_index=index,
            n_raw_points=measurement.n_raw_points,
            n_filtered_points=measurement.n_filtered_points,
            n_clusters=measurement.n_clusters,
            n_detections_kept=len(kept),
            n_confirmed_tracks=len(confirmed),
            model_extract_seconds=measurement.extract.seconds,
            model_end_to_end_seconds=measurement.end_to_end_seconds,
        ))
        return track_s


class PipelineRunner:
    """Chains the full perception path over one driving sequence.

    Stages (in order): systematic frame sub-sampling → per-frame
    pre-processing + k-d tree build + euclidean clustering (batched engine,
    baseline or Bonsai) → cluster filtering by extent → greedy
    nearest-neighbour tracking → NDT localization of the later frames
    against the first frame's map.
    """

    def __init__(self, sequence: DrivingSequence, scenario: str = "custom",
                 config: Optional[PipelineRunnerConfig] = None):
        self.sequence = sequence
        self.scenario = scenario
        self.config = config or PipelineRunnerConfig()

    @classmethod
    def from_scenario(cls, name: str, config: Optional[PipelineRunnerConfig] = None,
                      use_bonsai: Optional[bool] = None,
                      n_frames: Optional[int] = None, seed: Optional[int] = None,
                      n_beams: Optional[int] = None,
                      n_azimuth_steps: Optional[int] = None,
                      hardware: Optional[bool] = None,
                      backend: Optional[str] = None,
                      execution: Optional[ExecutionConfig] = None) -> "PipelineRunner":
        """Build a runner for a registered scenario (see :mod:`repro.scenarios`).

        The execution mode resolves in precedence order: the explicit
        ``execution`` argument, then ``backend`` / ``use_bonsai`` /
        ``hardware`` tweaks, then the caller's ``config.execution``, then the
        scenario's own execution default (``spec.execution``), then the
        global default.  Scenario ``pipeline_overrides`` apply only when the
        caller passes no explicit ``config`` (an explicit config is taken
        verbatim).
        """
        from ..scenarios import get_scenario

        spec = get_scenario(name)
        sequence = spec.sequence(n_frames=n_frames, seed=seed, n_beams=n_beams,
                                 n_azimuth_steps=n_azimuth_steps)
        if config is None:
            overrides = dict(spec.pipeline_overrides or {})
            if spec.execution is not None and "execution" not in overrides:
                overrides["execution"] = spec.execution
            config = PipelineRunnerConfig(**overrides)
        resolved = execution if execution is not None else config.execution
        if backend is not None:
            resolved = replace(resolved, backend=backend)
        if use_bonsai is not None and use_bonsai != resolved.use_bonsai:
            resolved = resolved.with_flavor(use_bonsai)
        if hardware is not None and hardware != resolved.hardware:
            resolved = resolved.with_hardware(hardware)
        if resolved is not config.execution:
            # Never mutate the caller's config: one config object must be
            # reusable for a baseline-then-Bonsai comparison.
            config = replace(config, execution=resolved)
        return cls(sequence, scenario=name, config=config)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> PipelineRunResult:
        """Run every stage and return the structured result."""
        config = self.config
        stage_seconds: Dict[str, float] = {}

        indices = self._select_frames()
        start = time.perf_counter()
        clouds = [self.sequence.frame(i) for i in indices]
        stage_seconds["generate"] = time.perf_counter() - start

        pipeline_config, frame_execution, cluster_pipeline = (
            self._cluster_stage_setup())
        fold = FrameFold(config, config.execution)

        cluster_s = 0.0
        track_s = 0.0
        for index, cloud in zip(indices, clouds):
            start = time.perf_counter()
            measurement = cluster_pipeline.run_frame(
                cloud, frame_index=index, execution=frame_execution)
            cluster_s += time.perf_counter() - start
            track_s += fold.fold(index, cloud, measurement)
        stage_seconds["cluster"] = cluster_s
        stage_seconds["track"] = track_s

        return self._finish(indices, clouds, fold, pipeline_config,
                            stage_seconds)

    def _cluster_stage_setup(self) -> Tuple[PipelineConfig, ExecutionConfig,
                                            EuclideanClusterPipeline]:
        """The per-frame stage's shared, immutable inputs."""
        execution = self.config.execution
        pipeline_config = self.config.pipeline
        frame_execution = execution
        if pipeline_config.simulate_caches and not execution.hardware:
            # A cache-simulating PipelineConfig keeps its per-frame recording
            # even when the runner itself is not in hardware-in-the-loop mode
            # (no per-stage hardware report is produced in that case).
            frame_execution = execution.with_hardware(True)
        return pipeline_config, frame_execution, EuclideanClusterPipeline(
            pipeline_config)

    def _finish(self, indices: Sequence[int], clouds: Sequence,
                fold: FrameFold, pipeline_config: PipelineConfig,
                stage_seconds: Dict[str, float]) -> PipelineRunResult:
        """The serial tail every runner shares: localization + assembly."""
        config = self.config
        execution = config.execution
        localization = None
        localization_recorder = None
        localization_pipeline = None
        if config.localization and len(indices) >= 2:
            if execution.hardware:
                # The localization workload carries its own machine config;
                # its trace must be simulated on that geometry (it matches
                # the clustering machine under the Table IV defaults), unless
                # the execution config pins an explicit cache geometry.
                localization_recorder = execution.make_recorder(
                    config.localization_config.cpu)
            start = time.perf_counter()
            localization, localization_pipeline = self._run_localization(
                indices, clouds, recorder=localization_recorder)
            stage_seconds["localize"] = time.perf_counter() - start

        track_labels: Dict[str, int] = {}
        for track in fold.tracker.confirmed_tracks:
            track_labels[track.label] = track_labels.get(track.label, 0) + 1

        hardware_stages = None
        if execution.hardware:
            hardware_stages = self._hardware_stages(
                pipeline_config, fold.measurements, fold.cluster_bonsai,
                localization, localization_recorder, localization_pipeline)

        return PipelineRunResult(
            scenario=self.scenario,
            use_bonsai=execution.use_bonsai,
            frame_indices=list(indices),
            frames=fold.frames,
            cluster_search=fold.cluster_search,
            cluster_bonsai=fold.cluster_bonsai,
            track_labels=track_labels,
            tracks_spawned=fold.tracker.tracks_spawned,
            confirmed_tracks_final=len(fold.tracker.confirmed_tracks),
            localization=localization,
            stage_seconds=stage_seconds,
            measurements=fold.measurements,
            hardware_stages=hardware_stages,
            backend=execution.backend,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select_frames(self) -> List[int]:
        n_available = len(self.sequence)
        n_frames = n_available if self.config.n_frames is None else min(
            self.config.n_frames, n_available)
        if self.config.subsample is None:
            return list(range(n_frames))
        n_samples, sample_length = self.config.subsample
        return systematic_subsample(n_frames, n_samples, sample_length)

    def _run_localization(
            self, indices: Sequence[int], clouds: Sequence,
            recorder: Optional[HierarchyRecorder] = None,
    ) -> Tuple[LocalizationReport, NDTLocalizationPipeline]:
        """Register later frames against the first frame's NDT map.

        The ground-truth relative translation between frame ``i`` and the
        map frame is the ego displacement the sequence generator applied;
        the initial guess perturbs it like an odometry prior would.  With a
        ``recorder`` the stage's map-tree searches run through the per-query
        path and stream into the trace-driven cache simulation.
        """
        config = self.config
        n_scans = min(len(indices) - 1, config.max_localization_scans)
        scan_indices = list(indices[1:1 + n_scans])
        map_index = indices[0]
        map_position = self.sequence.ego_position(map_index)
        perturbation = np.asarray(config.initial_translation_error, dtype=np.float64)

        pipeline = NDTLocalizationPipeline(
            clouds[0], config=config.localization_config,
            execution=config.execution, recorder=recorder)
        errors: List[float] = []
        iterations = 0
        instructions = 0
        bytes_loaded = 0
        seconds = 0.0
        energy = 0.0
        for scan_number, frame_index in enumerate(scan_indices):
            truth = self.sequence.ego_position(frame_index) - map_position
            measurement = pipeline.register_scan(
                clouds[1 + scan_number], scan_index=scan_number,
                initial_translation=truth + perturbation)
            errors.append(float(np.linalg.norm(measurement.translation - truth)))
            iterations += measurement.iterations
            instructions += measurement.instructions
            bytes_loaded += measurement.point_bytes_loaded
            seconds += measurement.seconds
            energy += measurement.energy_j
        report = LocalizationReport(
            n_scans=len(scan_indices),
            mean_error_m=float(np.mean(errors)) if errors else 0.0,
            max_error_m=float(np.max(errors)) if errors else 0.0,
            iterations_total=iterations,
            instructions_total=instructions,
            point_bytes_loaded=bytes_loaded,
            model_seconds_total=seconds,
            energy_j_total=energy,
        )
        return report, pipeline

    def _hardware_stages(
            self, pipeline_config, measurements: List[FrameMeasurement],
            cluster_bonsai: Optional[BonsaiStats],
            localization: Optional[LocalizationReport],
            localization_recorder: Optional[HierarchyRecorder],
            localization_pipeline: Optional[NDTLocalizationPipeline],
    ) -> Dict[str, StageHardwareReport]:
        """Fold the recorded traces into per-stage hardware reports.

        Both stages go through the same :meth:`StageHardwareReport.from_trace`
        path: access/miss counts come from the recorded trace (exact), and
        the instruction estimates feed each stage's own timing/energy models
        (clustering: ``pipeline_config``; localization:
        ``localization_config`` — identical Table IV machines by default),
        so the per-stage cycle and energy figures are directly comparable.
        """
        cluster_trace = HierarchyStats()
        for measurement in measurements:
            if measurement.hierarchy is not None:
                cluster_trace.merge(measurement.hierarchy)
        cluster_fu_ops = (cluster_bonsai.leaf_visits * BONSAI_FU_OPS_PER_LEAF_VISIT
                          if cluster_bonsai is not None else 0)
        stages = {
            "clustering": StageHardwareReport.from_trace(
                "clustering", cluster_trace,
                instructions=sum(m.extract.instructions for m in measurements),
                timing=TimingModel(pipeline_config.cpu),
                energy=EnergyModel(pipeline_config.energy),
                bonsai_fu_ops=cluster_fu_ops,
                l1_line_size=pipeline_config.cpu.l1d.line_size,
                l2_line_size=pipeline_config.cpu.l2.line_size),
        }
        if localization is not None and localization_recorder is not None:
            localization_fu_ops = 0
            if localization_pipeline is not None:
                bonsai_stats = localization_pipeline.matcher.bonsai_stats
                if bonsai_stats is not None:
                    localization_fu_ops = (
                        bonsai_stats.leaf_visits * BONSAI_FU_OPS_PER_LEAF_VISIT)
            localization_config = self.config.localization_config
            stages["localization"] = StageHardwareReport.from_trace(
                "localization", localization_recorder.stats,
                instructions=localization.instructions_total,
                timing=TimingModel(localization_config.cpu),
                energy=EnergyModel(localization_config.energy),
                bonsai_fu_ops=localization_fu_ops,
                l1_line_size=localization_config.cpu.l1d.line_size,
                l2_line_size=localization_config.cpu.l2.line_size)
        return stages
