"""NDT localization workload with cost accounting.

The paper evaluates K-D Bonsai on the euclidean-cluster task but points out
(Section V-A) that other Autoware algorithms — notably the NDT localization
node — are equally subject to the optimisation because they spend half of
their time in k-d tree radius search (Figure 2).  This module mirrors
:mod:`repro.workloads.autoware` for the localization pipeline: it registers
consecutive scans against a map with the simplified NDT matcher, once with
the baseline radius search and once with the Bonsai compressed search, and
converts the functional counters into the same first-order hardware metrics,
so the expected benefit on the second workload can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..engine.execution import ExecutionConfig
from ..hwmodel.cpu_config import CPUConfig, TABLE_IV_CPU
from ..hwmodel.energy import EnergyModel, EnergyParameters
from ..hwmodel.timing import KernelMetrics, TimingModel
from ..isa.cost_model import (
    BONSAI_FU_OPS_PER_LEAF_VISIT,
    InstructionBudget,
    estimate_baseline,
    estimate_bonsai,
)
from ..perception.ndt import NDTConfig, NDTMap, NDTMatcher
from ..pointcloud.cloud import PointCloud
from ..pointcloud.filters import PreprocessConfig, preprocess_for_clustering, voxel_grid_filter

__all__ = ["NDTPhaseBudget", "LocalizationConfig", "RegistrationMeasurement",
           "NDTLocalizationPipeline"]


@dataclass(frozen=True)
class NDTPhaseBudget:
    """Instruction budgets of the non-search NDT work (identical in both modes)."""

    #: Score/gradient/Hessian contribution per (scan point, neighbour voxel) pair.
    per_pair: int = 160
    #: Transform + loop bookkeeping per scan point per iteration.
    per_point_per_iteration: int = 40
    #: Covariance accumulation + eigen-decomposition share per map voxel (map build).
    per_voxel_fit: int = 90
    #: 3x3 Newton solve per iteration.
    per_iteration_solve: int = 600
    #: Fraction of the streaming accesses that miss in L1.
    streaming_l1_miss_fraction: float = 0.06


@dataclass
class LocalizationConfig:
    """Configuration of the localization workload."""

    ndt: NDTConfig = field(default_factory=lambda: NDTConfig(
        voxel_size=2.0, max_iterations=10, max_scan_points=250))
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    scan_voxel_size: float = 0.4
    cpu: CPUConfig = field(default_factory=lambda: TABLE_IV_CPU)
    energy: EnergyParameters = field(default_factory=EnergyParameters)
    instruction_budget: InstructionBudget = field(default_factory=InstructionBudget)
    phase_budget: NDTPhaseBudget = field(default_factory=NDTPhaseBudget)


@dataclass
class RegistrationMeasurement:
    """Cost metrics of registering one scan against the map."""

    scan_index: int
    use_bonsai: bool
    translation: np.ndarray
    iterations: int
    instructions: int
    loads: int
    stores: int
    point_bytes_loaded: int
    seconds: float
    energy_j: float


class NDTLocalizationPipeline:
    """Registers a sequence of scans against a fixed map, with cost accounting."""

    def __init__(self, map_cloud: PointCloud, config: Optional[LocalizationConfig] = None,
                 use_bonsai: bool = False, recorder=None,
                 execution: Optional[ExecutionConfig] = None):
        self.config = config or LocalizationConfig()
        if execution is None:
            execution = ExecutionConfig(
                backend="bonsai-batched" if use_bonsai else "baseline-batched")
        self.execution = execution
        self.use_bonsai = execution.use_bonsai
        self.timing = TimingModel(self.config.cpu)
        self.energy = EnergyModel(self.config.energy)
        map_filtered = voxel_grid_filter(
            preprocess_for_clustering(map_cloud, self.config.preprocess),
            self.config.scan_voxel_size,
        )
        self.map = NDTMap(map_filtered, self.config.ndt)
        # With a memory recorder the matcher takes the per-query search path
        # and streams every map-tree access through the trace-driven cache
        # simulation (the map build itself is offline and not recorded).
        self.recorder = recorder
        self.matcher = NDTMatcher(self.map, execution=execution, recorder=recorder)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register_scan(self, scan: PointCloud, scan_index: int = 0,
                      initial_translation: Sequence[float] = (0.0, 0.0, 0.0),
                      ) -> RegistrationMeasurement:
        """Register one raw scan; returns its cost measurement."""
        filtered = voxel_grid_filter(
            preprocess_for_clustering(scan, self.config.preprocess),
            self.config.scan_voxel_size,
        )
        stats_before = self._snapshot_stats()
        result = self.matcher.register(filtered, initial_translation=initial_translation)
        search_stats, bonsai_stats = self._delta_stats(stats_before)

        estimate = (
            estimate_bonsai(search_stats, bonsai_stats, self.config.instruction_budget)
            if self.use_bonsai and bonsai_stats is not None
            else estimate_baseline(search_stats, self.config.instruction_budget)
        )
        phase = self.config.phase_budget
        n_scan_points = min(len(filtered), self.config.ndt.max_scan_points)
        other_instructions = (
            search_stats.points_in_radius * phase.per_pair
            + n_scan_points * result.iterations * phase.per_point_per_iteration
            + result.iterations * phase.per_iteration_solve
        )
        instructions = estimate.instructions + other_instructions
        loads = estimate.loads + other_instructions // 4
        stores = estimate.stores + other_instructions // 10

        accesses = loads + stores
        misses = int(accesses * phase.streaming_l1_miss_fraction)
        metrics = KernelMetrics(
            instructions=instructions,
            loads=loads,
            stores=stores,
            l1_accesses=accesses,
            l1_misses=misses,
            l2_accesses=misses,
            l2_misses=int(misses * 0.3),
            memory_accesses=int(misses * 0.3),
        )
        seconds = self.timing.seconds(metrics)
        bonsai_fu_ops = (bonsai_stats.leaf_visits * BONSAI_FU_OPS_PER_LEAF_VISIT
                         if bonsai_stats is not None else 0)
        energy = self.energy.estimate(metrics, seconds, bonsai_fu_ops).total_j
        return RegistrationMeasurement(
            scan_index=scan_index,
            use_bonsai=self.use_bonsai,
            translation=result.translation,
            iterations=result.iterations,
            instructions=instructions,
            loads=loads,
            stores=stores,
            point_bytes_loaded=search_stats.point_bytes_loaded,
            seconds=seconds,
            energy_j=energy,
        )

    def register_sequence(self, scans: Sequence[PointCloud],
                          initial_translations: Optional[Sequence[Sequence[float]]] = None,
                          ) -> List[RegistrationMeasurement]:
        """Register several scans, returning one measurement per scan."""
        measurements = []
        for index, scan in enumerate(scans):
            initial = (initial_translations[index]
                       if initial_translations is not None else (0.0, 0.0, 0.0))
            measurements.append(self.register_scan(scan, index, initial))
        return measurements

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot_stats(self):
        stats = self.matcher.search_stats
        search_copy = (stats.queries, stats.leaves_visited, stats.interior_visited,
                       stats.points_examined, stats.points_in_radius,
                       stats.point_bytes_loaded)
        if self.use_bonsai:
            b = self.matcher.bonsai_stats
            bonsai_copy = (b.leaf_visits, b.slices_loaded, b.compressed_bytes_loaded,
                           b.points_classified, b.conclusive_in, b.conclusive_out,
                           b.inconclusive, b.recompute_bytes_loaded)
        else:
            bonsai_copy = None
        return search_copy, bonsai_copy

    def _delta_stats(self, before):
        from ..kdtree.radius_search import SearchStats

        search_before, bonsai_before = before
        stats = self.matcher.search_stats
        search_delta = SearchStats(
            queries=stats.queries - search_before[0],
            leaves_visited=stats.leaves_visited - search_before[1],
            interior_visited=stats.interior_visited - search_before[2],
            points_examined=stats.points_examined - search_before[3],
            points_in_radius=stats.points_in_radius - search_before[4],
            point_bytes_loaded=stats.point_bytes_loaded - search_before[5],
        )
        if bonsai_before is None:
            return search_delta, None
        b = self.matcher.bonsai_stats
        bonsai_delta = BonsaiStats(
            leaf_visits=b.leaf_visits - bonsai_before[0],
            slices_loaded=b.slices_loaded - bonsai_before[1],
            compressed_bytes_loaded=b.compressed_bytes_loaded - bonsai_before[2],
            points_classified=b.points_classified - bonsai_before[3],
            conclusive_in=b.conclusive_in - bonsai_before[4],
            conclusive_out=b.conclusive_out - bonsai_before[5],
            inconclusive=b.inconclusive - bonsai_before[6],
            recompute_bytes_loaded=b.recompute_bytes_loaded - bonsai_before[7],
        )
        return search_delta, bonsai_delta
