"""Autoware-like workload pipelines, profiling and sub-sampling."""

from ..engine.execution import ExecutionConfig
from .autoware import (
    EuclideanClusterPipeline,
    FrameMeasurement,
    KernelReport,
    PhaseBudget,
    PipelineConfig,
)
from .localization import (
    LocalizationConfig,
    NDTLocalizationPipeline,
    NDTPhaseBudget,
    RegistrationMeasurement,
)
from .pipeline import (
    FrameRecord,
    LocalizationReport,
    PipelineRunner,
    PipelineRunnerConfig,
    PipelineRunResult,
)
from .profiles import ExecutionShare, profile_euclidean_cluster, profile_ndt_matching
from .subsampling import SubsamplingErrors, evaluate_subsampling, measure_sequence

__all__ = [
    "ExecutionConfig",
    "FrameRecord",
    "LocalizationReport",
    "PipelineRunner",
    "PipelineRunnerConfig",
    "PipelineRunResult",
    "EuclideanClusterPipeline",
    "FrameMeasurement",
    "KernelReport",
    "PhaseBudget",
    "PipelineConfig",
    "LocalizationConfig",
    "NDTLocalizationPipeline",
    "NDTPhaseBudget",
    "RegistrationMeasurement",
    "ExecutionShare",
    "profile_euclidean_cluster",
    "profile_ndt_matching",
    "SubsamplingErrors",
    "evaluate_subsampling",
    "measure_sequence",
    "StreamingPipelineRunner",
]


def __getattr__(name: str):
    # Lazy re-export (PEP 562): repro.serve.streaming subclasses
    # PipelineRunner from this package, so an eager import here would be
    # circular whenever repro.serve loads first.
    if name == "StreamingPipelineRunner":
        from ..serve.streaming import StreamingPipelineRunner

        globals()[name] = StreamingPipelineRunner
        return StreamingPipelineRunner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
