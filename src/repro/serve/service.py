"""QueryService: a persistent worker fleet over one shared-memory store.

One process owns the map: it creates (or borrows) a
:class:`~repro.serve.store.SharedCloudStore` and a persistent pool of worker
processes.  Each worker attaches to the store **by name** — zero-copy, no
tree pickle, no second compression pass — builds a worker-global
:class:`~repro.engine.index.PointCloudIndex` over the shared tree and then
serves whatever mixed traffic arrives: batched radius searches, batched kNN,
and short end-to-end pipeline runs, each request naming any registered
backend.

Request/response model
----------------------
Requests are plain tuples dispatched through :meth:`QueryService.serve`
(results return in request order, whatever order workers finish in — the
same order-by-index collection the parallel sweeps use) or through the
typed conveniences :meth:`radius`, :meth:`knn` and :meth:`pipeline`.
Results are bitwise identical to running the same request against a local
:class:`PointCloudIndex` over the same cloud: the shared tree *is* the same
tree (same float32 points, same leaf structure, same compressed bytes), and
the campaign's ``service`` op flavor diffs exactly that equivalence.

Workers attach *borrowed* (non-refcounted): ``Pool.terminate()`` kills them
without teardown, so they must not participate in the store's refcount —
their lifetime is bounded by the service's own refcounted handle.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.index import DEFAULT_BACKEND, PointCloudIndex
from ..engine.parallel import (
    _in_daemon_process,
    _pool_context,
    _terminate_pool,
    resolve_workers,
)
from ..kdtree.build import KDTreeConfig
from ..runtime.batch import BatchKNNResult, BatchRadiusResult
from .store import SharedCloudStore

__all__ = ["QueryService"]

# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state: (borrowed store handle, index over the shared tree).
_SERVICE_STATE: Optional[Tuple[SharedCloudStore, PointCloudIndex]] = None


def _service_worker_init(store_name: str) -> None:
    global _SERVICE_STATE
    store = SharedCloudStore.attach(store_name, refcounted=False)
    _SERVICE_STATE = (store, store.index())


def _serve_one(request: tuple):
    """Execute one request tuple against the worker's shared index."""
    if _SERVICE_STATE is None:
        raise RuntimeError("service worker was not initialised")
    _, index = _SERVICE_STATE
    kind = request[0]
    if kind == "radius":
        _, queries, radius, backend = request
        result = index.radius_search(queries, radius, backend=backend)
        return result.offsets, result.point_indices
    if kind == "knn":
        _, queries, k, backend = request
        result = index.knn(queries, k, backend=backend)
        return result.indices, result.distances
    if kind == "pipeline":
        from ..workloads import PipelineRunner

        _, scenario, n_frames, seed, backend = request
        runner = PipelineRunner.from_scenario(
            scenario, n_frames=n_frames, seed=seed, backend=backend)
        return runner.run().metrics()
    raise ValueError(f"unknown service request kind {kind!r}")


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class QueryService:
    """Mixed radius/kNN/pipeline traffic over one resident shared index.

    Parameters
    ----------
    source:
        A point cloud / ``(N, 3)`` array / :class:`KDTree` (a store is
        created and owned — compressed exactly once), or an existing
        :class:`SharedCloudStore` (borrowed; the caller keeps ownership).
    n_workers:
        Worker-pool size (default: :func:`resolve_workers`).
    serial:
        Force in-process serving (no pool) — automatic inside daemon
        processes, where nested pools are not allowed.  Results are
        identical either way.
    """

    def __init__(self, source, *, n_workers: Optional[int] = None,
                 tree_config: Optional[KDTreeConfig] = None,
                 fmt=None, serial: bool = False):
        if isinstance(source, SharedCloudStore):
            self.store = source
            self._owns_store = False
        else:
            kwargs = {"tree_config": tree_config}
            if fmt is not None:
                kwargs["fmt"] = fmt
            self.store = SharedCloudStore.create(source, **kwargs)
            self._owns_store = True
        self.n_workers = resolve_workers(n_workers)
        self._serial = serial or self.n_workers < 2 or _in_daemon_process()
        self._pool = None
        self._pool_finalizer = None
        self._local_index: Optional[PointCloudIndex] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The persistent worker pool, attached to the store by name."""
        if self._pool is None:
            ctx = _pool_context()
            self._pool = ctx.Pool(
                processes=self.n_workers, initializer=_service_worker_init,
                initargs=(self.store.name,))
            self._pool_finalizer = weakref.finalize(
                self, _terminate_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Tear down the pool, then the owned store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool_finalizer.detach()
            _terminate_pool(self._pool)
            self._pool = None
            self._pool_finalizer = None
        if self._local_index is not None:
            self._local_index.close()
            self._local_index = None
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[tuple]) -> List:
        """Serve a mixed request batch; results in request order.

        Request tuples: ``("radius", queries, radius, backend)``,
        ``("knn", queries, k, backend)``,
        ``("pipeline", scenario, n_frames, seed, backend)``.
        """
        if self._closed:
            raise ValueError("QueryService is closed")
        if self._serial:
            if self._local_index is None:
                self._local_index = self.store.index()
            saved = globals()["_SERVICE_STATE"]
            globals()["_SERVICE_STATE"] = (self.store, self._local_index)
            try:
                return [_serve_one(request) for request in requests]
            finally:
                globals()["_SERVICE_STATE"] = saved
        pool = self._ensure_pool()
        handles = [pool.apply_async(_serve_one, (request,))
                   for request in requests]
        return [handle.get() for handle in handles]

    def radius(self, queries, radius: float, *,
               backend: str = DEFAULT_BACKEND) -> BatchRadiusResult:
        """Batched radius search through the service."""
        offsets, point_indices = self.serve(
            [("radius", np.asarray(queries, dtype=np.float64), radius,
              backend)])[0]
        return BatchRadiusResult(offsets=offsets, point_indices=point_indices)

    def knn(self, queries, k: int, *,
            backend: str = DEFAULT_BACKEND) -> BatchKNNResult:
        """Batched kNN through the service."""
        indices, distances = self.serve(
            [("knn", np.asarray(queries, dtype=np.float64), k, backend)])[0]
        return BatchKNNResult(indices=indices, distances=distances)

    def pipeline(self, scenario: str, *, n_frames: int = 2, seed: int = 0,
                 backend: str = DEFAULT_BACKEND) -> dict:
        """A short end-to-end pipeline run served by a worker."""
        return self.serve(
            [("pipeline", scenario, n_frames, seed, backend)])[0]
