"""StreamingPipelineRunner: overlapped frame stages, serial-identical metrics.

The serial :class:`~repro.workloads.pipeline.PipelineRunner` generates,
clusters, filters and tracks one frame at a time.  Its per-frame *stage*
work — LiDAR frame generation and euclidean clustering — is a pure function
of the frame index (the sequence re-seeds its RNG per frame and the cluster
pipeline builds a fresh extractor per call), so the stages of different
frames can run concurrently.  What cannot be reordered is the *fold*: the
extent filter feeding the tracker, the tracker update, the statistics
merges and the record lists are stateful and frame-order sensitive.

This runner overlaps the stages across a small thread pool while keeping a
**bounded stage queue** between the workers and the fold (backpressure: at
most ``queue_depth`` frames are in flight or buffered), and folds strictly
in ascending frame order through the exact
:class:`~repro.workloads.pipeline.FrameFold` code path the serial runner
uses — the frame-order generalization of the index-ordered shard merge the
``-mp`` backends are built on.  NDT localization stays serial (its scans
form a dependent chain against the first frame's map).  The result:
:meth:`run` returns a ``PipelineRunResult`` whose :meth:`metrics` is
**bitwise identical** to the serial runner's for any worker count and any
stage completion order (``tests/test_streaming_pipeline.py`` inverts the
completion order artificially to lock this down).

Threads, not processes: the stage work is NumPy-heavy (the GIL is released
in the kernels), the measurements carry non-trivially-picklable recorder
state, and thread workers read the shared scenario objects zero-copy.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import ThreadPoolExecutor
from threading import BoundedSemaphore
from typing import Callable, Dict, Optional

from ..engine.parallel import resolve_workers
from ..workloads.pipeline import (
    FrameFold,
    PipelineRunner,
    PipelineRunResult,
)

__all__ = ["StreamingPipelineRunner"]


class StreamingPipelineRunner(PipelineRunner):
    """A :class:`PipelineRunner` whose frame stages overlap across threads.

    Parameters
    ----------
    stage_workers:
        Number of stage threads (default: :func:`resolve_workers`, i.e. the
        ``REPRO_MP_WORKERS``/CPU-derived count every parallel surface uses).
        ``1`` degenerates to the serial schedule, still through the
        streaming machinery.
    queue_depth:
        Bound of the stage queue — the maximum number of frames in flight
        or completed-but-not-yet-folded (default ``2 * stage_workers``).
        Backpressure, not correctness: any depth >= 1 yields identical
        results.
    stage_delay:
        Test hook: ``stage_delay(position)`` seconds are slept inside the
        stage of the ``position``-th selected frame, letting tests force
        pathological (e.g. fully inverted) completion orders.

    Use exactly like the serial runner::

        result = StreamingPipelineRunner.from_scenario(
            "urban", n_frames=6, backend="bonsai-batched").run()

    (``from_scenario`` is inherited; set ``stage_workers`` either on the
    instance afterwards or via the constructor.)
    """

    def __init__(self, sequence, scenario: str = "custom", config=None, *,
                 stage_workers: Optional[int] = None,
                 queue_depth: Optional[int] = None,
                 stage_delay: Optional[Callable[[int], float]] = None):
        super().__init__(sequence, scenario=scenario, config=config)
        self.stage_workers = (stage_workers if stage_workers is not None
                              else resolve_workers())
        if self.stage_workers < 1:
            raise ValueError("stage_workers must be at least 1")
        self.queue_depth = queue_depth
        self.stage_delay = stage_delay

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> PipelineRunResult:
        """Run with overlapped stages; metrics bitwise-match the serial run."""
        config = self.config
        stage_seconds: Dict[str, float] = {}
        indices = self._select_frames()
        n_frames = len(indices)
        pipeline_config, frame_execution, cluster_pipeline = (
            self._cluster_stage_setup())
        fold = FrameFold(config, config.execution)

        depth = (self.queue_depth if self.queue_depth is not None
                 else max(1, 2 * self.stage_workers))
        slots = BoundedSemaphore(depth)
        done: "queue.Queue" = queue.Queue()

        def stage(position: int) -> None:
            """Generate + cluster one frame; purely index-determined."""
            start = time.perf_counter()
            try:
                index = indices[position]
                cloud = self.sequence.frame(index)
                measurement = cluster_pipeline.run_frame(
                    cloud, frame_index=index, execution=frame_execution)
                if self.stage_delay is not None:
                    time.sleep(self.stage_delay(position))
                done.put((position, cloud, measurement,
                          time.perf_counter() - start, None))
            except BaseException as exc:  # surfaced by the fold loop
                done.put((position, None, None,
                          time.perf_counter() - start, exc))

        clouds = [None] * n_frames
        cluster_s = 0.0
        track_s = 0.0
        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.stage_workers) as pool:
            submitted = 0
            folded = 0
            buffered: Dict[int, tuple] = {}
            failure: Optional[BaseException] = None
            while folded < n_frames:
                # Keep the stage queue full: submit while a slot is free.
                while (submitted < n_frames and failure is None
                       and slots.acquire(blocking=False)):
                    pool.submit(stage, submitted)
                    submitted += 1
                if failure is not None and len(buffered) + folded >= submitted:
                    raise failure
                position, cloud, measurement, seconds, exc = done.get()
                cluster_s += seconds
                if exc is not None:
                    failure = failure or exc
                buffered[position] = (cloud, measurement)
                # Fold every contiguous completed prefix, in frame order —
                # out-of-order completions wait in the bounded buffer.
                while folded in buffered and failure is None:
                    cloud, measurement = buffered.pop(folded)
                    clouds[folded] = cloud
                    track_s += fold.fold(indices[folded], cloud, measurement)
                    slots.release()
                    folded += 1
            if failure is not None:
                raise failure
        stage_seconds["stream_wall"] = time.perf_counter() - wall_start
        # The serial runner reports generation and clustering separately;
        # here one stage task covers both, so "generate" folds into
        # "cluster".  Wall-clock keys never reach metrics() either way.
        stage_seconds["generate"] = 0.0
        stage_seconds["cluster"] = cluster_s
        stage_seconds["track"] = track_s

        return self._finish(indices, clouds, fold, pipeline_config,
                            stage_seconds)
