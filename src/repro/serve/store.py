"""SharedCloudStore: one compressed point-cloud index, many processes.

The ``*-batched-mp`` backends ship the whole k-d tree to every worker through
the pool initializer — one pickle per worker, one resident copy per process.
That is fine for a single backend's private pool, but a *service* wants the
opposite shape: one resident map serving a fleet of client processes.  This
module puts the heavy, immutable parts of an index — the float32/float64
point arrays, the concatenated leaf index lists and the Bonsai
compressed-structure bytes — into POSIX shared memory
(:mod:`multiprocessing.shared_memory`), so that

* the tree is built and compressed **exactly once**, by the creating
  process (``compression_pass_count()`` counts the pass);
* any number of processes **attach by name** and reconstruct a fully
  functional :class:`~repro.kdtree.build.KDTree` whose arrays are zero-copy
  views into the shared segments (only the node skeleton — a few bytes per
  node — is rebuilt per process);
* the segments are **refcounted**: every refcounted attach increments a
  counter in the control segment under an advisory file lock, every
  ``close()`` decrements it, and the last closer unlinks all segments.
  Pool workers use *borrowed* (non-refcounted) attaches because
  ``Pool.terminate()`` kills them without running any teardown.

Lifecycle notes
---------------
``SharedMemory`` on CPython < 3.13 registers every mapping — creates *and*
attaches — with the ``resource_tracker``, which then unlinks segments when
any attaching process exits (bpo-38119).  The store unregisters every
mapping and manages unlinking purely through its own refcount, so attacher
exit order cannot destroy a live store.  If a refcounted holder dies without
closing (``SIGKILL``), the refcount never reaches zero;
:meth:`SharedCloudStore.force_unlink` is the supervisor-side cleanup for
that case, and :meth:`SharedCloudStore.exists` the probe.

On Linux, ``unlink`` removes the *name* while existing mappings stay valid,
so a store can be unlinked while clients still hold attached trees — their
queries keep working and the memory is returned when the last mapping goes
away.  ``close()`` therefore releases local mappings best-effort: a mapping
still referenced by live NumPy views is left to the garbage collector
(the segment itself is already unlinked, so nothing leaks by name).
"""

from __future__ import annotations

import os
import pickle
import secrets
import struct
import weakref
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # Advisory locking of the refcount; POSIX only (Linux/macOS).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..core.compressed_leaf import CompressedRef, compress_tree
from ..core.floatfmt import FLOAT16, FORMATS_BY_NAME, FloatFormat
from ..core.leaf_compression import CompressedLeaf
from ..kdtree.build import KDTree, KDTreeConfig, KDTreeStats, build_kdtree
from ..kdtree.node import InteriorNode, LeafNode

__all__ = ["SharedCloudStore", "SharedStructArray"]

#: Suffixes of the segments one store is made of (``<name>-<suffix>``).
SEGMENT_SUFFIXES = ("ctrl", "meta", "pts32", "pts64", "idx", "cmp")

#: Control-segment layout: one little-endian int64 refcount.
_CTRL_BYTES = 8


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a mapping out of the resource tracker's unlink-at-exit.

    Both ``create=True`` and attach register with the tracker on
    CPython < 3.13 (bpo-38119); the store refcounts unlinking itself, so a
    tracked mapping would tear the segment down under every other process
    the moment any one of them exits.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover  # repro-lint: disable=hygiene-broad-except -- tracker API drift; unregister is best-effort
        pass


def _unlink_segment(shm: shared_memory.SharedMemory) -> bool:
    """Unlink one segment without confusing the resource tracker.

    ``SharedMemory.unlink()`` unregisters the name from the tracker; the
    store unregistered it at mapping time already (see :func:`_untrack`), so
    re-register first — otherwise the tracker process logs a ``KeyError``
    for every unlink.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover  # repro-lint: disable=hygiene-broad-except -- tracker API drift; register is best-effort
        pass
    try:
        shm.unlink()  # unregisters again on success
        return True
    except FileNotFoundError:  # pragma: no cover - concurrent cleanup
        _untrack(shm)
        return False


def _leaf_payload(node) -> tuple:
    """Serialise one node of the tree skeleton into plain tuples."""
    if node.is_leaf:
        ref = node.compressed_ref
        return (
            "L",
            int(node.leaf_id),
            tuple(float(v) for v in node.bbox_min),
            tuple(float(v) for v in node.bbox_max),
            (int(ref.offset), int(ref.length), int(ref.n_points),
             int(ref.n_slices), tuple(bool(f) for f in ref.flags)),
        )
    return (
        "I",
        int(node.split_dim),
        float(node.split_value),
        float(node.split_low),
        float(node.split_high),
        tuple(float(v) for v in node.bbox_min),
        tuple(float(v) for v in node.bbox_max),
        _leaf_payload(node.left),
        _leaf_payload(node.right),
    )


class SharedStructArray:
    """Read-only :class:`CompressedStructArray` protocol over shared bytes.

    The byte blob lives in the store's ``cmp`` segment; per-leaf
    :class:`CompressedLeaf` objects are reconstructed lazily from the stored
    references plus the per-leaf payload-bit table (bytes are *copied out*
    of the segment on first access, so a cached leaf survives the segment).
    Covers every accessor the Bonsai search paths use (``get``/``ref``/
    ``read``/``data``/``total_bytes``/``len``).
    """

    def __init__(self, fmt: FloatFormat, buffer, refs: Dict[int, CompressedRef],
                 payload_bits: Dict[int, int], total_bytes: int):
        self.fmt = fmt
        self._buf = buffer
        self._refs = refs
        self._payload_bits = payload_bits
        self._total_bytes = int(total_bytes)
        self._cache: Dict[int, CompressedLeaf] = {}

    def __len__(self) -> int:
        return len(self._refs)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def data(self) -> bytes:
        return bytes(self._buf[:self._total_bytes])

    def ref(self, leaf_id: int) -> CompressedRef:
        return self._refs[leaf_id]

    def read(self, ref: CompressedRef) -> bytes:
        return bytes(self._buf[ref.offset:ref.end])

    def get(self, leaf_id: int) -> CompressedLeaf:
        leaf = self._cache.get(leaf_id)
        if leaf is None:
            ref = self._refs[leaf_id]
            leaf = CompressedLeaf(
                data=bytes(self._buf[ref.offset:ref.end]),
                n_points=ref.n_points,
                flags=ref.flags,
                payload_bits=self._payload_bits[leaf_id],
                fmt_name=self.fmt.name,
            )
            self._cache[leaf_id] = leaf
        return leaf


class SharedCloudStore:
    """A compressed point-cloud index resident in shared memory.

    Construct with :meth:`create` (builds + compresses the tree, one pass)
    or :meth:`attach` (zero-copy attach by name).  Both return a store whose
    :meth:`tree` / :meth:`index` reconstruct the k-d tree over the shared
    segments; :meth:`close` drops this handle's reference and the last
    refcounted closer unlinks the segments.  Context-manager protocol
    supported (``with SharedCloudStore.create(points) as store: ...``).
    """

    def __init__(self, name: str, segments: Dict[str, shared_memory.SharedMemory],
                 *, refcounted: bool, owner: bool):
        self.name = name
        self._segments = segments
        self._refcounted = refcounted
        self._owner = owner
        self._closed = False
        self._meta: Optional[dict] = None
        self._tree: Optional[KDTree] = None
        self._index = None
        # Safety net: a store dropped without close() must still give its
        # reference back (finalizers may run at interpreter shutdown, where
        # the decrement is attempted best-effort).
        self._finalizer = weakref.finalize(
            self, _finalize_store, name, segments, refcounted)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, cloud, *, name: Optional[str] = None,
               tree_config: Optional[KDTreeConfig] = None,
               fmt: FloatFormat = FLOAT16) -> "SharedCloudStore":
        """Build + compress the index once and publish it under ``name``.

        ``cloud`` is anything :func:`~repro.kdtree.build.build_kdtree`
        accepts, or an already-built :class:`KDTree` (compressed here if it
        is not yet).  The creator holds the first reference.
        """
        if isinstance(cloud, KDTree):
            tree = cloud
        else:
            tree = build_kdtree(cloud, tree_config)
        if getattr(tree, "compressed_array", None) is None:
            compress_tree(tree, fmt)
        array = tree.compressed_array  # type: ignore[attr-defined]
        if array.fmt.name != fmt.name:
            fmt = array.fmt

        name = name or f"repro-store-{os.getpid():x}-{secrets.token_hex(3)}"

        points32 = np.ascontiguousarray(tree.points, dtype=np.float32)
        points64 = np.ascontiguousarray(tree.points_f64, dtype=np.float64)
        indices = np.concatenate(
            [leaf.indices for leaf in tree.leaves]).astype(np.int64)
        blob = array.data

        offset = 0
        index_spans: Dict[int, Tuple[int, int]] = {}
        for leaf in tree.leaves:
            index_spans[leaf.leaf_id] = (offset, leaf.n_points)
            offset += leaf.n_points

        meta = {
            "fmt_name": fmt.name,
            "n_points": int(tree.n_points),
            "max_leaf_size": int(tree.config.max_leaf_size),
            "stats": (int(tree.stats.n_points), int(tree.stats.n_leaves),
                      int(tree.stats.n_interior), int(tree.stats.max_depth)),
            "skeleton": _leaf_payload(tree.root),
            "index_spans": index_spans,
            "payload_bits": {leaf.leaf_id: int(array.get(leaf.leaf_id).payload_bits)
                             for leaf in tree.leaves},
            "compressed_bytes": int(array.total_bytes),
        }
        meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)

        sizes = {
            "ctrl": _CTRL_BYTES,
            "meta": len(meta_blob),
            "pts32": points32.nbytes,
            "pts64": points64.nbytes,
            "idx": max(indices.nbytes, 8),
            "cmp": max(len(blob), 1),
        }
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for suffix in SEGMENT_SUFFIXES:
                shm = shared_memory.SharedMemory(
                    name=f"{name}-{suffix}", create=True, size=sizes[suffix])
                _untrack(shm)
                segments[suffix] = shm
        except BaseException:
            for shm in segments.values():
                _unlink_segment(shm)
                shm.close()
            raise

        segments["meta"].buf[:len(meta_blob)] = meta_blob
        np.ndarray(points32.shape, dtype=np.float32,
                   buffer=segments["pts32"].buf)[:] = points32
        np.ndarray(points64.shape, dtype=np.float64,
                   buffer=segments["pts64"].buf)[:] = points64
        if indices.size:
            np.ndarray(indices.shape, dtype=np.int64,
                       buffer=segments["idx"].buf)[:] = indices
        if blob:
            segments["cmp"].buf[:len(blob)] = blob
        struct.pack_into("<q", segments["ctrl"].buf, 0, 1)

        store = cls(name, segments, refcounted=True, owner=True)
        store._meta = meta
        return store

    @classmethod
    def attach(cls, name: str, *, refcounted: bool = True) -> "SharedCloudStore":
        """Attach to an existing store by name (zero-copy).

        With ``refcounted=False`` the attach is *borrowed*: the refcount is
        untouched and ``close()`` only drops the local mappings.  Borrowed
        attaches are for processes whose lifetime is bounded by a refcounted
        holder — pool workers killed by ``Pool.terminate()`` — and must
        never outlive the store.
        """
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for suffix in SEGMENT_SUFFIXES:
                shm = shared_memory.SharedMemory(name=f"{name}-{suffix}")
                _untrack(shm)
                segments[suffix] = shm
        except BaseException:
            for shm in segments.values():
                shm.close()
            raise
        store = cls(name, segments, refcounted=refcounted, owner=False)
        if refcounted:
            with store._locked():
                count = store._read_refcount()
                if count < 1:
                    # The last holder unlinked between our attach and the
                    # lock: the mapping is a ghost.  Refuse it.
                    store._refcounted = False
                    store.close()
                    raise FileNotFoundError(
                        f"shared store {name!r} was unlinked during attach")
                store._write_refcount(count + 1)
        return store

    # ------------------------------------------------------------------
    # Refcount plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Advisory exclusive lock over the control segment.

        Serialises attach-increment against close-decrement-and-unlink so an
        attacher can never grab a store between "refcount hit zero" and
        "segments unlinked".
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        fd = self._segments["ctrl"]._fd  # type: ignore[attr-defined]
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)

    def _read_refcount(self) -> int:
        return struct.unpack_from("<q", self._segments["ctrl"].buf, 0)[0]

    def _write_refcount(self, value: int) -> None:
        struct.pack_into("<q", self._segments["ctrl"].buf, 0, value)

    @property
    def refcount(self) -> int:
        """Current number of refcounted holders (read under the lock)."""
        with self._locked():
            return self._read_refcount()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this handle's reference; the last closer unlinks (idempotent).

        Local mappings are released best-effort: NumPy views handed out by
        :meth:`tree` keep their segments mapped until they are collected,
        which is safe — by then the segments are already unlinked by name.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_store(self.name, self._segments, self._refcounted)
        self._tree = None
        self._index = None

    def __enter__(self) -> "SharedCloudStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def exists(cls, name: str) -> bool:
        """Whether a store named ``name`` is currently published."""
        try:
            shm = shared_memory.SharedMemory(name=f"{name}-ctrl")
        except FileNotFoundError:
            return False
        _untrack(shm)
        shm.close()
        return True

    @classmethod
    def force_unlink(cls, name: str) -> bool:
        """Unlink every segment of ``name`` regardless of refcount.

        Supervisor-side cleanup for stores orphaned by killed holders (a
        ``SIGKILL``-ed refcounted attacher can never decrement).  Returns
        ``True`` when at least one segment was removed.
        """
        removed = False
        for suffix in SEGMENT_SUFFIXES:
            try:
                shm = shared_memory.SharedMemory(name=f"{name}-{suffix}")
            except FileNotFoundError:
                continue
            _untrack(shm)
            if _unlink_segment(shm):
                removed = True
            shm.close()
        return removed

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def _metadata(self) -> dict:
        if self._meta is None:
            self._meta = pickle.loads(bytes(self._segments["meta"].buf))
        return self._meta

    def tree(self) -> KDTree:
        """The shared k-d tree (reconstructed once per handle, zero-copy).

        Point arrays, leaf index lists and the compressed-structure bytes
        are views into the shared segments; only the node skeleton is
        process-local.  The tree is pre-compressed (``compressed_array`` is
        a :class:`SharedStructArray`) and carries ``shared_store_name`` so
        the ``*-batched-mp`` pools re-attach instead of pickling it.
        """
        if self._closed:
            raise ValueError(f"shared store {self.name!r} is closed")
        if self._tree is None:
            meta = self._metadata()
            n_points = meta["n_points"]
            points32 = np.ndarray((n_points, 3), dtype=np.float32,
                                  buffer=self._segments["pts32"].buf)
            points64 = np.ndarray((n_points, 3), dtype=np.float64,
                                  buffer=self._segments["pts64"].buf)
            points32.flags.writeable = False
            points64.flags.writeable = False
            index_array = np.ndarray((max(n_points, 1),), dtype=np.int64,
                                     buffer=self._segments["idx"].buf)
            index_array.flags.writeable = False
            spans = meta["index_spans"]

            leaves: List[LeafNode] = []

            def rebuild(payload) -> object:
                if payload[0] == "L":
                    _, leaf_id, bbox_min, bbox_max, ref_fields = payload
                    offset, length = spans[leaf_id]
                    ref = CompressedRef(
                        offset=ref_fields[0], length=ref_fields[1],
                        n_points=ref_fields[2], n_slices=ref_fields[3],
                        flags=tuple(ref_fields[4]))
                    leaf = LeafNode(
                        indices=index_array[offset:offset + length].view(np.intp),
                        leaf_id=leaf_id,
                        bbox_min=np.asarray(bbox_min, dtype=np.float64),
                        bbox_max=np.asarray(bbox_max, dtype=np.float64),
                        compressed_ref=ref,
                    )
                    leaves.append(leaf)
                    return leaf
                (_, split_dim, split_value, split_low, split_high,
                 bbox_min, bbox_max, left, right) = payload
                return InteriorNode(
                    split_dim=split_dim, split_value=split_value,
                    split_low=split_low, split_high=split_high,
                    left=rebuild(left), right=rebuild(right),
                    bbox_min=np.asarray(bbox_min, dtype=np.float64),
                    bbox_max=np.asarray(bbox_max, dtype=np.float64),
                )

            root = rebuild(meta["skeleton"])
            leaves.sort(key=lambda leaf: leaf.leaf_id)
            stats = KDTreeStats(*meta["stats"])
            tree = KDTree(points32, root,
                          KDTreeConfig(max_leaf_size=meta["max_leaf_size"]),
                          stats, leaves)
            tree._points_f64 = points64
            fmt = FORMATS_BY_NAME[meta["fmt_name"]]
            refs = {
                leaf.leaf_id: leaf.compressed_ref for leaf in leaves
            }
            tree.compressed_array = SharedStructArray(  # type: ignore[attr-defined]
                fmt, self._segments["cmp"].buf, refs,
                meta["payload_bits"], meta["compressed_bytes"])
            tree.shared_store_name = self.name  # type: ignore[attr-defined]
            tree._shared_store = self  # keep the mappings alive with the tree
            self._tree = tree
        return self._tree

    def index(self):
        """A :class:`~repro.engine.index.PointCloudIndex` over the shared tree.

        Cached per handle.  The tree is already compressed, so every Bonsai
        backend runs without a local compression pass, and all six registry
        names work unchanged (the ``*-batched-mp`` pools attach by name).
        """
        if self._index is None:
            from ..engine.index import PointCloudIndex

            meta = self._metadata()
            self._index = PointCloudIndex(
                self.tree(), fmt=FORMATS_BY_NAME[meta["fmt_name"]])
        return self._index

    @property
    def fmt(self) -> FloatFormat:
        return FORMATS_BY_NAME[self._metadata()["fmt_name"]]

    @property
    def n_points(self) -> int:
        return self._metadata()["n_points"]

    @property
    def n_leaves(self) -> int:
        return self._metadata()["stats"][1]


def _release_store(name: str,
                   segments: Dict[str, shared_memory.SharedMemory],
                   refcounted: bool) -> None:
    """Decrement (refcounted handles), unlink on zero, drop local mappings."""
    unlink = False
    if refcounted:
        ctrl = segments["ctrl"]
        if fcntl is not None:
            fcntl.flock(ctrl._fd, fcntl.LOCK_EX)  # type: ignore[attr-defined]
        try:
            count = struct.unpack_from("<q", ctrl.buf, 0)[0] - 1
            struct.pack_into("<q", ctrl.buf, 0, count)
            unlink = count <= 0
            if unlink:
                for shm in segments.values():
                    _unlink_segment(shm)
        finally:
            if fcntl is not None:
                fcntl.flock(ctrl._fd, fcntl.LOCK_UN)  # type: ignore[attr-defined]
    for shm in segments.values():
        try:
            shm.close()
        except BufferError:
            # A NumPy view into this segment is still alive; the mapping is
            # released when the view is collected.  Unlinking already
            # happened (or is another holder's job), so nothing leaks.
            pass


def _finalize_store(name: str,
                    segments: Dict[str, shared_memory.SharedMemory],
                    refcounted: bool) -> None:
    """weakref.finalize hook: best-effort close of an abandoned handle."""
    try:
        _release_store(name, segments, refcounted)
    except Exception:  # pragma: no cover  # repro-lint: disable=hygiene-broad-except -- shutdown finalizer must never raise
        pass
