"""Serving-load generator: N client processes, one resident shared index.

The load generator is the end-to-end proof of the serve layer's claim: one
process builds and compresses the map **once**
(:func:`~repro.core.compressed_leaf.compression_pass_count` == 1), publishes
it as a :class:`~repro.serve.store.SharedCloudStore`, and ``n_clients``
independent processes attach by name, build a
:class:`~repro.engine.index.PointCloudIndex` over the shared tree and fire
identical seeded mixed radius/kNN request streams at it — each client
asserting that *its* process ran **zero** compression passes.

Every client returns per-request wall-clock latencies plus a results
checksum; the parent aggregates throughput and p50/p95/p99 latency per
backend and cross-checks that all clients' checksums agree (same shared
bytes => same answers).  ``benchmarks/bench_serving_load.py`` renders the
result into ``benchmarks/results/serving_load.txt``; the ``repro
serve-bench`` CLI command drives the same entry point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..engine.parallel import _pool_context
from .store import SharedCloudStore

__all__ = ["ServingLoadResult", "run_serving_load", "render_serving_load"]

#: Backends each client's request stream cycles through.
CLIENT_BACKENDS = ("baseline-batched", "bonsai-batched")


def _client_requests(rng: np.random.Generator, points: np.ndarray, n_requests: int,
                     n_queries: int, radius: float, k: int) -> List[tuple]:
    """The seeded mixed request stream one client fires (pure function)."""
    requests = []
    for i in range(n_requests):
        base = points[rng.integers(0, len(points), n_queries)]
        queries = base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)
        backend = CLIENT_BACKENDS[i % len(CLIENT_BACKENDS)]
        if i % 2 == 0:
            requests.append(("radius", queries, radius, backend))
        else:
            requests.append(("knn", queries, k, backend))
    return requests


def _run_client(store_name: str, client_id: int, seed: int, n_requests: int,
                n_queries: int, radius: float, k: int, out_queue) -> None:
    """One client process: attach, serve its stream, report stats."""
    from ..core.compressed_leaf import compression_pass_count

    # Fork-started clients inherit the parent's counter value, so the
    # client's own passes are the delta from here on.
    passes_at_start = compression_pass_count()
    try:
        with SharedCloudStore.attach(store_name) as store:
            index = store.index()
            points = np.asarray(store.tree().points)
            rng = np.random.default_rng(seed)
            requests = _client_requests(rng, points, n_requests, n_queries,
                                        radius, k)
            latencies: Dict[str, List[float]] = {}
            checksum = 0
            for request in requests:
                kind = request[0]
                start = time.perf_counter()
                if kind == "radius":
                    _, queries, r, backend = request
                    result = index.radius_search(queries, r, backend=backend)
                    checksum += int(result.point_indices.sum())
                    checksum += int(result.offsets[-1])
                else:
                    _, queries, kk, backend = request
                    result = index.knn(queries, kk, backend=backend)
                    checksum += int(result.indices.sum())
                elapsed = time.perf_counter() - start
                latencies.setdefault(f"{kind}:{backend}", []).append(elapsed)
            index.close()
        out_queue.put({
            "client": client_id,
            "latencies": latencies,
            "checksum": checksum,
            "compression_passes": compression_pass_count() - passes_at_start,
            "error": None,
        })
    except BaseException as exc:  # report, never hang the parent
        out_queue.put({"client": client_id, "latencies": {}, "checksum": 0,
                       "compression_passes": -1, "error": repr(exc)})


@dataclass
class ServingLoadResult:
    """Aggregated statistics of one serving-load run."""

    n_clients: int
    n_points: int
    n_requests_per_client: int
    n_queries: int
    radius: float
    k: int
    wall_seconds: float
    parent_compression_passes: int
    client_compression_passes: List[int]
    checksums: List[int]
    #: ``{"radius:baseline-batched": [seconds, ...], ...}`` pooled over clients.
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(len(v) for v in self.latencies.values())

    @property
    def throughput_rps(self) -> float:
        """Served requests per wall-clock second, fleet-wide."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    def percentiles(self, key: str) -> Tuple[float, float, float]:
        """(p50, p95, p99) latency in seconds for one traffic class."""
        values = np.asarray(self.latencies[key], dtype=np.float64)
        p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
        return float(p50), float(p95), float(p99)

    @property
    def checksums_agree(self) -> bool:
        return len(set(self.checksums)) <= 1


def run_serving_load(*, n_clients: int = 4, n_points: int = 15_000,
                     n_requests: int = 24, n_queries: int = 96,
                     radius: float = 0.6, k: int = 5,
                     seed: int = 7,
                     timeout: float = 600.0) -> ServingLoadResult:
    """Run the serving-load experiment and return aggregated statistics.

    Creates one shared store (exactly one compression pass, asserted),
    spawns ``n_clients`` attaching client processes firing identical seeded
    mixed streams, and pools their latencies.  Raises if any client errors,
    runs a local compression pass, or disagrees on the results checksum.
    """
    from ..core.compressed_leaf import compression_pass_count

    passes_before = compression_pass_count()
    rng = np.random.default_rng(seed)
    points = rng.uniform(-40.0, 40.0, (n_points, 3)).astype(np.float32)

    ctx = _pool_context()
    with SharedCloudStore.create(points) as store:
        parent_passes = compression_pass_count() - passes_before
        out_queue = ctx.Queue()
        clients = [
            ctx.Process(
                target=_run_client,
                # Every client fires the SAME seeded stream: identical
                # requests against identical shared bytes must produce
                # identical checksums — that is the cross-client assertion.
                args=(store.name, client_id, seed + 1, n_requests,
                      n_queries, radius, k, out_queue),
                daemon=False,
            )
            for client_id in range(n_clients)
        ]
        wall_start = time.perf_counter()
        for proc in clients:
            proc.start()
        reports = [out_queue.get(timeout=timeout) for _ in clients]
        for proc in clients:
            proc.join(timeout=timeout)
        wall_seconds = time.perf_counter() - wall_start

    errors = [r["error"] for r in reports if r["error"] is not None]
    if errors:
        raise RuntimeError(f"serving clients failed: {errors}")

    latencies: Dict[str, List[float]] = {}
    for report in reports:
        for key, values in report["latencies"].items():
            latencies.setdefault(key, []).extend(values)

    result = ServingLoadResult(
        n_clients=n_clients,
        n_points=n_points,
        n_requests_per_client=n_requests,
        n_queries=n_queries,
        radius=radius,
        k=k,
        wall_seconds=wall_seconds,
        parent_compression_passes=parent_passes,
        client_compression_passes=[r["compression_passes"] for r in reports],
        checksums=[r["checksum"] for r in reports],
        latencies=latencies,
    )
    if result.parent_compression_passes != 1:
        raise RuntimeError(
            f"expected exactly one compression pass in the parent, counted "
            f"{result.parent_compression_passes}")
    if any(p != 0 for p in result.client_compression_passes):
        raise RuntimeError(
            f"attaching clients must not compress: "
            f"{result.client_compression_passes}")
    if not result.checksums_agree:
        raise RuntimeError(f"client checksums diverged: {result.checksums}")
    return result


def render_serving_load(result: ServingLoadResult) -> str:
    """Render the serving-load table (``benchmarks/results/serving_load.txt``)."""
    lines = [
        (f"Serving load - {result.n_clients} client processes x "
         f"{result.n_requests_per_client} requests "
         f"({result.n_queries} queries each) against one shared "
         f"{result.n_points:,}-point store"),
        (f"Compression passes: parent={result.parent_compression_passes}, "
         f"clients={result.client_compression_passes} "
         f"(one resident compressed tree, zero client rebuilds)"),
        (f"Fleet throughput: {result.throughput_rps:,.1f} requests/s over "
         f"{result.wall_seconds:.2f} s wall; checksums "
         f"{'agree' if result.checksums_agree else 'DIVERGED'}"),
        "",
        "Traffic class                | p50 ms  | p95 ms  | p99 ms  | requests",
        "-----------------------------+---------+---------+---------+---------",
    ]
    for key in sorted(result.latencies):
        p50, p95, p99 = result.percentiles(key)
        lines.append(
            f"{key:<29}| {p50 * 1e3:>7.2f} | {p95 * 1e3:>7.2f} "
            f"| {p99 * 1e3:>7.2f} | {len(result.latencies[key]):>8}")
    return "\n".join(lines)
