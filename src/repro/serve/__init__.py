"""The serve layer: one resident compressed index, many consumers.

Three pieces, layered bottom-up:

* :class:`SharedCloudStore` (:mod:`repro.serve.store`) — the map's heavy,
  immutable arrays (points, leaf index lists, Bonsai compressed bytes) in
  refcounted POSIX shared memory; built and compressed exactly once,
  attached zero-copy by name.
* :class:`QueryService` (:mod:`repro.serve.service`) — a persistent worker
  pool attached to one store, serving mixed radius/kNN/pipeline traffic
  against any registered backend.
* :class:`StreamingPipelineRunner` (:mod:`repro.serve.streaming`) — the
  end-to-end pipeline with frame generation and clustering overlapped
  across workers behind a bounded stage queue, folding results in frame
  order so ``metrics()`` stays bitwise identical to the serial runner.

:mod:`repro.serve.loadgen` drives the whole stack: N client processes
firing mixed traffic at one resident store, reported as throughput and
latency percentiles (``repro serve-bench`` /
``benchmarks/bench_serving_load.py``).
"""

from .loadgen import ServingLoadResult, render_serving_load, run_serving_load
from .service import QueryService
from .store import SharedCloudStore, SharedStructArray
from .streaming import StreamingPipelineRunner

__all__ = [
    "QueryService",
    "ServingLoadResult",
    "SharedCloudStore",
    "SharedStructArray",
    "StreamingPipelineRunner",
    "render_serving_load",
    "run_serving_load",
]
