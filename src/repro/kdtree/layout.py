"""Virtual memory layout of the k-d tree data structures.

The hardware model (caches, byte counters) needs addresses for the loads a
radius search performs.  This module assigns a deterministic virtual layout to
the structures PCL/FLANN allocate:

* the point array (``PointXYZ`` is four 32-bit floats: x, y, z, padding);
* the per-leaf index array (``vind`` in FLANN: one 32-bit index per point);
* the node records of the tree itself;
* the compressed-structure array (``cmprsd_strct_array``) introduced by
  K-D Bonsai, which stores compressed leaves contiguously.

The addresses are synthetic but the relative placement (separate contiguous
regions, per-point strides) matches the real allocations, which is what
determines cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .node import LeafNode

__all__ = ["TreeMemoryLayout", "POINT_STRIDE_BYTES", "INDEX_STRIDE_BYTES", "NODE_RECORD_BYTES"]

#: PCL stores PointXYZ as 4 x float32 (x, y, z, padding).
POINT_STRIDE_BYTES = 16
#: FLANN's vind array holds 32-bit point indices.
INDEX_STRIDE_BYTES = 4
#: Approximate size of one FLANN node record (child pointers + split info).
NODE_RECORD_BYTES = 32

_POINTS_BASE = 0x1000_0000
_INDICES_BASE = 0x2000_0000
_NODES_BASE = 0x3000_0000
_COMPRESSED_BASE = 0x4000_0000
_QUERY_BASE = 0x5000_0000
_RESULT_BASE = 0x6000_0000
_FLAGS_BASE = 0x7000_0000
_QUEUE_BASE = 0x7800_0000


@dataclass
class TreeMemoryLayout:
    """Address calculator for one tree instance.

    A fresh layout should be created per tree (per frame); all trees share the
    same base addresses, which mirrors an allocator reusing the same arena
    frame after frame.
    """

    n_points: int
    points_base: int = _POINTS_BASE
    indices_base: int = _INDICES_BASE
    nodes_base: int = _NODES_BASE
    compressed_base: int = _COMPRESSED_BASE
    query_base: int = _QUERY_BASE
    result_base: int = _RESULT_BASE
    flags_base: int = _FLAGS_BASE
    queue_base: int = _QUEUE_BASE

    # ------------------------------------------------------------------
    # Baseline structures
    # ------------------------------------------------------------------
    def point_address(self, point_index: int) -> int:
        """Address of the ``PointXYZ`` record of ``point_index``."""
        return self.points_base + point_index * POINT_STRIDE_BYTES

    def index_entry_address(self, position: int) -> int:
        """Address of the ``position``-th entry of the leaf index (vind) array."""
        return self.indices_base + position * INDEX_STRIDE_BYTES

    def node_address(self, node_ordinal: int) -> int:
        """Address of the ``node_ordinal``-th node record."""
        return self.nodes_base + node_ordinal * NODE_RECORD_BYTES

    # ------------------------------------------------------------------
    # K-D Bonsai structures
    # ------------------------------------------------------------------
    def compressed_address(self, byte_offset: int) -> int:
        """Address of a byte inside ``cmprsd_strct_array``."""
        return self.compressed_base + byte_offset

    def query_address(self) -> int:
        """Address of the query point (stack/register spill area)."""
        return self.query_base

    def result_address(self, slot: int) -> int:
        """Address of the ``slot``-th entry of the result index vector."""
        return self.result_base + slot * INDEX_STRIDE_BYTES

    # ------------------------------------------------------------------
    # Cluster-extraction structures (the BFS bookkeeping of the extract kernel)
    # ------------------------------------------------------------------
    def flag_address(self, point_index: int) -> int:
        """Address of the ``processed`` flag byte of ``point_index``."""
        return self.flags_base + point_index

    def queue_address(self, slot: int) -> int:
        """Address of the ``slot``-th entry of the BFS frontier queue."""
        return self.queue_base + slot * INDEX_STRIDE_BYTES
