"""K-d tree node types.

The tree follows the optimised k-d tree layout used by PCL/FLANN (and assumed
by the paper): points live only in the leaves (up to ``max_leaf_size`` of
them, default 15), while interior nodes record the splitting coordinate and
the boundaries of the two child sub-trees along that coordinate, which is
exactly the information the radius-search traversal needs to decide whether
the farther sub-tree can contain points within the search radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

__all__ = ["LeafNode", "InteriorNode", "Node"]


@dataclass
class LeafNode:
    """A leaf holding the indices of the points it contains.

    Attributes
    ----------
    indices:
        Indices into the tree's point array, in the order produced by the
        build partitioning (mirroring FLANN's ``vind`` sub-range).
    leaf_id:
        Sequential identifier assigned at build time; used to attach
        compressed structures and per-leaf statistics.
    bbox_min / bbox_max:
        Axis-aligned bounding box of the points in the leaf.
    compressed_ref:
        Optional reference into the compressed-structure array
        (:class:`repro.core.compressed_leaf.CompressedStructArray`): the
        paper reuses otherwise-unused leaf fields to store the offset and
        length of the leaf's compressed data, which is what this attribute
        models.
    """

    indices: np.ndarray
    leaf_id: int
    bbox_min: np.ndarray
    bbox_max: np.ndarray
    compressed_ref: Optional[object] = None

    @property
    def n_points(self) -> int:
        """Number of points stored in the leaf."""
        return int(self.indices.shape[0])

    @property
    def is_leaf(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"LeafNode(id={self.leaf_id}, n_points={self.n_points})"


@dataclass
class InteriorNode:
    """An interior node guiding traversal.

    ``split_low`` is the maximum value of the splitting coordinate in the left
    sub-tree and ``split_high`` the minimum value in the right sub-tree (the
    child bounding-box edges the paper describes parents as holding).  The
    distance from a query to the not-taken sub-tree along the splitting
    coordinate is measured against these edges.
    """

    split_dim: int
    split_value: float
    split_low: float
    split_high: float
    left: "Node"
    right: "Node"
    bbox_min: np.ndarray
    bbox_max: np.ndarray

    @property
    def is_leaf(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"InteriorNode(dim={self.split_dim}, value={self.split_value:.3f})"
        )


Node = Union[LeafNode, InteriorNode]
