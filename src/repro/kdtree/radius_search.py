"""Baseline radius search over the k-d tree.

The traversal matches PCL/FLANN: descend towards the child whose region
contains the query, then on the way back up visit the other child whenever its
region is within the search radius along the splitting coordinate.  Every leaf
reached is handed to a *leaf inspector*, which classifies the leaf's points.

The inspector is pluggable so that the baseline 32-bit inspection and the
K-D Bonsai compressed inspection share exactly the same traversal (only leaf
processing differs, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..runtime.kernels import leaf_distances2
from .build import KDTree
from .layout import POINT_STRIDE_BYTES, NODE_RECORD_BYTES, TreeMemoryLayout
from .node import LeafNode, Node

__all__ = [
    "SearchStats",
    "MemoryRecorder",
    "LeafInspector",
    "Float32LeafInspector",
    "radius_search",
    "RadiusSearcher",
]


class MemoryRecorder(Protocol):
    """Sink for the loads/stores a search performs (duck-typed).

    Implementations live in :mod:`repro.hwmodel`; the search only needs the
    two methods below.
    """

    def record_load(self, address: int, size: int) -> None:  # pragma: no cover - protocol
        ...

    def record_store(self, address: int, size: int) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class SearchStats:
    """Counters accumulated across one or more radius searches."""

    queries: int = 0
    leaves_visited: int = 0
    interior_visited: int = 0
    points_examined: int = 0
    points_in_radius: int = 0
    point_bytes_loaded: int = 0
    leaf_visit_counts: Dict[int, int] = field(default_factory=dict)

    def note_leaf_visit(self, leaf_id: int) -> None:
        """Record one visit to ``leaf_id``."""
        self.leaves_visited += 1
        self.leaf_visit_counts[leaf_id] = self.leaf_visit_counts.get(leaf_id, 0) + 1

    def note_leaf_visit_batch(self, leaf_id: int, n_queries: int) -> None:
        """Record ``n_queries`` simultaneous visits to ``leaf_id``.

        Used by the batched engine (:mod:`repro.runtime`): one batched leaf
        inspection on behalf of ``n_queries`` queries counts exactly like
        ``n_queries`` single-query visits, so batched and per-query statistics
        aggregate identically.
        """
        self.leaves_visited += n_queries
        self.leaf_visit_counts[leaf_id] = (
            self.leaf_visit_counts.get(leaf_id, 0) + n_queries)

    @property
    def mean_visits_per_leaf(self) -> float:
        """Average number of visits per distinct leaf (the paper's ~52)."""
        if not self.leaf_visit_counts:
            return 0.0
        return self.leaves_visited / len(self.leaf_visit_counts)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other``'s counters into this object."""
        self.queries += other.queries
        self.leaves_visited += other.leaves_visited
        self.interior_visited += other.interior_visited
        self.points_examined += other.points_examined
        self.points_in_radius += other.points_in_radius
        self.point_bytes_loaded += other.point_bytes_loaded
        for leaf_id, count in other.leaf_visit_counts.items():
            self.leaf_visit_counts[leaf_id] = self.leaf_visit_counts.get(leaf_id, 0) + count


class LeafInspector(Protocol):
    """Classifies the points of one leaf against a query and radius."""

    def inspect(
        self,
        tree: KDTree,
        leaf: LeafNode,
        query: np.ndarray,
        r2: float,
        results: List[int],
        stats: SearchStats,
        recorder: Optional[MemoryRecorder],
        layout: Optional[TreeMemoryLayout],
    ) -> None:  # pragma: no cover - protocol
        ...


class Float32LeafInspector:
    """Baseline leaf inspection: full 32-bit points, exact classification.

    Models PCL's behaviour: for every point in the leaf, load its index from
    the vind array, load the 16-byte ``PointXYZ`` record, compute the squared
    euclidean distance in 32-bit and compare against ``r2``.
    """

    def inspect(self, tree, leaf, query, r2, results, stats, recorder, layout) -> None:
        points = tree.points_f64[leaf.indices]
        d2 = leaf_distances2(points, query)
        inside = d2 <= r2

        stats.points_examined += leaf.n_points
        stats.points_in_radius += int(inside.sum())
        stats.point_bytes_loaded += leaf.n_points * POINT_STRIDE_BYTES

        if recorder is not None and layout is not None:
            for position, point_index in enumerate(leaf.indices):
                recorder.record_load(
                    layout.index_entry_address(int(point_index)), 4
                )
                recorder.record_load(layout.point_address(int(point_index)), POINT_STRIDE_BYTES)

        for point_index, in_radius in zip(leaf.indices, inside):
            if in_radius:
                results.append(int(point_index))


def radius_search(
    tree: KDTree,
    query: Sequence[float],
    radius: float,
    inspector: Optional[LeafInspector] = None,
    stats: Optional[SearchStats] = None,
    recorder: Optional[MemoryRecorder] = None,
    layout: Optional[TreeMemoryLayout] = None,
) -> List[int]:
    """Return the indices of all tree points within ``radius`` of ``query``.

    Parameters
    ----------
    inspector:
        Leaf-processing strategy; defaults to the baseline 32-bit inspector.
    stats / recorder / layout:
        Optional accounting hooks (search counters, memory-access recorder and
        address layout).
    """
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    inspector = inspector or Float32LeafInspector()
    stats = stats if stats is not None else SearchStats()
    query_arr = np.asarray(query, dtype=np.float64)
    if query_arr.shape != (3,):
        raise ValueError("query must be a 3D point")
    r2 = float(radius) * float(radius)
    results: List[int] = []
    stats.queries += 1
    _search_node(tree, tree.root, query_arr, float(radius), r2, inspector,
                 results, stats, recorder, layout, node_ordinal=[0])
    return results


def _search_node(tree, node: Node, query: np.ndarray, radius: float, r2: float,
                 inspector: LeafInspector, results: List[int], stats: SearchStats,
                 recorder, layout, node_ordinal: List[int]) -> None:
    ordinal = node_ordinal[0]
    node_ordinal[0] += 1
    if recorder is not None and layout is not None:
        recorder.record_load(layout.node_address(ordinal), NODE_RECORD_BYTES)

    if node.is_leaf:
        stats.note_leaf_visit(node.leaf_id)
        inspector.inspect(tree, node, query, r2, results, stats, recorder, layout)
        return

    stats.interior_visited += 1
    value = query[node.split_dim]
    if value <= node.split_value:
        near, far = node.left, node.right
        # Distance from the query to the far (right) sub-tree's edge.
        far_gap = node.split_high - value
    else:
        near, far = node.right, node.left
        far_gap = value - node.split_low

    _search_node(tree, near, query, radius, r2, inspector, results, stats,
                 recorder, layout, node_ordinal)
    if far_gap <= radius:
        _search_node(tree, far, query, radius, r2, inspector, results, stats,
                     recorder, layout, node_ordinal)


class RadiusSearcher:
    """Convenience wrapper binding a tree, an inspector and accounting hooks.

    Useful when issuing many queries against the same tree (the common pattern
    in euclidean clustering): statistics accumulate across queries.
    """

    def __init__(self, tree: KDTree, inspector: Optional[LeafInspector] = None,
                 recorder: Optional[MemoryRecorder] = None,
                 layout: Optional[TreeMemoryLayout] = None):
        self.tree = tree
        self.inspector = inspector or Float32LeafInspector()
        self.recorder = recorder
        self.layout = layout
        self.stats = SearchStats()

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Radius search accumulating into the shared :class:`SearchStats`."""
        return radius_search(
            self.tree, query, radius, inspector=self.inspector, stats=self.stats,
            recorder=self.recorder, layout=self.layout,
        )
