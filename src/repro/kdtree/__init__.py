"""PCL/FLANN-style leaf-based k-d tree with pluggable leaf processing."""

from .build import DEFAULT_MAX_LEAF_SIZE, KDTree, KDTreeConfig, KDTreeStats, build_kdtree
from .knn import nearest_neighbor, nearest_neighbors
from .layout import (
    INDEX_STRIDE_BYTES,
    NODE_RECORD_BYTES,
    POINT_STRIDE_BYTES,
    TreeMemoryLayout,
)
from .node import InteriorNode, LeafNode, Node
from .radius_search import (
    Float32LeafInspector,
    LeafInspector,
    RadiusSearcher,
    SearchStats,
    radius_search,
)

__all__ = [
    "DEFAULT_MAX_LEAF_SIZE",
    "KDTree",
    "KDTreeConfig",
    "KDTreeStats",
    "build_kdtree",
    "nearest_neighbor",
    "nearest_neighbors",
    "INDEX_STRIDE_BYTES",
    "NODE_RECORD_BYTES",
    "POINT_STRIDE_BYTES",
    "TreeMemoryLayout",
    "InteriorNode",
    "LeafNode",
    "Node",
    "Float32LeafInspector",
    "LeafInspector",
    "RadiusSearcher",
    "SearchStats",
    "radius_search",
]
