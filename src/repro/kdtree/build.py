"""K-d tree construction (PCL/FLANN-style).

The builder follows the optimised k-d tree of Friedman/Bentley/Finkel as
implemented by FLANN's single-tree index (the index PCL's ``KdTreeFLANN``
uses, and which Autoware's euclidean cluster relies on):

* points are stored only in leaves, at most ``max_leaf_size`` per leaf
  (PCL's default is 15);
* each interior node splits on the coordinate whose values are most spread
  out within the node's bounding box;
* the split value is the median of that coordinate, so the tree stays
  balanced regardless of point distribution;
* every node records its bounding box, and interior nodes record the edges of
  the two children along the split coordinate (used by the search to bound
  the distance to the not-taken sub-tree).
"""
# repro-lint: disable-file=hygiene-assert-control-flow -- KDTree.validate()
# documents "Raises AssertionError" as its contract; its asserts are the API.

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..pointcloud.cloud import PointCloud
from .node import InteriorNode, LeafNode, Node

__all__ = ["KDTree", "KDTreeConfig", "build_kdtree"]

#: PCL's default maximum number of points per leaf.
DEFAULT_MAX_LEAF_SIZE = 15


@dataclass
class KDTreeConfig:
    """Build-time parameters of the k-d tree."""

    max_leaf_size: int = DEFAULT_MAX_LEAF_SIZE

    def __post_init__(self) -> None:
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be at least 1")


@dataclass
class KDTreeStats:
    """Structural statistics collected while building the tree."""

    n_points: int = 0
    n_leaves: int = 0
    n_interior: int = 0
    max_depth: int = 0

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (leaves plus interior nodes)."""
        return self.n_leaves + self.n_interior


class KDTree:
    """A leaf-based k-d tree over a fixed set of 3D points."""

    def __init__(self, points: np.ndarray, root: Node, config: KDTreeConfig,
                 stats: KDTreeStats, leaves: List[LeafNode]):
        self._points = points
        self._points_f64: Optional[np.ndarray] = None
        self.root = root
        self.config = config
        self.stats = stats
        self._leaves = leaves

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The ``(N, 3)`` float32 point array the tree indexes."""
        return self._points

    @property
    def points_f64(self) -> np.ndarray:
        """Float64 view of the point array, converted once and cached.

        Every leaf inspection computes distances in float64; converting the
        float32 storage once per tree (instead of once per leaf visit) removes
        a per-visit copy from the search hot paths.
        """
        if self._points_f64 is None:
            self._points_f64 = self._points.astype(np.float64)
        return self._points_f64

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._points.shape[0]

    @property
    def leaves(self) -> List[LeafNode]:
        """All leaf nodes in build order (leaf_id order)."""
        return self._leaves

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return len(self._leaves)

    def depth(self) -> int:
        """Maximum depth of the tree (root at depth 0)."""
        return self.stats.max_depth

    def iter_nodes(self) -> Iterator[Node]:
        """Depth-first iteration over all nodes."""
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def leaf_points(self, leaf: LeafNode) -> np.ndarray:
        """The coordinate array of the points stored in ``leaf``."""
        return self._points[leaf.indices]

    def validate(self) -> None:
        """Check the structural invariants of the tree.

        * every point index appears in exactly one leaf;
        * leaves are no larger than ``max_leaf_size``;
        * every leaf point lies inside the leaf's bounding box;
        * for every interior node, left-subtree values along the split
          coordinate are <= ``split_low`` and right-subtree values are >=
          ``split_high``.

        Raises ``AssertionError`` when an invariant is violated (used by the
        test-suite and by property-based tests).
        """
        seen = np.zeros(self.n_points, dtype=bool)
        for leaf in self._leaves:
            assert leaf.n_points <= self.config.max_leaf_size, "oversized leaf"
            assert not np.any(seen[leaf.indices]), "point indexed by two leaves"
            seen[leaf.indices] = True
            pts = self.leaf_points(leaf).astype(np.float64)
            assert np.all(pts >= leaf.bbox_min - 1e-6), "point below leaf bbox"
            assert np.all(pts <= leaf.bbox_max + 1e-6), "point above leaf bbox"
        assert np.all(seen), "point missing from every leaf"

        def check(node: Node) -> Tuple[float, float]:
            if node.is_leaf:
                return 0.0, 0.0
            left_vals = self._subtree_values(node.left, node.split_dim)
            right_vals = self._subtree_values(node.right, node.split_dim)
            assert left_vals.max() <= node.split_low + 1e-6, "left child exceeds split_low"
            assert right_vals.min() >= node.split_high - 1e-6, "right child below split_high"
            check(node.left)
            check(node.right)
            return 0.0, 0.0

        check(self.root)

    def _subtree_values(self, node: Node, dim: int) -> np.ndarray:
        indices: List[np.ndarray] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                indices.append(current.indices)
            else:
                stack.append(current.left)
                stack.append(current.right)
        return self._points[np.concatenate(indices), dim].astype(np.float64)


def build_kdtree(cloud_or_points, config: Optional[KDTreeConfig] = None) -> KDTree:
    """Build a k-d tree over a :class:`PointCloud` or an ``(N, 3)`` array."""
    config = config or KDTreeConfig()
    if isinstance(cloud_or_points, PointCloud):
        points = cloud_or_points.points
    else:
        points = np.asarray(cloud_or_points, dtype=np.float32)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must form an (N, 3) array")
    if points.shape[0] == 0:
        raise ValueError("cannot build a k-d tree over an empty point set")

    points = np.ascontiguousarray(points, dtype=np.float32)
    stats = KDTreeStats(n_points=points.shape[0])
    leaves: List[LeafNode] = []
    indices = np.arange(points.shape[0], dtype=np.intp)
    root = _build_recursive(points, indices, config, stats, leaves, depth=0)
    return KDTree(points, root, config, stats, leaves)


def _build_recursive(points: np.ndarray, indices: np.ndarray, config: KDTreeConfig,
                     stats: KDTreeStats, leaves: List[LeafNode], depth: int) -> Node:
    stats.max_depth = max(stats.max_depth, depth)
    subset = points[indices].astype(np.float64)
    bbox_min = subset.min(axis=0)
    bbox_max = subset.max(axis=0)

    if indices.shape[0] <= config.max_leaf_size:
        leaf = LeafNode(
            indices=np.array(indices, dtype=np.intp),
            leaf_id=len(leaves),
            bbox_min=bbox_min,
            bbox_max=bbox_max,
        )
        leaves.append(leaf)
        stats.n_leaves += 1
        return leaf

    spread = bbox_max - bbox_min
    split_dim = int(np.argmax(spread))
    values = subset[:, split_dim]
    split_value = float(np.median(values))

    left_mask = values <= split_value
    # Degenerate splits (all values equal, or the median swallowing every
    # point) are resolved by splitting the sorted order in half, which keeps
    # the recursion making progress.
    if left_mask.all() or not left_mask.any():
        order = np.argsort(values, kind="stable")
        half = indices.shape[0] // 2
        left_idx = indices[order[:half]]
        right_idx = indices[order[half:]]
    else:
        left_idx = indices[left_mask]
        right_idx = indices[~left_mask]

    left_values = points[left_idx, split_dim].astype(np.float64)
    right_values = points[right_idx, split_dim].astype(np.float64)
    split_low = float(left_values.max())
    split_high = float(right_values.min())

    left = _build_recursive(points, left_idx, config, stats, leaves, depth + 1)
    right = _build_recursive(points, right_idx, config, stats, leaves, depth + 1)
    stats.n_interior += 1
    return InteriorNode(
        split_dim=split_dim,
        split_value=split_value,
        split_low=split_low,
        split_high=split_high,
        left=left,
        right=right,
        bbox_min=bbox_min,
        bbox_max=bbox_max,
    )
