"""K-nearest-neighbour search over the k-d tree.

Radius search is the paper's target operation, but the same tree serves
nearest-neighbour queries in related Autoware code paths (NDT voxel lookup,
registration correspondences).  The implementation follows the classic
branch-and-bound descent: visit the near child first, keep a bounded max-heap
of the best candidates, and prune the far child when its region cannot beat
the current k-th best distance.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.kernels import leaf_distances2
from .build import KDTree
from .node import Node
from .radius_search import SearchStats

__all__ = ["nearest_neighbors", "nearest_neighbor"]


def nearest_neighbors(
    tree: KDTree,
    query: Sequence[float],
    k: int,
    stats: Optional[SearchStats] = None,
) -> List[Tuple[int, float]]:
    """Return the ``k`` nearest points to ``query`` as ``(index, distance)``.

    Results are sorted by increasing distance.  If the tree holds fewer than
    ``k`` points, all points are returned.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    query_arr = np.asarray(query, dtype=np.float64)
    if query_arr.shape != (3,):
        raise ValueError("query must be a 3D point")
    stats = stats if stats is not None else SearchStats()
    stats.queries += 1

    # Max-heap of (-d2, index); the root is the worst of the current best-k.
    heap: List[Tuple[float, int]] = []

    def worst_d2() -> float:
        if len(heap) < k:
            return float("inf")
        return -heap[0][0]

    def visit(node: Node) -> None:
        if node.is_leaf:
            stats.note_leaf_visit(node.leaf_id)
            points = tree.points_f64[node.indices]
            d2 = leaf_distances2(points, query_arr)
            stats.points_examined += node.n_points
            for point_index, dist2 in zip(node.indices, d2):
                if len(heap) < k:
                    heapq.heappush(heap, (-float(dist2), int(point_index)))
                elif dist2 < worst_d2():
                    heapq.heapreplace(heap, (-float(dist2), int(point_index)))
            return

        stats.interior_visited += 1
        value = query_arr[node.split_dim]
        if value <= node.split_value:
            near, far = node.left, node.right
            far_gap = node.split_high - value
        else:
            near, far = node.right, node.left
            far_gap = value - node.split_low
        visit(near)
        if far_gap * far_gap <= worst_d2():
            visit(far)

    visit(tree.root)
    ordered = sorted(((-neg_d2, idx) for neg_d2, idx in heap))
    return [(idx, float(np.sqrt(d2))) for d2, idx in ordered]


def nearest_neighbor(tree: KDTree, query: Sequence[float],
                     stats: Optional[SearchStats] = None) -> Tuple[int, float]:
    """Return the single nearest point to ``query`` as ``(index, distance)``."""
    result = nearest_neighbors(tree, query, k=1, stats=stats)
    return result[0]
