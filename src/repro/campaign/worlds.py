"""Randomized worlds for the differential-testing campaign.

A campaign *world* is a fully seed-deterministic test case: one registered
scenario, degraded or densified by randomized obstacle density, sensor
resolution, range noise and dropout, plus a randomized mix of query
operations (batched radius searches, kNN batches, short end-to-end pipeline
runs).  :func:`random_world` samples a :class:`WorldSpec` from a single
integer seed; the same seed always produces the same world, the same point
cloud and the same query arrays, so any divergence a campaign finds can be
replayed from the manifest alone.

The spec is plain data (JSON-serialisable via :meth:`WorldSpec.as_dict` /
:meth:`WorldSpec.from_dict`), which is what the campaign manifest stores and
what the shrinker starts from.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..pointcloud.lidar import Lidar, LidarConfig
from ..pointcloud.scene import Scene
from ..scenarios import get_scenario, scenario_names

__all__ = ["QueryOp", "WorldSpec", "random_world"]

#: Query-operation kinds a world may carry.
OP_KINDS = ("radius", "knn", "pipeline", "service")


@dataclass(frozen=True)
class QueryOp:
    """One query operation fired at every backend of a campaign trial.

    ``kind`` selects which fields are meaningful: ``"radius"`` uses
    ``n_queries``/``radius``, ``"knn"`` uses ``n_queries``/``k``,
    ``"pipeline"`` uses ``n_frames`` (a short end-to-end run of the world's
    scenario) and ``"service"`` uses ``n_queries``/``radius``/``k`` (the
    same query batch routed through a shared-memory
    :class:`~repro.serve.store.SharedCloudStore` attach, diffed against the
    process-local reference index).
    """

    kind: str
    n_queries: int = 0
    radius: float = 0.0
    k: int = 0
    n_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; one of {OP_KINDS}")

    def describe(self) -> str:
        """Short human-readable label (used in divergence reports)."""
        if self.kind == "radius":
            return f"radius(n={self.n_queries}, r={self.radius:.3f})"
        if self.kind == "knn":
            return f"knn(n={self.n_queries}, k={self.k})"
        if self.kind == "service":
            return (f"service(n={self.n_queries}, r={self.radius:.3f}, "
                    f"k={self.k})")
        return f"pipeline(frames={self.n_frames})"


@dataclass(frozen=True)
class WorldSpec:
    """A sampled campaign world: scenario + degradations + query mix.

    Everything downstream — the scene, the point cloud, every query array —
    is a pure function of this spec, so two processes holding equal specs
    build bitwise-identical cases.
    """

    seed: int
    scenario: str
    #: Fraction of the scenario's obstacles kept (seeded subset).
    obstacle_keep: float
    n_beams: int
    n_azimuth_steps: int
    range_noise_std: float
    dropout_rate: float
    ops: Tuple[QueryOp, ...]

    # ------------------------------------------------------------------
    # Construction of the concrete case
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        """The world's scene: the scenario's, with a seeded obstacle subset."""
        scene = get_scenario(self.scenario).scene(seed=self.seed)
        if self.obstacle_keep >= 1.0 or not scene.obstacles:
            return scene
        rng = np.random.default_rng(self.seed * 977 + 3)
        mask = rng.random(len(scene.obstacles)) < self.obstacle_keep
        kept = [obstacle for obstacle, keep in zip(scene.obstacles, mask) if keep]
        return Scene(kept, ground_z=scene.ground_z, extent=scene.extent,
                     path_length=scene.path_length)

    def build_cloud(self, scene: Optional[Scene] = None) -> PointCloud:
        """One LiDAR frame of the world (never empty: the ground plane hits).

        The raw scan is used — no clustering pre-filter — because the
        campaign's object under test is the search engines, and the ground
        plane guarantees a non-degenerate cloud at any dropout rate.
        """
        scene = self.build_scene() if scene is None else scene
        lidar = Lidar(LidarConfig(
            n_beams=self.n_beams,
            n_azimuth_steps=self.n_azimuth_steps,
            range_noise_std=self.range_noise_std,
            dropout_rate=self.dropout_rate,
            seed=self.seed * 101,
        ))
        return lidar.scan(scene, t=0.0)

    def op_queries(self, op_index: int, cloud: PointCloud) -> np.ndarray:
        """The query array of ``ops[op_index]`` over ``cloud`` (seeded).

        Queries are cloud points perturbed by seeded Gaussian noise, so they
        land in populated space (radius searches actually hit) while not
        coinciding with indexed points (kNN ties stay interesting).
        """
        op = self.ops[op_index]
        rng = np.random.default_rng(self.seed * 6151 + op_index * 7919 + 11)
        base = cloud.points[rng.integers(0, len(cloud), op.n_queries)]
        return base.astype(np.float64) + rng.normal(0.0, 0.35, base.shape)

    # ------------------------------------------------------------------
    # JSON round-trip (manifest storage)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serialisable form (exact round-trip via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorldSpec":
        ops = tuple(QueryOp(**op) for op in data["ops"])
        return cls(**{**{k: v for k, v in data.items() if k != "ops"},
                      "ops": ops})

    def with_ops(self, ops: Sequence[QueryOp]) -> "WorldSpec":
        """A copy carrying a different op list (used by the shrinker)."""
        return replace(self, ops=tuple(ops))


def random_world(seed: int,
                 scenarios: Optional[Sequence[str]] = None,
                 pipeline_ops: bool = True) -> WorldSpec:
    """Sample a fully deterministic :class:`WorldSpec` from ``seed``.

    The sampler composes the registered scenario library with randomized
    obstacle density (30–100 % of the world's obstacles kept), LiDAR
    resolution (8–20 beams x 60–160 azimuth steps — cloud sizes from a few
    hundred to a few thousand points), range noise (0–12 cm), dropout
    (0–20 %) and one to three query operations.  Pipeline ops (short
    end-to-end runs) are rare and tiny because they cost a full pipeline run
    per backend; ``pipeline_ops=False`` disables them entirely (the
    shrinker's re-sampling path does).  Service ops (shared-store attach
    routing) are capped at one per world because each rebuilds a
    shared-memory store.
    """
    rng = np.random.default_rng(seed)
    names = sorted(scenarios) if scenarios is not None else scenario_names()
    scenario = names[int(rng.integers(0, len(names)))]
    obstacle_keep = float(rng.uniform(0.3, 1.0))
    n_beams = int(rng.integers(8, 21))
    n_azimuth_steps = int(rng.integers(60, 161))
    range_noise_std = float(rng.uniform(0.0, 0.12))
    dropout_rate = float(rng.uniform(0.0, 0.2))

    ops = []
    for _ in range(int(rng.integers(1, 4))):
        roll = float(rng.random())
        if pipeline_ops and roll < 0.15 and not any(
                op.kind == "pipeline" for op in ops):
            ops.append(QueryOp(kind="pipeline", n_frames=2))
        elif roll < 0.30 and not any(op.kind == "service" for op in ops):
            # At most one service op per world: it rebuilds a shared store
            # (one compression pass + shared-memory segments) per trial.
            ops.append(QueryOp(
                kind="service",
                n_queries=int(rng.integers(8, 96)),
                radius=float(rng.uniform(0.3, 1.2)),
                k=int(rng.integers(1, 7)),
            ))
        elif roll < 0.575:
            ops.append(QueryOp(
                kind="radius",
                n_queries=int(rng.integers(8, 120)),
                radius=float(rng.uniform(0.3, 1.5)),
            ))
        else:
            ops.append(QueryOp(
                kind="knn",
                n_queries=int(rng.integers(8, 120)),
                k=int(rng.integers(1, 9)),
            ))
    return WorldSpec(
        seed=seed,
        scenario=scenario,
        obstacle_keep=obstacle_keep,
        n_beams=n_beams,
        n_azimuth_steps=n_azimuth_steps,
        range_noise_std=range_noise_std,
        dropout_rate=dropout_rate,
        ops=tuple(ops),
    )
