"""Differential-testing campaign engine.

Random sampling of worlds, pairwise diffing of every registered execution
backend (plus the recorded hardware wrappers), and automatic shrinking of
any divergence to a minimal pytest-ready reproducer — the parity suite as a
discovery tool rather than a fixed gate.

The three moving parts:

:mod:`repro.campaign.worlds`
    ``random_world(seed)``: seed-deterministic sampling of scenario,
    obstacle density, sensor degradation and query mixes into a JSON-able
    :class:`~repro.campaign.worlds.WorldSpec`.
:mod:`repro.campaign.driver`
    ``run_campaign(CampaignConfig(...))``: fires each world at every
    backend, diffs results/statistics/hardware metrics pairwise and writes
    the campaign's JSON manifest and divergence reports.
:mod:`repro.campaign.shrink`
    ddmin-style reduction of a diverging world (fewer obstacles, points,
    queries) and emission of the minimal case as a pytest regression.

CLI: ``python -m repro campaign --budget 25 --seed 0`` (exit code 1 when
any divergence was found).
"""

from .diff import Divergence
from .driver import CampaignConfig, CampaignResult, run_campaign
from .shrink import ShrunkCase, emit_regression, shrink_divergence
from .worlds import QueryOp, WorldSpec, random_world

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Divergence",
    "QueryOp",
    "ShrunkCase",
    "WorldSpec",
    "emit_regression",
    "random_world",
    "run_campaign",
    "shrink_divergence",
]
