"""Pairwise diffing of backend outputs, statistics and hardware metrics.

Each ``diff_*`` helper compares one pair of quantities the engine layer
declares invariant across backends and returns ``None`` on agreement or a
short human-readable detail string on divergence.  The campaign driver turns
non-``None`` details into :class:`Divergence` records.

What is compared follows the engine's documented contract (see
``tests/test_backend_parity.py``):

* Radius results — ``offsets`` and ``point_indices`` bitwise.
* kNN results — ``indices`` bitwise, ``distances`` exactly (NaN-safe).
* :class:`~repro.kdtree.radius_search.SearchStats` — the functional
  counters (``queries``, ``leaves_visited``, ``interior_visited``,
  ``points_examined``, ``points_in_radius``) and the per-leaf visit
  histogram.  ``point_bytes_loaded`` is *flavor-variant* (compressed leaves
  load fewer bytes) and deliberately not compared.
* :class:`~repro.core.bonsai_search.BonsaiStats` — all counters, but only
  among Bonsai-flavored backends.
* :class:`~repro.hwmodel.cache.HierarchyStats` — all counters, compared
  between two independent recorded runs of the same flavor (the hardware
  model must be deterministic).
* Pipeline metrics — the functional signature only
  (:func:`pipeline_signature`): cluster/track/localization *outcomes*, not
  flavor-variant cost-model numbers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "Divergence",
    "diff_radius",
    "diff_knn",
    "diff_search_stats",
    "diff_bonsai_stats",
    "diff_hierarchy_stats",
    "diff_pipeline_signatures",
    "pipeline_signature",
]

#: SearchStats counters every backend must charge identically.
SEARCH_STAT_FIELDS = ("queries", "leaves_visited", "interior_visited",
                      "points_examined", "points_in_radius")

#: BonsaiStats counters identical across the Bonsai-flavored backends.
BONSAI_STAT_FIELDS = ("leaf_visits", "slices_loaded",
                      "compressed_bytes_loaded", "points_classified",
                      "conclusive_in", "conclusive_out", "inconclusive",
                      "recompute_bytes_loaded", "fallback_leaf_visits")

#: HierarchyStats counters identical between two recorded runs of one flavor.
HIERARCHY_STAT_FIELDS = ("l1_accesses", "l1_misses", "l2_accesses",
                         "l2_misses", "memory_accesses", "loads", "stores",
                         "bytes_loaded", "bytes_stored")


@dataclass
class Divergence:
    """One observed disagreement between two backends on one world."""

    trial: int
    kind: str  # e.g. "radius-hits", "knn", "search-stats", "hardware"
    left: str  # backend (or run) name
    right: str
    op_index: int  # -1 for per-trial aggregates (stats diffs)
    op: str  # human-readable op label ("" for aggregates)
    detail: str
    #: Filled in by the shrinker: size of the minimal reproducing case.
    shrunk: Optional[Dict[str, int]] = None
    #: Path of the generated pytest reproducer, relative to the result dir.
    reproducer: Optional[str] = None

    def as_dict(self) -> dict:
        return asdict(self)


def _first_mismatch(a: np.ndarray, b: np.ndarray) -> str:
    """Index and values of the first differing element (flattened)."""
    if a.shape != b.shape:
        return f"shape {a.shape} != {b.shape}"
    flat_a, flat_b = a.ravel(), b.ravel()
    if flat_a.dtype.kind == "f" or flat_b.dtype.kind == "f":
        same = (flat_a == flat_b) | (np.isnan(flat_a) & np.isnan(flat_b))
    else:
        same = flat_a == flat_b
    where = np.flatnonzero(~same)
    if where.size == 0:
        return "equal"
    i = int(where[0])
    return (f"{where.size} element(s) differ, first at flat index {i}: "
            f"{flat_a[i]!r} != {flat_b[i]!r}")


def diff_radius(a, b) -> Optional[str]:
    """Compare two ``BatchRadiusResult``s bitwise (CSR form)."""
    if not np.array_equal(a.offsets, b.offsets):
        return f"radius offsets: {_first_mismatch(a.offsets, b.offsets)}"
    if not np.array_equal(a.point_indices, b.point_indices):
        return ("radius point_indices: "
                f"{_first_mismatch(a.point_indices, b.point_indices)}")
    return None


def diff_knn(a, b) -> Optional[str]:
    """Compare two ``BatchKNNResult``s bitwise (NaN/inf-safe distances)."""
    if not np.array_equal(a.indices, b.indices):
        return f"knn indices: {_first_mismatch(a.indices, b.indices)}"
    if not np.array_equal(a.distances, b.distances, equal_nan=True):
        return f"knn distances: {_first_mismatch(a.distances, b.distances)}"
    return None


def _diff_fields(a, b, fields) -> Optional[str]:
    for name in fields:
        left, right = getattr(a, name), getattr(b, name)
        if left != right:
            return f"{name}: {left} != {right}"
    return None


def diff_search_stats(a, b) -> Optional[str]:
    """Compare the flavor-invariant ``SearchStats`` counters."""
    detail = _diff_fields(a, b, SEARCH_STAT_FIELDS)
    if detail is not None:
        return f"search stats {detail}"
    if a.leaf_visit_counts != b.leaf_visit_counts:
        return (f"search stats leaf_visit_counts differ "
                f"({len(a.leaf_visit_counts)} vs {len(b.leaf_visit_counts)} "
                "leaves touched)")
    return None


def diff_bonsai_stats(a, b) -> Optional[str]:
    """Compare ``BonsaiStats`` counters (Bonsai-flavored backends only)."""
    detail = _diff_fields(a, b, BONSAI_STAT_FIELDS)
    return None if detail is None else f"bonsai stats {detail}"


def diff_hierarchy_stats(a, b) -> Optional[str]:
    """Compare ``HierarchyStats`` counters of two recorded runs."""
    detail = _diff_fields(a, b, HIERARCHY_STAT_FIELDS)
    return None if detail is None else f"hardware stats {detail}"


def pipeline_signature(metrics: Dict[str, object]) -> Dict[str, object]:
    """The backend-invariant functional signature of pipeline metrics.

    Keeps the outcome quantities every backend must reproduce exactly and
    drops the flavor-variant ones: ``use_bonsai`` (identity, not outcome),
    ``cluster_bonsai`` (only Bonsai runs carry it), the cost-``model`` block,
    ``cluster_search.point_bytes_loaded`` (compressed leaves load fewer
    bytes) and the localization cost fields.
    """
    search = dict(metrics["cluster_search"])
    search.pop("point_bytes_loaded", None)
    signature: Dict[str, object] = {
        key: metrics[key]
        for key in ("scenario", "n_frames", "frame_indices",
                    "raw_points_total", "filtered_points_total",
                    "clusters_total", "detections_kept_total",
                    "confirmed_tracks_final", "tracks_spawned",
                    "track_labels")
        if key in metrics
    }
    signature["cluster_search"] = search
    localization = metrics.get("localization")
    if isinstance(localization, dict):
        signature["localization"] = {
            key: localization[key]
            for key in ("n_scans", "mean_error_m", "max_error_m",
                        "iterations_total")
            if key in localization
        }
    return signature


def diff_pipeline_signatures(a: Dict[str, object],
                             b: Dict[str, object]) -> Optional[str]:
    """Compare two :func:`pipeline_signature` dicts key by key."""
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if left != right:
            return f"pipeline {key}: {left!r} != {right!r}"
    return None
