"""Divergence shrinking: bisect a failing world to a minimal reproducer.

When the campaign driver observes two backends disagreeing on a world, the
raw case is typically thousands of points and dozens of queries — far too
big to reason about.  :func:`shrink_divergence` applies delta debugging
(ddmin, Zeller & Hildebrandt) along the world's natural axes, in order of
decreasing granularity:

1. **Obstacles** — rebuild the cloud from scene-obstacle subsets; a
   divergence that survives with three boxes instead of thirty pins the
   geometry.
2. **Points** — drop indexed points directly (the cloud no longer needs to
   be a plausible LiDAR frame once the obstacle stage is done).
3. **Queries** — drop query rows; most divergences reproduce with one.

Every stage keeps the invariant "the reduced case still diverges", checked
by re-running *fresh* backends of the diverging pair, so the result is a
true minimal-ish reproducing case (1-minimal per stage, up to the
evaluation budget).  The shrunk case is emitted as a self-contained,
ready-to-paste pytest regression embedding the exact arrays
(:func:`emit_regression`) — float32 points and float64 queries round-trip
exactly through ``repr``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from .worlds import QueryOp, WorldSpec

__all__ = ["ShrinkBudget", "ShrunkCase", "shrink_divergence", "emit_regression"]


class ShrinkBudget:
    """Mutable evaluation budget shared across shrink stages.

    One unit is one predicate evaluation (tree build + paired backend run).
    """

    def __init__(self, max_evals: int = 200):
        self.max_evals = max_evals
        self.used = 0

    @property
    def remaining(self) -> int:
        return max(0, self.max_evals - self.used)

    def spend(self) -> bool:
        """Consume one evaluation; ``False`` when the budget is exhausted."""
        if self.used >= self.max_evals:
            return False
        self.used += 1
        return True


class ShrunkCase:
    """The minimal reproducing case a shrink run converged to."""

    def __init__(self, points: np.ndarray, queries: np.ndarray, op: QueryOp,
                 evals_used: int):
        self.points = points
        self.queries = queries
        self.op = op
        self.evals_used = evals_used

    def sizes(self) -> dict:
        """JSON-friendly size summary (stored on the divergence record)."""
        return {"n_points": int(self.points.shape[0]),
                "n_queries": int(self.queries.shape[0]),
                "evals_used": int(self.evals_used)}


def _ddmin(n: int, fails: Callable[[np.ndarray], bool],
           budget: ShrinkBudget) -> List[int]:
    """Classic ddmin over index subsets of ``range(n)``.

    ``fails(indices)`` must be ``True`` for ``arange(n)`` (the caller
    verified the full case diverges).  Returns a 1-minimal (up to budget)
    index subset on which ``fails`` still holds.
    """
    current = list(range(n))
    granularity = 2
    while len(current) >= 2 and budget.remaining > 0:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and budget.remaining > 0:
            candidate = current[:start] + current[start + chunk:]
            if candidate and budget.spend() and fails(np.asarray(candidate)):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_divergence(
    world: WorldSpec,
    op_index: int,
    points: np.ndarray,
    queries: np.ndarray,
    diverges: Callable[[np.ndarray, np.ndarray], bool],
    max_evals: int = 200,
) -> Optional[ShrunkCase]:
    """Reduce ``(points, queries)`` to a minimal case on which the pair of
    backends still diverges.

    ``diverges(points, queries)`` re-runs fresh backends and reports whether
    the divergence persists; it must be ``True`` on the input case (the
    driver only calls the shrinker for observed divergences — if the
    divergence turns out not to reproduce on fresh backends, ``None`` is
    returned and the raw case is reported unshrunk).
    """
    op = world.ops[op_index]
    budget = ShrinkBudget(max_evals)
    if not budget.spend() or not diverges(points, queries):
        return None

    # Stage 1: obstacles.  Rebuild the cloud from scene-obstacle subsets and
    # re-derive the op's queries; accept a subset only if it still diverges.
    scene = world.build_scene()
    if len(scene.obstacles) > 1:
        from ..pointcloud.scene import Scene

        def cloud_of(obstacle_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            subset = Scene([scene.obstacles[i] for i in obstacle_indices],
                           ground_z=scene.ground_z, extent=scene.extent,
                           path_length=scene.path_length)
            cloud = world.build_cloud(subset)
            return cloud.points, world.op_queries(op_index, cloud)

        def obstacle_fails(obstacle_indices: np.ndarray) -> bool:
            sub_points, sub_queries = cloud_of(obstacle_indices)
            return diverges(sub_points, sub_queries)

        kept = _ddmin(len(scene.obstacles), obstacle_fails, budget)
        if len(kept) < len(scene.obstacles):
            points, queries = cloud_of(np.asarray(kept))

    # Stage 2: points (raw rows; the case need not stay a LiDAR frame).
    if points.shape[0] > 1:
        def point_fails(point_indices: np.ndarray) -> bool:
            return diverges(points[point_indices], queries)

        kept = _ddmin(points.shape[0], point_fails, budget)
        points = points[np.asarray(kept)]

    # Stage 3: queries.
    if queries.shape[0] > 1:
        def query_fails(query_indices: np.ndarray) -> bool:
            return diverges(points, queries[query_indices])

        kept = _ddmin(queries.shape[0], query_fails, budget)
        queries = queries[np.asarray(kept)]

    return ShrunkCase(points, queries, op, budget.used)


# ----------------------------------------------------------------------
# Reproducer emission
# ----------------------------------------------------------------------
def _array_literal(array: np.ndarray, dtype: str) -> str:
    """An exact-round-trip ``np.array([...], dtype=...)`` source literal.

    ``tolist()`` yields Python floats that are exactly the array's values
    (float32 widens losslessly to float64), and ``repr`` of a Python float
    round-trips exactly, so re-parsing reproduces the array bitwise.
    """
    rows = ",\n    ".join(
        "[" + ", ".join(repr(float(v)) for v in row) + "]"
        for row in array.tolist())
    return f"np.array([\n    {rows},\n], dtype=np.{dtype})"


def _assertion_block(kind: str, op: QueryOp) -> str:
    """The pytest assertion body for a divergence ``kind``."""
    if kind in ("service-hits", "service-knn"):
        # LEFT is "service:<backend>": replay the query through a fresh
        # shared-store attach on that backend vs RIGHT on the local tree.
        if kind == "service-hits":
            call = f"radius_search(QUERIES, {op.radius!r})"
            checks = (
                "    assert np.array_equal(left.offsets, right.offsets)\n"
                "    assert np.array_equal(left.point_indices, "
                "right.point_indices)")
        else:
            call = f"knn(QUERIES, {op.k})"
            checks = (
                "    assert np.array_equal(left.indices, right.indices)\n"
                "    assert np.array_equal(left.distances, right.distances, "
                "equal_nan=True)")
        return f"""\
    backend = LEFT.split(":", 1)[1]
    with SharedCloudStore.create(POINTS) as store, \\
            SharedCloudStore.attach(store.name) as client:
        with client.index() as served:
            left = served.backend(backend).{call}
    right = get_backend(RIGHT, tree).{call}
{checks}"""
    if op.kind == "radius":
        call = f"radius_search(QUERIES, {op.radius!r})"
    else:
        call = f"knn(QUERIES, {op.k})"
    if kind == "search-stats":
        return f"""\
    left_stats, right_stats = SearchStats(), SearchStats()
    get_backend(LEFT, tree, stats=left_stats).{call}
    get_backend(RIGHT, tree, stats=right_stats).{call}
    for counter in ("queries", "leaves_visited", "interior_visited",
                    "points_examined", "points_in_radius"):
        assert getattr(left_stats, counter) == getattr(right_stats, counter), counter
    assert left_stats.leaf_visit_counts == right_stats.leaf_visit_counts"""
    if op.kind == "radius":
        return f"""\
    left = get_backend(LEFT, tree).{call}
    right = get_backend(RIGHT, tree).{call}
    assert np.array_equal(left.offsets, right.offsets)
    assert np.array_equal(left.point_indices, right.point_indices)"""
    return f"""\
    left = get_backend(LEFT, tree).{call}
    right = get_backend(RIGHT, tree).{call}
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.distances, right.distances, equal_nan=True)"""


def emit_regression(case: ShrunkCase, *, kind: str, left: str, right: str,
                    world: WorldSpec, trial: int) -> str:
    """Render the shrunk case as a self-contained pytest regression.

    The generated module imports only public ``repro`` API, embeds the
    minimal arrays verbatim and asserts the exact invariant that was
    violated — paste it into ``tests/`` (or run it standalone with pytest)
    and it fails until the divergence is fixed.
    """
    test_name = f"test_campaign_trial{trial}_{kind.replace('-', '_')}"
    needs_stats = kind == "search-stats"
    stats_import = ("\nfrom repro.kdtree import SearchStats, build_kdtree"
                    if needs_stats else "\nfrom repro.kdtree import build_kdtree")
    if kind.startswith("service"):
        stats_import += "\nfrom repro.serve import SharedCloudStore"
    return f'''"""Auto-generated by `repro campaign` — minimal divergence reproducer.

campaign trial {trial}: {left!r} vs {right!r} diverged on {kind!r}
world: scenario={world.scenario!r} seed={world.seed} op={case.op.describe()}
shrunk to {case.points.shape[0]} points x {case.queries.shape[0]} queries
({case.evals_used} shrink evaluations)
"""

import numpy as np

from repro.engine import get_backend{stats_import}

LEFT = {left!r}
RIGHT = {right!r}

POINTS = {_array_literal(case.points, "float32")}

QUERIES = {_array_literal(case.queries, "float64")}


def {test_name}():
    tree = build_kdtree(POINTS)
{_assertion_block(kind, case.op)}
'''
