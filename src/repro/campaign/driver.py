"""Campaign driver: fire randomized worlds at every backend, diff, shrink.

One campaign = ``budget`` seed-derived worlds (:func:`~repro.campaign.worlds
.random_world`), each fired at every selected backend plus — per flavor —
two independent ``recorded(...)`` hardware wrappers.  Per trial the driver
diffs, pairwise against the reference backend:

* every op's results (radius hits / kNN neighbours, bitwise),
* the recorded wrappers' functional results (must equal the reference
  bitwise) and their two hardware traces against each other (the cache
  model must be deterministic),
* the per-trial aggregated ``SearchStats`` (flavor-invariant counters),
  ``BonsaiStats`` (among Bonsai backends) and the pipeline ops' functional
  metric signatures,
* service ops: the same query batch routed through a shared-memory
  :class:`~repro.serve.store.SharedCloudStore` attach (every backend over
  the attached tree) against the process-local reference index.

Any divergence becomes a :class:`~repro.campaign.diff.Divergence` record in
the campaign's JSON manifest; radius/kNN/stats divergences are additionally
shrunk (:mod:`repro.campaign.shrink`) to a minimal case and emitted as a
ready-to-paste pytest regression next to the manifest.

The whole campaign is deterministic: same seed + budget + backend list →
bitwise-identical manifest (no timestamps, no wall-clock anywhere).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..engine import PointCloudIndex, backend_names, get_backend, recorded
from ..kdtree.build import build_kdtree
from ..kdtree.radius_search import SearchStats
from .diff import (
    Divergence,
    diff_bonsai_stats,
    diff_hierarchy_stats,
    diff_knn,
    diff_pipeline_signatures,
    diff_radius,
    diff_search_stats,
    pipeline_signature,
)
from .shrink import emit_regression, shrink_divergence
from .worlds import QueryOp, WorldSpec, random_world

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]

#: Multiplier deriving per-trial world seeds from the campaign seed.
TRIAL_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one differential-testing campaign."""

    #: Number of randomized worlds to sample and test.
    budget: int = 25
    #: Campaign seed; trial ``i`` uses world seed ``seed*STRIDE + i``.
    seed: int = 0
    #: Backends under test (``None``: every registered backend).
    backends: Optional[Sequence[str]] = None
    #: Directory campaign result dirs are created under.
    out_dir: Path = Path("campaign-results")
    #: Restrict sampled worlds to these scenarios (``None``: all registered).
    scenarios: Optional[Sequence[str]] = None
    #: Also run the per-flavor recorded hardware wrappers and diff them.
    recorded: bool = True
    #: Shrink divergences to minimal pytest reproducers.
    shrink: bool = True
    #: Evaluation budget of each shrink run (tree builds + backend pairs).
    max_shrink_evals: int = 200

    def resolved_backends(self) -> List[str]:
        names = list(self.backends) if self.backends else backend_names()
        for name in names:
            if name not in backend_names():
                known = ", ".join(backend_names())
                raise KeyError(
                    f"unknown backend {name!r}; registered: {known}")
        return names

    def reference_backend(self) -> str:
        """The diff reference: ``baseline-batched`` when selected, else the
        first selected backend."""
        names = self.resolved_backends()
        return "baseline-batched" if "baseline-batched" in names else names[0]


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`."""

    config: CampaignConfig
    result_dir: Path
    trials: List[dict] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def n_divergences(self) -> int:
        return len(self.divergences)

    @property
    def manifest_path(self) -> Path:
        return self.result_dir / "manifest.json"


def _close_backend(backend) -> None:
    close = getattr(backend, "close", None)
    if close is not None:
        close()


def _result_divergence_check(kind: str, op: QueryOp, left: str,
                             right: str) -> Callable[[np.ndarray, np.ndarray], bool]:
    """The shrinker predicate: does the pair still diverge on this case?

    Every evaluation builds a fresh tree and fresh backends with fresh
    statistics, so shrink evaluations can never contaminate each other (or
    the campaign's own accumulated counters).
    """

    def diverges(points: np.ndarray, queries: np.ndarray) -> bool:
        if points.shape[0] == 0 or queries.shape[0] == 0:
            return False
        tree = build_kdtree(points)
        left_stats, right_stats = SearchStats(), SearchStats()
        left_backend = get_backend(left, tree, stats=left_stats)
        right_backend = get_backend(right, tree, stats=right_stats)
        try:
            if op.kind == "radius":
                left_result = left_backend.radius_search(queries, op.radius)
                right_result = right_backend.radius_search(queries, op.radius)
                result_detail = diff_radius(left_result, right_result)
            else:
                result_detail = diff_knn(left_backend.knn(queries, op.k),
                                         right_backend.knn(queries, op.k))
            if kind == "search-stats":
                return diff_search_stats(left_stats, right_stats) is not None
            return result_detail is not None
        finally:
            _close_backend(left_backend)
            _close_backend(right_backend)

    return diverges


def _service_divergence_check(kind: str, op: QueryOp, left: str,
                              right: str) -> Callable[[np.ndarray, np.ndarray], bool]:
    """Shrinker predicate for ``service-*`` kinds.

    ``left`` is ``"service:<backend>"``: the query runs through a fresh
    shared-store attach on that backend and is diffed against ``right`` on a
    fresh process-local index.
    """
    backend = left.split(":", 1)[1]

    def diverges(points: np.ndarray, queries: np.ndarray) -> bool:
        if points.shape[0] == 0 or queries.shape[0] == 0:
            return False
        from ..serve import SharedCloudStore

        with PointCloudIndex(build_kdtree(points)) as local, \
                SharedCloudStore.create(points) as store, \
                SharedCloudStore.attach(store.name) as client:
            with client.index() as served:
                if kind == "service-hits":
                    detail = diff_radius(
                        served.radius_search(queries, op.radius,
                                             backend=backend),
                        local.radius_search(queries, op.radius,
                                            backend=right))
                else:
                    detail = diff_knn(
                        served.knn(queries, op.k, backend=backend),
                        local.knn(queries, op.k, backend=right))
        return detail is not None

    return diverges


def _run_pipeline_op(world: WorldSpec, op: QueryOp, backend: str) -> dict:
    """One short end-to-end run of the world's scenario through ``backend``."""
    from ..engine import ExecutionConfig
    from ..workloads import PipelineRunner, PipelineRunnerConfig

    config = PipelineRunnerConfig(
        execution=ExecutionConfig(backend=backend), localization=False)
    runner = PipelineRunner.from_scenario(
        world.scenario, config=config, n_frames=op.n_frames, seed=world.seed,
        n_beams=world.n_beams, n_azimuth_steps=world.n_azimuth_steps)
    return pipeline_signature(runner.run().metrics())


def _run_trial(
    trial: int, world: WorldSpec, config: CampaignConfig,
    backends: Sequence[str], reference: str,
) -> Tuple[dict, List[Divergence], Dict[str, str]]:
    """Run one world through every backend; return (record, divergences)."""
    divergences: List[Divergence] = []
    cloud = world.build_cloud()
    index = PointCloudIndex(build_kdtree(cloud.points))
    others = [name for name in backends if name != reference]

    search_ops = [(i, op) for i, op in enumerate(world.ops)
                  if op.kind in ("radius", "knn")]
    pipeline_ops = [(i, op) for i, op in enumerate(world.ops)
                    if op.kind == "pipeline"]

    # --- Result diffs, op by op -----------------------------------------
    # Radius ops run first so the aggregated-stats diff below sees radius
    # traffic only: radius traversal counters are flavor- and
    # strategy-invariant (the engine contract), kNN traversal counters are
    # not (per-query and batched kNN prune in different orders).
    radius_ops = [(i, op) for i, op in search_ops if op.kind == "radius"]
    knn_ops = [(i, op) for i, op in search_ops if op.kind == "knn"]
    query_arrays: Dict[int, np.ndarray] = {}
    reference_results: Dict[int, object] = {}
    for op_index, op in search_ops:
        query_arrays[op_index] = world.op_queries(op_index, cloud)
    for op_index, op in radius_ops:
        queries = query_arrays[op_index]
        ref = index.radius_search(queries, op.radius, backend=reference)
        reference_results[op_index] = ref
        for name in others:
            detail = diff_radius(
                index.radius_search(queries, op.radius, backend=name), ref)
            if detail is not None:
                divergences.append(Divergence(
                    trial=trial, kind="radius-hits", left=name,
                    right=reference, op_index=op_index,
                    op=op.describe(), detail=detail))

    # --- Aggregated radius statistics (before any kNN traffic) ----------
    if radius_ops:
        ref_stats = index.backend(reference).stats
        for name in others:
            detail = diff_search_stats(index.backend(name).stats, ref_stats)
            if detail is not None:
                divergences.append(Divergence(
                    trial=trial, kind="search-stats", left=name,
                    right=reference, op_index=-1, op="", detail=detail))
        bonsai = [name for name in backends if name.startswith("bonsai-")]
        if len(bonsai) > 1:
            ref_bonsai = index.backend(bonsai[0]).bonsai_stats or BonsaiStats()
            for name in bonsai[1:]:
                stats = index.backend(name).bonsai_stats or BonsaiStats()
                detail = diff_bonsai_stats(stats, ref_bonsai)
                if detail is not None:
                    divergences.append(Divergence(
                        trial=trial, kind="bonsai-stats", left=name,
                        right=bonsai[0], op_index=-1, op="", detail=detail))

    for op_index, op in knn_ops:
        queries = query_arrays[op_index]
        ref = index.knn(queries, op.k, backend=reference)
        reference_results[op_index] = ref
        for name in others:
            detail = diff_knn(index.knn(queries, op.k, backend=name), ref)
            if detail is not None:
                divergences.append(Divergence(
                    trial=trial, kind="knn", left=name, right=reference,
                    op_index=op_index, op=op.describe(), detail=detail))

    # --- Service ops: shared-store attach vs the local reference --------
    # One shared store per op (created from the same cloud), attached the
    # way a client process would; every backend then answers the op's batch
    # over the attached tree and must match the local reference bitwise.
    service_ops = [(i, op) for i, op in enumerate(world.ops)
                   if op.kind == "service"]
    for op_index, op in service_ops:
        from ..serve import SharedCloudStore

        queries = world.op_queries(op_index, cloud)
        query_arrays[op_index] = queries
        ref_radius = index.radius_search(queries, op.radius, backend=reference)
        ref_knn = index.knn(queries, op.k, backend=reference)
        with SharedCloudStore.create(cloud.points) as store, \
                SharedCloudStore.attach(store.name) as client:
            with client.index() as served:
                for name in backends:
                    detail = diff_radius(
                        served.radius_search(queries, op.radius,
                                             backend=name), ref_radius)
                    if detail is not None:
                        divergences.append(Divergence(
                            trial=trial, kind="service-hits",
                            left=f"service:{name}", right=reference,
                            op_index=op_index, op=op.describe(),
                            detail=detail))
                    detail = diff_knn(
                        served.knn(queries, op.k, backend=name), ref_knn)
                    if detail is not None:
                        divergences.append(Divergence(
                            trial=trial, kind="service-knn",
                            left=f"service:{name}", right=reference,
                            op_index=op_index, op=op.describe(),
                            detail=detail))

    # --- Recorded hardware wrappers, per flavor -------------------------
    if config.recorded and search_ops:
        flavors = sorted({name.split("-", 1)[0] for name in backends
                          if f"{name.split('-', 1)[0]}-perquery" in backend_names()})
        for flavor in flavors:
            base = index.backend(f"{flavor}-perquery")
            wrapped_a, wrapped_b = recorded(base), recorded(base)
            for op_index, op in search_ops:
                queries = query_arrays[op_index]
                ref = reference_results[op_index]
                if op.kind == "radius":
                    got_a = wrapped_a.radius_search(queries, op.radius)
                    got_b = wrapped_b.radius_search(queries, op.radius)
                    detail = diff_radius(got_a, ref) or diff_radius(got_b, ref)
                else:
                    got_a = wrapped_a.knn(queries, op.k)
                    got_b = wrapped_b.knn(queries, op.k)
                    detail = diff_knn(got_a, ref) or diff_knn(got_b, ref)
                if detail is not None:
                    divergences.append(Divergence(
                        trial=trial, kind="recorded-functional",
                        left=f"recorded({flavor})", right=reference,
                        op_index=op_index, op=op.describe(),
                        detail=f"hardware wrapper changed results: {detail}"))
            detail = diff_hierarchy_stats(wrapped_a.hierarchy,
                                          wrapped_b.hierarchy)
            if detail is not None:
                divergences.append(Divergence(
                    trial=trial, kind="hardware",
                    left=f"recorded({flavor})#a", right=f"recorded({flavor})#b",
                    op_index=-1, op="",
                    detail=f"cache model nondeterministic: {detail}"))

    # --- Pipeline ops: functional metric signatures ---------------------
    for op_index, op in pipeline_ops:
        ref_signature = _run_pipeline_op(world, op, reference)
        for name in others:
            detail = diff_pipeline_signatures(
                _run_pipeline_op(world, op, name), ref_signature)
            if detail is not None:
                divergences.append(Divergence(
                    trial=trial, kind="pipeline", left=name, right=reference,
                    op_index=op_index, op=op.describe(), detail=detail))

    index.close()

    # --- Shrink result/stats divergences to minimal reproducers ---------
    reproducers: Dict[str, str] = {}
    if config.shrink:
        for divergence in divergences:
            if divergence.kind not in ("radius-hits", "knn", "search-stats",
                                       "service-hits", "service-knn"):
                continue
            op_index = divergence.op_index
            if op_index < 0 and radius_ops:
                # Stats diverged at trial level; shrink against the first
                # radius op (fresh backends re-run just that op).
                op_index = radius_ops[0][0]
            if op_index < 0:
                continue
            op = world.ops[op_index]
            if divergence.kind.startswith("service"):
                check = _service_divergence_check(
                    divergence.kind, op, divergence.left, divergence.right)
            else:
                check = _result_divergence_check(
                    divergence.kind, op, divergence.left, divergence.right)
            case = shrink_divergence(
                world, op_index, cloud.points, query_arrays[op_index],
                check, max_evals=config.max_shrink_evals)
            if case is not None:
                divergence.shrunk = case.sizes()
                divergence.reproducer = (
                    f"repro_trial{trial}_{divergence.kind.replace('-', '_')}.py")
                reproducers[divergence.reproducer] = emit_regression(
                    case, kind=divergence.kind, left=divergence.left,
                    right=divergence.right, world=world, trial=trial)

    record = {
        "trial": trial,
        "world": world.as_dict(),
        "n_points": int(len(cloud)),
        "divergences": [d.as_dict() for d in divergences],
    }
    return record, divergences, reproducers


def run_campaign(config: CampaignConfig,
                 log: Optional[Callable[[str], None]] = None) -> CampaignResult:
    """Run the campaign and write its structured result directory.

    The result dir is ``out_dir/campaign-seed<seed>/`` and contains
    ``manifest.json`` (seed, backends, every trial's world spec and
    divergence reports) plus one generated pytest reproducer per shrunk
    divergence.  Returns the in-memory :class:`CampaignResult`.
    """
    backends = config.resolved_backends()
    reference = config.reference_backend()
    result_dir = Path(config.out_dir) / f"campaign-seed{config.seed}"
    result_dir.mkdir(parents=True, exist_ok=True)
    result = CampaignResult(config=config, result_dir=result_dir)

    say = log or (lambda message: None)
    for trial in range(config.budget):
        world = random_world(config.seed * TRIAL_SEED_STRIDE + trial,
                             scenarios=config.scenarios)
        record, divergences, reproducers = _run_trial(
            trial, world, config, backends, reference)
        result.trials.append(record)
        result.divergences.extend(divergences)
        if divergences:
            say(f"trial {trial}: {len(divergences)} divergence(s) "
                f"on {world.scenario} (seed {world.seed})")
            _write_divergence_artifacts(result_dir, trial, world,
                                        divergences, reproducers)
        else:
            say(f"trial {trial}: ok ({world.scenario}, "
                f"{record['n_points']} points, {len(world.ops)} op(s))")

    manifest = {
        "campaign": {
            "seed": config.seed,
            "budget": config.budget,
            "backends": list(backends),
            "reference": reference,
            "recorded": config.recorded,
            "scenarios": (list(config.scenarios)
                          if config.scenarios is not None else None),
        },
        "n_divergences": result.n_divergences,
        "trials": result.trials,
    }
    result.manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return result


def _write_divergence_artifacts(result_dir: Path, trial: int,
                                world: WorldSpec,
                                divergences: List[Divergence],
                                reproducers: Dict[str, str]) -> None:
    """Per-trial divergence report plus the shrunk pytest reproducers."""
    report = {
        "trial": trial,
        "world": world.as_dict(),
        "divergences": [d.as_dict() for d in divergences],
    }
    (result_dir / f"divergence-trial{trial}.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    for filename, source in reproducers.items():
        (result_dir / filename).write_text(source, encoding="utf-8")
