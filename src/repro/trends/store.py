"""Per-metric-family JSONL trend store with deterministic sort/merge.

One store is one directory (``benchmarks/trends/`` in this repository);
each metric family lives in one ``<family>.jsonl`` file, one canonical
JSON record per line.  :meth:`TrendStore.append` merges new records into
the family file **deterministically**: the union of existing and new
records is deduplicated on the canonical JSON form and rewritten in
:meth:`~repro.trends.schema.TrendRecord.sort_key` order, so the file's
bytes depend only on the set of records it holds — never on append order,
process interleaving or wall-clock.  Appending the same records twice is
a no-op by construction.

Loading applies the schema migration chain
(:func:`~repro.trends.schema.migrate`), so a store written by an older
tree reads cleanly in a newer one.  Every error path raises
:class:`TrendStoreError` with the file and line it happened on and what
to do about it — the CLI surfaces these verbatim instead of a traceback.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .schema import TrendRecord, TrendSchemaError

__all__ = ["TrendStore", "TrendStoreError"]


class TrendStoreError(RuntimeError):
    """A trend-store operation failed; the message says how to fix it."""


class TrendStore:
    """A directory of per-family JSONL trend histories."""

    def __init__(self, root: Path):
        self.root = Path(root)

    # -- layout ------------------------------------------------------------

    def family_path(self, family: str) -> Path:
        """The JSONL file of one metric family."""
        return self.root / f"{family}.jsonl"

    def families(self) -> List[str]:
        """Sorted names of the families present in the store."""
        if not self.root.is_dir():
            raise TrendStoreError(
                f"trends store directory {self.root} does not exist — "
                f"record some runs first (set REPRO_TRENDS_DIR while running "
                f"the benchmarks, or use `repro trends record`)")
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    # -- reading -----------------------------------------------------------

    def load(self, family: str) -> List[TrendRecord]:
        """All records of one family, in deterministic sort order."""
        path = self.family_path(family)
        if not path.is_file():
            known = self.families()
            listing = ", ".join(known) if known else "none recorded yet"
            raise TrendStoreError(
                f"unknown metric family {family!r} in {self.root} "
                f"(available: {listing})")
        records = []
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = TrendRecord.from_json(line)
            except TrendSchemaError as exc:
                raise TrendStoreError(
                    f"{path}:{lineno}: malformed trend record ({exc}) — "
                    f"fix or delete the line, or regenerate the store")
            if record.family != family:
                raise TrendStoreError(
                    f"{path}:{lineno}: record of family {record.family!r} "
                    f"in the {family!r} store file — the line was written "
                    f"by hand; move it to {record.family}.jsonl")
            records.append(record)
        return sorted(records, key=TrendRecord.sort_key)

    def all_records(self) -> List[TrendRecord]:
        """Every record of every family, family-major deterministic order."""
        records: List[TrendRecord] = []
        for family in self.families():
            records.extend(self.load(family))
        return records

    def runs(self, family: Optional[str] = None) -> List[Tuple[int, str, str]]:
        """Distinct ``(order, commit, run_id)`` identities, sorted.

        The dashboard's x-axis: one entry per recorded run, ordered by the
        caller-provided sequence number first.
        """
        families = [family] if family is not None else self.families()
        seen: Dict[Tuple[int, str, str], None] = {}
        for name in families:
            for record in self.load(name):
                seen.setdefault((record.order, record.commit, record.run_id),
                                None)
        return sorted(seen)

    # -- writing -----------------------------------------------------------

    def append(self, records: Iterable[TrendRecord]) -> List[Path]:
        """Merge records into their family files; return the paths touched.

        Per family the file is rewritten as the deduplicated union of its
        existing and the new records in canonical sort order — append order
        can never reach the bytes on disk.
        """
        by_family: Dict[str, List[TrendRecord]] = {}
        for record in records:
            by_family.setdefault(record.family, []).append(record)
        self.root.mkdir(parents=True, exist_ok=True)
        touched = []
        for family in sorted(by_family):
            path = self.family_path(family)
            merged = {r.to_json(): r
                      for r in (self.load(family) if path.is_file() else [])}
            for record in by_family[family]:
                merged[record.to_json()] = record
            ordered = sorted(merged.values(), key=TrendRecord.sort_key)
            path.write_text(
                "".join(record.to_json() + "\n" for record in ordered),
                encoding="utf-8")
            touched.append(path)
        return touched

    # -- convenience -------------------------------------------------------

    def records_of_commit(self, commit: str,
                          families: Optional[Sequence[str]] = None,
                          ) -> List[TrendRecord]:
        """All records of one commit across the selected families."""
        names = list(families) if families is not None else self.families()
        out: List[TrendRecord] = []
        for family in names:
            out.extend(r for r in self.load(family) if r.commit == commit)
        return out

    def latest_commit(self) -> Optional[str]:
        """The commit of the newest run (max ``(order, commit, run_id)``)."""
        runs = self.runs()
        if not runs:
            return None
        return runs[-1][1]
