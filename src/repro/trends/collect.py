"""Adapters: existing sweep/benchmark/campaign results -> trend records.

Nothing in this module runs a pipeline, a sweep or a campaign — every
collector takes an **already computed** result object (or an artifact
already on disk: a campaign manifest, a golden snapshot) and reshapes it
into :class:`~repro.trends.schema.TrendRecord` rows.  The caller supplies
the run identity (commit, run id, sequence number); the collectors never
read the clock or the git tree.

The benchmark scripts wire these in behind the ``REPRO_TRENDS_DIR`` knob:
:func:`maybe_record` is a no-op unless that variable is set, in which case
the records land next to the rendered ``benchmarks/results/*.txt`` table —
same numbers, machine-readable, keyed by commit.  Reading the environment
is this module's one named determinism exception (see
``repro.lint.rules_determinism.ENV_READ_ALLOWED``): the knob selects
*where records are persisted*, never what any benchmark computes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from math import isfinite
from pathlib import Path
from typing import (Callable, Dict, List, Mapping, Optional, Sequence)

from .schema import MetricValue, TrendRecord
from .store import TrendStore

__all__ = [
    "FAMILY_CACHE_SENSITIVITY",
    "FAMILY_CAMPAIGN",
    "FAMILY_GOLDEN_HARDWARE",
    "FAMILY_GOLDEN_PIPELINE",
    "FAMILY_MAP_SCALE",
    "FAMILY_SCENARIO_HW",
    "FAMILY_SCENARIO_MATRIX",
    "FAMILY_SERVING_LOAD",
    "KNOWN_FAMILIES",
    "TrendContext",
    "collect_cache_sweep",
    "collect_campaign_manifest",
    "collect_golden_snapshots",
    "collect_hw_sweep",
    "collect_map_scale",
    "collect_pipeline_run",
    "collect_serving_load",
    "flatten_metrics",
    "maybe_record",
    "trend_context",
]

FAMILY_SCENARIO_MATRIX = "scenario-matrix"
FAMILY_SCENARIO_HW = "scenario-hw"
FAMILY_CACHE_SENSITIVITY = "cache-sensitivity"
FAMILY_MAP_SCALE = "map-scale"
FAMILY_SERVING_LOAD = "serving-load"
FAMILY_CAMPAIGN = "campaign"
FAMILY_GOLDEN_PIPELINE = "golden-pipeline"
FAMILY_GOLDEN_HARDWARE = "golden-hardware"

#: Every family a shipped collector writes, in documentation order
#: (``docs/TRENDS.md`` catalogs these; the docs lockdown keeps them in sync).
KNOWN_FAMILIES = (
    FAMILY_SCENARIO_MATRIX,
    FAMILY_SCENARIO_HW,
    FAMILY_CACHE_SENSITIVITY,
    FAMILY_MAP_SCALE,
    FAMILY_SERVING_LOAD,
    FAMILY_CAMPAIGN,
    FAMILY_GOLDEN_PIPELINE,
    FAMILY_GOLDEN_HARDWARE,
)


def flatten_metrics(mapping: Mapping, prefix: str = "") -> Dict[str, MetricValue]:
    """Flatten a nested metrics mapping into dotted finite numeric leaves.

    Dict values recurse with a ``.``-joined prefix; finite ints and floats
    are kept (bools are not numbers here); everything else — strings,
    lists, ``None``, NaN — is dropped.  The result is exactly the scalar
    surface a trend line can be drawn through.
    """
    flat: Dict[str, MetricValue] = {}
    for name in sorted(mapping):
        value = mapping[name]
        dotted = f"{prefix}{name}"
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{dotted}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, int):
            flat[dotted] = value
        elif isinstance(value, float) and isfinite(value):
            flat[dotted] = value
    return flat


def collect_pipeline_run(metrics: Mapping, *, scenario: str, backend: str,
                         commit: str, run_id: str, order: int = 0,
                         family: str = FAMILY_SCENARIO_MATRIX) -> TrendRecord:
    """One pipeline run's deterministic ``metrics()`` dict as one record."""
    return TrendRecord(
        family=family, commit=commit, run_id=run_id, order=order,
        key={"scenario": scenario, "backend": backend},
        metrics=flatten_metrics(metrics))


def collect_hw_sweep(result, *, commit: str, run_id: str,
                     order: int = 0) -> List[TrendRecord]:
    """A :class:`~repro.analysis.hw_sweep.HardwareSweepResult` as records.

    One record per (scenario, backend) run, metrics flattened from the
    run's full ``metrics()`` dict — the functional counters plus the
    per-stage ``hardware.*`` cache/timing/energy section.
    """
    return [
        TrendRecord(
            family=FAMILY_SCENARIO_HW, commit=commit, run_id=run_id,
            order=order,
            key={"scenario": run.scenario, "backend": run.backend},
            metrics=flatten_metrics(run.metrics))
        for run in result.runs
    ]


def collect_cache_sweep(result, *, commit: str, run_id: str,
                        order: int = 0) -> List[TrendRecord]:
    """A :class:`~repro.analysis.cache_sweep.CacheSweepResult` as records.

    One record per (geometry, mode): the mode's hardware counters summed
    over scenarios and stages — the exact quantities the sensitivity table
    renders.
    """
    records = []
    for run in result.runs:
        for mode in result.modes:
            records.append(TrendRecord(
                family=FAMILY_CACHE_SENSITIVITY, commit=commit,
                run_id=run_id, order=order,
                key={"geometry": run.geometry.name, "backend": mode},
                metrics=flatten_metrics(run.mode_totals(mode))))
    return records


def collect_map_scale(result, *, commit: str, run_id: str,
                      order: int = 0) -> List[TrendRecord]:
    """A :class:`~repro.analysis.map_scale.MapScaleResult` as records.

    One record per (geometry, flavour) cell with the cell's traffic totals
    plus the sweep's shape (points, tiles, queries) so a record is
    self-describing across map-size changes.
    """
    shape = {
        "n_points": result.n_points,
        "n_tiles": result.n_tiles,
        "n_touched_tiles": result.n_touched_tiles,
        "n_queries": result.n_queries,
    }
    records = []
    for geometry in result.geometries:
        for flavor in result.flavors:
            cell = result.cell(geometry.name, flavor)
            metrics = dict(shape)
            metrics.update(flatten_metrics(cell.totals()))
            records.append(TrendRecord(
                family=FAMILY_MAP_SCALE, commit=commit, run_id=run_id,
                order=order,
                key={"scenario": result.scenario, "geometry": geometry.name,
                     "flavor": flavor},
                metrics=metrics))
    return records


def collect_serving_load(result, *, commit: str, run_id: str,
                         order: int = 0) -> List[TrendRecord]:
    """A :class:`~repro.serve.loadgen.ServingLoadResult` as records.

    One record per traffic class with the wall-clock latency percentiles
    (the serving benchmark's product — inherently noisy, which is why the
    regression detector applies a wide tolerance to ``latency.*``), plus
    one ``fleet`` record with throughput and the structural counters.
    """
    records = [TrendRecord(
        family=FAMILY_SERVING_LOAD, commit=commit, run_id=run_id,
        order=order, key={"class": "fleet"},
        metrics={
            "n_clients": result.n_clients,
            "n_points": result.n_points,
            "total_requests": result.total_requests,
            "throughput_rps": result.throughput_rps,
            "parent_compression_passes": result.parent_compression_passes,
            "client_compression_passes_total":
                sum(result.client_compression_passes),
        })]
    for key in sorted(result.latencies):
        p50, p95, p99 = result.percentiles(key)
        records.append(TrendRecord(
            family=FAMILY_SERVING_LOAD, commit=commit, run_id=run_id,
            order=order, key={"class": key},
            metrics={"latency.p50_s": p50, "latency.p95_s": p95,
                     "latency.p99_s": p99,
                     "requests": len(result.latencies[key])}))
    return records


def collect_campaign_manifest(manifest: Mapping, *, commit: str, run_id: str,
                              order: int = 0) -> List[TrendRecord]:
    """A campaign ``manifest.json`` mapping as records.

    One record per campaign seed: budget, trial/divergence totals and the
    per-kind divergence counts (``divergences.<kind>``) — the dashboard's
    campaign-divergence table reads exactly these.
    """
    campaign = manifest.get("campaign", {})
    trials = manifest.get("trials", [])
    by_kind: Dict[str, int] = {}
    n_ops = 0
    for trial in trials:
        n_ops += len(trial.get("world", {}).get("ops", []))
        for divergence in trial.get("divergences", []):
            kind = divergence.get("kind", "unknown")
            by_kind[kind] = by_kind.get(kind, 0) + 1
    metrics: Dict[str, MetricValue] = {
        "budget": int(campaign.get("budget", len(trials))),
        "n_trials": len(trials),
        "n_backends": len(campaign.get("backends", [])),
        "n_ops": n_ops,
        "n_divergences": int(manifest.get("n_divergences", 0)),
    }
    for kind in sorted(by_kind):
        metrics[f"divergences.{kind}"] = by_kind[kind]
    return [TrendRecord(
        family=FAMILY_CAMPAIGN, commit=commit, run_id=run_id, order=order,
        key={"seed": str(campaign.get("seed", 0))},
        metrics=metrics)]


#: Golden snapshot filename prefixes -> (family, kind key), mirroring
#: ``tests/goldens.py`` KINDS.  ``hw_pipeline`` must be checked first:
#: prefixes overlap.
_GOLDEN_PREFIXES = (
    ("hw_pipeline_", FAMILY_GOLDEN_HARDWARE),
    ("pipeline_", FAMILY_GOLDEN_PIPELINE),
)


def collect_golden_snapshots(golden_dir: Path, *, commit: str, run_id: str,
                             order: int = 0) -> List[TrendRecord]:
    """The committed golden snapshots (``tests/golden/*.json``) as records.

    One record per snapshot file; the (scenario, mode) key is parsed from
    the filename the golden harness writes
    (``<kind>_<scenario>_<mode>.json``), the metrics are the snapshot's
    flattened numeric scalars.  Tracking the goldens themselves means a
    ``--update-golden`` refresh shows up on the dashboard as a step in the
    trend line, not as silent history loss.
    """
    golden_dir = Path(golden_dir)
    records = []
    for path in sorted(golden_dir.glob("*.json")):
        family = None
        for prefix, prefix_family in _GOLDEN_PREFIXES:
            if path.stem.startswith(prefix):
                family = prefix_family
                rest = path.stem[len(prefix):]
                break
        if family is None:
            continue
        scenario, _, mode = rest.rpartition("_")
        if not scenario:
            continue
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        records.append(TrendRecord(
            family=family, commit=commit, run_id=run_id, order=order,
            key={"scenario": scenario, "mode": mode},
            metrics=flatten_metrics(snapshot)))
    return records


# -- benchmark wiring ------------------------------------------------------


@dataclass(frozen=True)
class TrendContext:
    """Where and as whom a benchmark run records its trends."""

    root: Path
    commit: str
    run_id: str
    order: int = 0


def trend_context(
        environ: Optional[Mapping[str, str]] = None) -> Optional[TrendContext]:
    """The recording context from the environment, or ``None`` when off.

    ``REPRO_TRENDS_DIR`` switches recording on and names the store
    directory; ``REPRO_TRENDS_COMMIT`` (default ``local``),
    ``REPRO_TRENDS_RUN_ID`` (default: the commit) and
    ``REPRO_TRENDS_ORDER`` (default 0) identify the run.  CI passes the
    git SHA and the run number.
    """
    env = os.environ if environ is None else environ
    root = env.get("REPRO_TRENDS_DIR", "")
    if not root:
        return None
    commit = env.get("REPRO_TRENDS_COMMIT", "") or "local"
    run_id = env.get("REPRO_TRENDS_RUN_ID", "") or commit
    order_text = env.get("REPRO_TRENDS_ORDER", "") or "0"
    try:
        order = int(order_text)
    except ValueError:
        raise ValueError(
            f"REPRO_TRENDS_ORDER must be an integer, got {order_text!r}")
    return TrendContext(root=Path(root), commit=commit, run_id=run_id,
                        order=order)


def maybe_record(
        build: Callable[[TrendContext], Sequence[TrendRecord]],
        environ: Optional[Mapping[str, str]] = None) -> Optional[List[Path]]:
    """Record a benchmark's rows when ``REPRO_TRENDS_DIR`` is set.

    ``build`` receives the resolved :class:`TrendContext` and returns the
    records (typically one ``collect_*`` call); they are merged into the
    store and the touched paths returned.  Without the knob this is a
    no-op returning ``None`` — the benchmarks' rendered ``.txt`` output is
    unaffected either way.
    """
    context = trend_context(environ)
    if context is None:
        return None
    return TrendStore(context.root).append(build(context))
