"""Threshold-based regression detection over trend histories.

Comparison is cell-by-cell, metric-by-metric between two recorded runs of
the same store: a **baseline** commit (typically the committed
``benchmarks/trends/`` snapshot, recorded as commit ``baseline``) and a
**head** commit (the run CI just recorded).  The policy mirrors how the
quantities behave:

* structural counters (byte counts, access counts, sizes) are exact ints
  end to end — any difference at all is a regression;
* modelled continuous quantities (``cycles``, ``energy``, miss ratios) get
  a small relative tolerance;
* wall-clock quantities (``latency.*``, ``wall_seconds``, throughput) are
  inherently noisy and get a wide one.

The detector is a pure function of the record *set*: records are grouped
by cell and deduplicated deterministically, and the report is sorted, so
shuffling the store lines can never change the outcome (the property
tests lock this down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .schema import MetricValue, TrendRecord
from .store import TrendStore, TrendStoreError

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_RELATIVE_METRICS",
    "Regression",
    "RegressionPolicy",
    "RegressionReport",
    "find_regressions",
    "render_regressions",
]

#: Relative tolerance applied to non-integer metrics with no override.
DEFAULT_REL_TOL = 0.05

#: Substring-matched tolerance overrides, first match wins.  Metrics that
#: match one of these are compared relatively even when both values are
#: ints (a cycle count is a model output, not a structural invariant);
#: wall-clock families get a deliberately wide band.
DEFAULT_RELATIVE_METRICS: Tuple[Tuple[str, float], ...] = (
    ("latency", 0.50),
    ("wall_seconds", 0.50),
    ("throughput", 0.50),
    ("cycles", 0.05),
    ("energy", 0.05),
    ("miss_ratio", 0.05),
)


@dataclass(frozen=True)
class RegressionPolicy:
    """How far a metric may drift before it is flagged."""

    #: Fallback relative tolerance for float-valued metrics.
    default_rel_tol: float = DEFAULT_REL_TOL
    #: ``(substring, tolerance)`` overrides, first match wins.
    overrides: Tuple[Tuple[str, float], ...] = DEFAULT_RELATIVE_METRICS

    def tolerance_for(self, metric: str,
                      baseline: MetricValue, head: MetricValue) -> float:
        """The relative tolerance for one metric; 0.0 means exact."""
        for substring, tolerance in self.overrides:
            if substring in metric:
                return tolerance
        if isinstance(baseline, int) and isinstance(head, int):
            return 0.0
        return self.default_rel_tol

    def exceeded(self, metric: str,
                 baseline: MetricValue, head: MetricValue) -> Optional[float]:
        """The violated tolerance if the pair drifts too far, else ``None``.

        Drift in *either* direction counts: an unexplained improvement is
        as much a model change as an unexplained loss.
        """
        tolerance = self.tolerance_for(metric, baseline, head)
        if tolerance == 0.0:
            return None if baseline == head else 0.0
        if baseline == head:
            return None
        if baseline == 0:
            return tolerance  # any move off an exact zero is beyond any band
        rel = abs(head - baseline) / abs(baseline)
        return tolerance if rel > tolerance else None


@dataclass(frozen=True)
class Regression:
    """One flagged (family, cell, metric) triple."""

    family: str
    key: Mapping[str, str]
    metric: str
    baseline: Optional[MetricValue]
    head: Optional[MetricValue]
    tolerance: float
    #: ``drift`` (both present, beyond tolerance), ``missing-metric`` (in
    #: baseline, gone from head) or ``missing-cell`` (whole cell gone).
    kind: str = "drift"

    def sort_key(self):
        return (self.family, tuple(sorted(self.key.items())), self.metric,
                self.kind)

    def describe(self) -> str:
        cell = " ".join(f"{k}={v}" for k, v in sorted(self.key.items()))
        if self.kind == "missing-cell":
            return f"[{self.family}] {cell} :: cell missing from head run"
        if self.kind == "missing-metric":
            return (f"[{self.family}] {cell} :: {self.metric}: "
                    f"{self.baseline!r} -> missing from head run")
        if self.baseline:
            rel = (self.head - self.baseline) / abs(self.baseline)
            change = f"{rel:+.2%}"
        else:
            change = "from zero"
        band = "exact" if self.tolerance == 0.0 else f"tol {self.tolerance:.0%}"
        return (f"[{self.family}] {cell} :: {self.metric}: "
                f"{self.baseline!r} -> {self.head!r} ({change}, {band})")


@dataclass(frozen=True)
class RegressionReport:
    """The deterministic outcome of one baseline-vs-head comparison."""

    baseline_commit: str
    head_commit: str
    families: Tuple[str, ...]
    n_cells: int
    n_metrics: int
    regressions: Tuple[Regression, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.regressions


def _cells_of_commit(records: Sequence[TrendRecord], commit: str,
                     ) -> Dict[tuple, TrendRecord]:
    """The latest record per cell for one commit.

    Several runs may share a commit (re-recorded locally); the one with the
    greatest ``(order, run_id)`` wins, deterministically.
    """
    chosen: Dict[tuple, TrendRecord] = {}
    for record in records:
        if record.commit != commit:
            continue
        cell = record.cell()
        held = chosen.get(cell)
        if held is None or (record.order, record.run_id) > (held.order,
                                                            held.run_id):
            chosen[cell] = record
    return chosen


def find_regressions(store: TrendStore, baseline_commit: str,
                     head_commit: Optional[str] = None,
                     families: Optional[Sequence[str]] = None,
                     policy: Optional[RegressionPolicy] = None,
                     ) -> RegressionReport:
    """Compare two commits' records across families; sorted, order-blind."""
    policy = policy if policy is not None else RegressionPolicy()
    names = tuple(families) if families is not None else tuple(store.families())
    if head_commit is None:
        head_commit = store.latest_commit()
        if head_commit is None:
            raise TrendStoreError(
                f"trends store {store.root} holds no records — nothing to "
                f"compare (record a run first)")
    flagged: List[Regression] = []
    n_cells = 0
    n_metrics = 0
    seen_baseline = False
    for family in names:
        records = store.load(family)
        base_cells = _cells_of_commit(records, baseline_commit)
        head_cells = _cells_of_commit(records, head_commit)
        seen_baseline = seen_baseline or bool(base_cells)
        for cell in sorted(base_cells):
            base = base_cells[cell]
            head = head_cells.get(cell)
            if head is None:
                flagged.append(Regression(
                    family=family, key=base.key, metric="*", kind="missing-cell",
                    baseline=None, head=None, tolerance=0.0))
                continue
            n_cells += 1
            for metric in sorted(base.metrics):
                base_value = base.metrics[metric]
                if metric not in head.metrics:
                    flagged.append(Regression(
                        family=family, key=base.key, metric=metric,
                        kind="missing-metric", baseline=base_value, head=None,
                        tolerance=0.0))
                    continue
                n_metrics += 1
                head_value = head.metrics[metric]
                violated = policy.exceeded(metric, base_value, head_value)
                if violated is not None:
                    flagged.append(Regression(
                        family=family, key=base.key, metric=metric,
                        baseline=base_value, head=head_value,
                        tolerance=violated))
    if not seen_baseline:
        raise TrendStoreError(
            f"baseline commit {baseline_commit!r} has no records in "
            f"{store.root} (families: {', '.join(names) or 'none'}) — "
            f"record the baseline or pass the right --baseline")
    return RegressionReport(
        baseline_commit=baseline_commit, head_commit=head_commit,
        families=names, n_cells=n_cells, n_metrics=n_metrics,
        regressions=tuple(sorted(flagged, key=Regression.sort_key)))


def render_regressions(report: RegressionReport) -> str:
    """The report as deterministic text, one flagged triple per line."""
    lines = [
        "trend regression report",
        f"baseline: {report.baseline_commit}   head: {report.head_commit}",
        f"families: {', '.join(report.families)}",
        f"compared {report.n_cells} cells / {report.n_metrics} metrics",
    ]
    if report.ok:
        lines.append("OK - no regressions beyond tolerance")
    else:
        lines.append(f"FLAGGED {len(report.regressions)} regression(s):")
        lines.extend(f"  {r.describe()}" for r in report.regressions)
    return "\n".join(lines) + "\n"
