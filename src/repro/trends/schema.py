"""The trend record: one benchmark/campaign observation as versioned data.

A :class:`TrendRecord` is one run's worth of metrics for one cell of one
metric family — e.g. the ``(scenario=urban, backend=bonsai-batched)`` cell
of the hardware scenario matrix — keyed by the commit and run id the
*caller* passes in.  Nothing in this module reads the clock, the
environment or the git tree: identity is explicit data, which is what
keeps the store (:mod:`repro.trends.store`), the regression detector
(:mod:`repro.trends.regress`) and the dashboard
(:mod:`repro.trends.dashboard`) byte-deterministic.

Records are JSON-roundtrippable **exactly**: metric values are restricted
to finite ints and floats, and Python's ``repr``-based float serialisation
(the shortest round-tripping form, the same contract campaign world specs
rely on) guarantees ``from_json(to_json(r)) == r``.

The schema is versioned.  :data:`SCHEMA_VERSION` stamps every record;
:func:`register_migration` installs a hook that lifts a record dict from
one version to the next, and :func:`migrate` chains hooks until the dict
is current — so a store written by an older tree loads unchanged by a
newer one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import isfinite
from typing import Callable, Dict, Mapping, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "MetricValue",
    "TrendRecord",
    "TrendSchemaError",
    "migrate",
    "register_migration",
]

#: Current record schema version; bump when the record shape changes and
#: install a :func:`register_migration` hook for the old version.
SCHEMA_VERSION = 1

MetricValue = Union[int, float]


class TrendSchemaError(ValueError):
    """A record dict does not satisfy the trend-record schema."""


#: Migration hooks: ``from_version -> fn(dict) -> dict`` lifting a record
#: dict to ``from_version + 1``.  Hooks must be pure (no clock, no I/O).
_MIGRATIONS: Dict[int, Callable[[dict], dict]] = {}


def register_migration(from_version: int):
    """Register ``fn`` as the migration lifting ``from_version`` records.

    Decorator form::

        @register_migration(0)
        def _lift_v0(data):
            data["run_id"] = data.pop("run", "unknown")
            return data

    Registering two hooks for one version is an error — migrations are a
    total, deterministic chain.
    """

    def decorate(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        if from_version in _MIGRATIONS:
            raise TrendSchemaError(
                f"a migration from schema version {from_version} is already "
                f"registered")
        _MIGRATIONS[from_version] = fn
        return fn

    return decorate


def unregister_migration(from_version: int) -> None:
    """Remove a registered migration hook (test teardown helper)."""
    _MIGRATIONS.pop(from_version, None)


def migrate(data: Mapping) -> dict:
    """Lift a raw record dict to :data:`SCHEMA_VERSION` via the hooks.

    A dict without a ``schema_version`` field is treated as version
    :data:`SCHEMA_VERSION` (the field has a default).  Versions newer than
    this tree's, and old versions without a registered hook, are errors —
    never a silent guess.
    """
    current = dict(data)
    version = current.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int):
        raise TrendSchemaError(
            f"schema_version must be an int, got {version!r}")
    if version > SCHEMA_VERSION:
        raise TrendSchemaError(
            f"record has schema version {version}, this tree understands "
            f"<= {SCHEMA_VERSION} — update the repro checkout")
    while version < SCHEMA_VERSION:
        hook = _MIGRATIONS.get(version)
        if hook is None:
            raise TrendSchemaError(
                f"no migration registered from schema version {version}")
        current = hook(dict(current))
        version += 1
        current["schema_version"] = version
    return current


def _canonical_key(key: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(key.items()))


def _validate_str(name: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise TrendSchemaError(f"{name} must be a non-empty string, "
                               f"got {value!r}")
    return value


@dataclass(frozen=True)
class TrendRecord:
    """One metric-family cell of one identified run.

    ``family``
        Metric family, the store's file-level grouping (e.g.
        ``scenario-hw``); lowercase ``[a-z0-9-]`` so the family maps to a
        JSONL filename.
    ``commit`` / ``run_id`` / ``order``
        The run's identity, passed in by the caller (CI passes the git SHA
        and run number) — never read from the environment or the clock
        here.  ``order`` is the monotonically increasing sequence number
        trend lines are plotted along; commits do not sort chronologically,
        an explicit integer does.
    ``key``
        The cell within the family: scenario x backend x geometry (x stage,
        traffic class, ...), as a flat ``str -> str`` mapping.
    ``metrics``
        Flat metric name -> finite int/float.  Ints stay ints through the
        JSON round trip (exactness is what lets the regression detector
        compare byte counters exactly).
    """

    family: str
    commit: str
    run_id: str
    key: Mapping[str, str]
    metrics: Mapping[str, MetricValue]
    order: int = 0
    schema_version: int = field(default=SCHEMA_VERSION)

    def __post_init__(self):
        _validate_str("family", self.family)
        if not all(c.isascii() and (c.islower() or c.isdigit() or c == "-")
                   for c in self.family):
            raise TrendSchemaError(
                f"family must match [a-z0-9-]+ (it names the store file), "
                f"got {self.family!r}")
        _validate_str("commit", self.commit)
        _validate_str("run_id", self.run_id)
        if not isinstance(self.order, int) or isinstance(self.order, bool):
            raise TrendSchemaError(f"order must be an int, got {self.order!r}")
        if self.schema_version != SCHEMA_VERSION:
            raise TrendSchemaError(
                f"TrendRecord carries schema version {SCHEMA_VERSION}; "
                f"migrate() raw dicts first (got {self.schema_version!r})")
        for name, value in self.key.items():
            _validate_str("key name", name)
            _validate_str(f"key[{name!r}]", value)
        for name, value in self.metrics.items():
            _validate_str("metric name", name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TrendSchemaError(
                    f"metric {name!r} must be an int or float, got {value!r}")
            if isinstance(value, float) and not isfinite(value):
                raise TrendSchemaError(
                    f"metric {name!r} must be finite, got {value!r}")
        # Freeze the mappings into canonical (sorted) plain dicts so two
        # records built from differently-ordered dicts compare equal and
        # serialise identically.
        object.__setattr__(self, "key",
                           dict(_canonical_key(self.key)))
        object.__setattr__(self, "metrics",
                           dict(sorted(self.metrics.items())))

    # -- identity / ordering ---------------------------------------------

    def cell(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """The record's (family, canonical key) cell identity."""
        return self.family, _canonical_key(self.key)

    def sort_key(self):
        """Total deterministic order: family, run sequence, cell, payload."""
        return (self.family, self.order, self.commit, self.run_id,
                _canonical_key(self.key), tuple(sorted(self.metrics.items())))

    # -- JSON round trip ---------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-serialisable form (exact round trip via :meth:`from_dict`)."""
        return {
            "schema_version": self.schema_version,
            "family": self.family,
            "commit": self.commit,
            "run_id": self.run_id,
            "order": self.order,
            "key": dict(_canonical_key(self.key)),
            "metrics": dict(sorted(self.metrics.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrendRecord":
        """Build a record from a (possibly old-version) dict, migrating it."""
        current = migrate(data)
        known = {"schema_version", "family", "commit", "run_id", "order",
                 "key", "metrics"}
        unknown = sorted(k for k in current if k not in known)
        if unknown:
            raise TrendSchemaError(f"unknown record fields {unknown}")
        try:
            key = dict(current.get("key", {}))
            metrics = dict(current.get("metrics", {}))
        except (TypeError, ValueError) as exc:
            raise TrendSchemaError(f"key/metrics must be mappings: {exc}")
        return cls(
            family=current.get("family", ""),
            commit=current.get("commit", ""),
            run_id=current.get("run_id", ""),
            key=key,
            metrics=metrics,
            order=current.get("order", 0),
            schema_version=current.get("schema_version", SCHEMA_VERSION),
        )

    def to_json(self) -> str:
        """One canonical JSONL line (sorted keys, compact, no NaN)."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"), allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "TrendRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrendSchemaError(f"invalid JSON: {exc}")
        if not isinstance(data, dict):
            raise TrendSchemaError(
                f"a record line must be a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)
