"""Static, stdlib-only HTML explorer over a trend store.

:func:`render_dashboard` is a pure function from the store's record set
(plus an optional baseline/head choice) to one self-contained HTML page:
no JavaScript, no external assets, inline CSS and inline SVG sparklines.
Every iteration is over sorted data and every number is formatted through
one deterministic path, so two renders of the same store are
**byte-identical** — the dashboard is itself a reproducibility artifact
and the lockdown tests diff the raw bytes.

Layout: one section per metric family; per cell (scenario x backend x
geometry, ...) a table of metric rows across the recorded runs with an SVG
trend line per metric; rows flagged by the regression detector
(:mod:`repro.trends.regress`) between the chosen baseline and head run are
highlighted.  The ``campaign`` family additionally gets a seed x run
divergence-count table up front, the closest thing the repository has to
AnICA's campaign explorer.
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Tuple

from .regress import RegressionPolicy, find_regressions
from .schema import MetricValue, TrendRecord
from .store import TrendStore, TrendStoreError

__all__ = ["render_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; }
h1 { border-bottom: 3px solid #16213e; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #16213e; }
h3 { margin-bottom: .4em; color: #0f3460; }
table { border-collapse: collapse; margin: .5em 0 1.5em; }
th, td { border: 1px solid #cdd3e0; padding: .25em .6em; text-align: right;
         font-variant-numeric: tabular-nums; }
th { background: #eef1f7; }
td.metric, th.metric { text-align: left; font-family: monospace; }
tr.regress td { background: #ffe3e3; }
tr.regress td.metric { color: #b00020; font-weight: bold; }
td.spark { padding: .1em .3em; }
p.meta { color: #555; }
svg polyline { fill: none; stroke: #0f3460; stroke-width: 1.5; }
tr.regress svg polyline { stroke: #b00020; }
""".strip()

#: Sparkline viewport (pixels) and padding inside it.
_SPARK_W, _SPARK_H, _SPARK_PAD = 120, 28, 3


def _format_value(value: MetricValue) -> str:
    """One deterministic rendering per metric value (ints keep commas)."""
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:.6g}"


def _sparkline(values: List[Optional[MetricValue]]) -> str:
    """An inline SVG polyline through the runs' values (gaps skipped)."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if len(points) < 2:
        return ""
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span_x = max(len(values) - 1, 1)
    inner_w = _SPARK_W - 2 * _SPARK_PAD
    inner_h = _SPARK_H - 2 * _SPARK_PAD
    coords = []
    for i, v in points:
        x = _SPARK_PAD + inner_w * i / span_x
        if hi == lo:
            y = _SPARK_H / 2
        else:
            y = _SPARK_PAD + inner_h * (1 - (v - lo) / (hi - lo))
        coords.append(f"{x:.2f},{y:.2f}")
    return (f'<svg width="{_SPARK_W}" height="{_SPARK_H}" '
            f'viewBox="0 0 {_SPARK_W} {_SPARK_H}">'
            f'<polyline points="{" ".join(coords)}"/></svg>')


def _run_label(run: Tuple[int, str, str]) -> str:
    order, commit, run_id = run
    label = f"#{order} {commit[:12]}"
    if run_id != commit:
        label += f" ({run_id[:12]})"
    return label


def _cell_title(key: Mapping[str, str]) -> str:
    return " / ".join(f"{name}={value}" for name, value in sorted(key.items()))


def _series(records_by_run: Mapping[Tuple[int, str, str], TrendRecord],
            runs: List[Tuple[int, str, str]],
            metric: str) -> List[Optional[MetricValue]]:
    series: List[Optional[MetricValue]] = []
    for run in runs:
        record = records_by_run.get(run)
        series.append(None if record is None
                      else record.metrics.get(metric))
    return series


def render_dashboard(store: TrendStore,
                     baseline_commit: Optional[str] = None,
                     head_commit: Optional[str] = None,
                     policy: Optional[RegressionPolicy] = None,
                     title: str = "repro trend explorer") -> str:
    """The whole store as one deterministic, self-contained HTML page.

    With at least two recorded runs the regression detector runs between
    ``baseline_commit`` (default: the earliest run's commit) and
    ``head_commit`` (default: the latest run's commit) and the flagged
    (cell, metric) rows are highlighted.
    """
    families = store.families()
    if not families:
        raise TrendStoreError(
            f"trends store {store.root} holds no records — record some runs "
            f"first (see `repro trends record`)")
    all_runs = store.runs()
    if baseline_commit is None and len(all_runs) >= 2:
        baseline_commit = all_runs[0][1]
    if head_commit is None and all_runs:
        head_commit = all_runs[-1][1]
    flagged: Dict[Tuple[str, tuple, str], None] = {}
    missing_cells: Dict[Tuple[str, tuple], None] = {}
    if baseline_commit is not None and head_commit is not None \
            and baseline_commit != head_commit:
        report = find_regressions(store, baseline_commit, head_commit,
                                  families=families, policy=policy)
        for regression in report.regressions:
            cell = (regression.family, tuple(sorted(regression.key.items())))
            if regression.kind == "missing-cell":
                missing_cells.setdefault(cell, None)
            else:
                flagged.setdefault(cell + (regression.metric,), None)

    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">{len(all_runs)} recorded run(s), '
        f'{len(families)} metric famil{"y" if len(families) == 1 else "ies"}.'
        + (f" Regression pass: baseline <code>"
           f"{html.escape(baseline_commit)}</code> vs head <code>"
           f"{html.escape(head_commit)}</code>, {len(flagged)} flagged "
           f"metric(s), {len(missing_cells)} missing cell(s)."
           if baseline_commit is not None and head_commit is not None
           and baseline_commit != head_commit else
           " Regression pass: skipped (fewer than two distinct runs).")
        + "</p>",
    ]

    for family in families:
        records = store.load(family)
        runs = store.runs(family)
        by_cell: Dict[tuple, Dict[Tuple[int, str, str], TrendRecord]] = {}
        for record in records:
            cell_key = tuple(sorted(record.key.items()))
            run = (record.order, record.commit, record.run_id)
            # Deterministic winner per (cell, run): to_json() max — append()
            # dedupes exact copies, so collisions mean hand-edited stores.
            slot = by_cell.setdefault(cell_key, {})
            held = slot.get(run)
            if held is None or record.to_json() > held.to_json():
                slot[run] = record
        out.append(f'<h2 id="{html.escape(family)}">{html.escape(family)}'
                   f"</h2>")
        if family == "campaign":
            out.extend(_campaign_divergence_table(by_cell, runs))
        for cell_key in sorted(by_cell):
            cell_dict = dict(cell_key)
            suffix = (" &mdash; missing from head run"
                      if (family, cell_key) in missing_cells else "")
            out.append(f"<h3>{html.escape(_cell_title(cell_dict))}{suffix}"
                       f"</h3>")
            records_by_run = by_cell[cell_key]
            metric_names: Dict[str, None] = {}
            for run in runs:
                record = records_by_run.get(run)
                if record is not None:
                    for name in record.metrics:
                        metric_names.setdefault(name, None)
            header = "".join(f"<th>{html.escape(_run_label(run))}</th>"
                             for run in runs)
            out.append(f'<table><tr><th class="metric">metric</th>{header}'
                       f"<th>trend</th></tr>")
            for metric in sorted(metric_names):
                series = _series(records_by_run, runs, metric)
                row_class = (' class="regress"'
                             if (family, cell_key, metric) in flagged else "")
                cells = "".join(
                    f"<td>{'' if v is None else _format_value(v)}</td>"
                    for v in series)
                out.append(
                    f'<tr{row_class}><td class="metric">{html.escape(metric)}'
                    f'</td>{cells}<td class="spark">{_sparkline(series)}'
                    f"</td></tr>")
            out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def _campaign_divergence_table(
        by_cell: Mapping[tuple, Mapping[Tuple[int, str, str], TrendRecord]],
        runs: List[Tuple[int, str, str]]) -> List[str]:
    """Seed x run divergence counts, the campaign section's lead table."""
    out = ["<h3>Campaign divergences by seed</h3>"]
    header = "".join(f"<th>{html.escape(_run_label(run))}</th>"
                     for run in runs)
    out.append(f'<table><tr><th class="metric">seed</th>{header}</tr>')
    for cell_key in sorted(by_cell):
        seed = dict(cell_key).get("seed", "?")
        cells = []
        for run in runs:
            record = by_cell[cell_key].get(run)
            value = None if record is None \
                else record.metrics.get("n_divergences")
            cells.append("<td></td>" if value is None else
                         f"<td>{_format_value(value)}</td>")
        out.append(f'<tr><td class="metric">{html.escape(str(seed))}</td>'
                   f'{"".join(cells)}</tr>')
    out.append("</table>")
    return out
