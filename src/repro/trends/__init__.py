"""Golden-metric trend tracking: persistent benchmark/campaign history.

The trends layer closes the observability gap left by the golden harness:
goldens gate *one* commit's numbers, trends keep *every* recorded run —
scenario matrices, cache sensitivity, map-scale sweeps, serving load,
differential campaigns, the golden snapshots themselves — as versioned
JSONL keyed by commit, with a threshold regression detector and a
byte-deterministic static HTML explorer on top.

* :mod:`repro.trends.schema` — the versioned, exactly-roundtripping
  :class:`TrendRecord` plus migration hooks.
* :mod:`repro.trends.store` — per-family JSONL store with deterministic
  sort/merge appends.
* :mod:`repro.trends.collect` — adapters from the existing result objects
  (nothing is re-run) and the ``REPRO_TRENDS_DIR`` benchmark wiring.
* :mod:`repro.trends.regress` — baseline-vs-head regression detection,
  exact for structural ints, toleranced for modelled/wall-clock values.
* :mod:`repro.trends.dashboard` — the stdlib-only HTML trend explorer.

CLI: ``repro trends record | report | dashboard`` (see ``docs/TRENDS.md``).
"""

from .collect import (FAMILY_CACHE_SENSITIVITY, FAMILY_CAMPAIGN,
                      FAMILY_GOLDEN_HARDWARE, FAMILY_GOLDEN_PIPELINE,
                      FAMILY_MAP_SCALE, FAMILY_SCENARIO_HW,
                      FAMILY_SCENARIO_MATRIX, FAMILY_SERVING_LOAD,
                      KNOWN_FAMILIES, TrendContext, collect_cache_sweep,
                      collect_campaign_manifest, collect_golden_snapshots,
                      collect_hw_sweep, collect_map_scale,
                      collect_pipeline_run, collect_serving_load,
                      flatten_metrics, maybe_record, trend_context)
from .dashboard import render_dashboard
from .regress import (DEFAULT_REL_TOL, DEFAULT_RELATIVE_METRICS, Regression,
                      RegressionPolicy, RegressionReport, find_regressions,
                      render_regressions)
from .schema import (SCHEMA_VERSION, MetricValue, TrendRecord,
                     TrendSchemaError, migrate, register_migration,
                     unregister_migration)
from .store import TrendStore, TrendStoreError

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_RELATIVE_METRICS",
    "FAMILY_CACHE_SENSITIVITY",
    "FAMILY_CAMPAIGN",
    "FAMILY_GOLDEN_HARDWARE",
    "FAMILY_GOLDEN_PIPELINE",
    "FAMILY_MAP_SCALE",
    "FAMILY_SCENARIO_HW",
    "FAMILY_SCENARIO_MATRIX",
    "FAMILY_SERVING_LOAD",
    "KNOWN_FAMILIES",
    "MetricValue",
    "Regression",
    "RegressionPolicy",
    "RegressionReport",
    "SCHEMA_VERSION",
    "TrendContext",
    "TrendRecord",
    "TrendSchemaError",
    "TrendStore",
    "TrendStoreError",
    "collect_cache_sweep",
    "collect_campaign_manifest",
    "collect_golden_snapshots",
    "collect_hw_sweep",
    "collect_map_scale",
    "collect_pipeline_run",
    "collect_serving_load",
    "find_regressions",
    "flatten_metrics",
    "maybe_record",
    "migrate",
    "register_migration",
    "render_dashboard",
    "render_regressions",
    "trend_context",
    "unregister_migration",
]
