"""Post-processing of extracted clusters.

Autoware's euclidean-cluster node labels clusters, fits bounding boxes and
filters detections before publishing them to the rest of the stack.  The
helpers here reproduce that "labeling" stage — the part of the end-to-end
latency that is *not* radius search — so the end-to-end timing model covers
the same phases the paper measures (pre-processing, extract kernel,
labeling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..pointcloud.cloud import BoundingBox, PointCloud
from .euclidean_cluster import Cluster

__all__ = ["DetectedObject", "label_clusters", "filter_by_extent", "match_clusters_to_labels"]


@dataclass
class DetectedObject:
    """A published detection: bounding box, centroid and a coarse class."""

    cluster_id: int
    centroid: np.ndarray
    bbox: BoundingBox
    n_points: int
    label: str

    @property
    def footprint_area(self) -> float:
        """Area of the bounding box projected on the ground plane."""
        extent = self.bbox.extent
        return float(extent[0] * extent[1])


def _classify_extent(extent: np.ndarray) -> str:
    """Coarse class from bounding-box dimensions (vehicle/pedestrian/etc.)."""
    length, width, height = float(extent[0]), float(extent[1]), float(extent[2])
    long_side = max(length, width)
    short_side = min(length, width)
    if long_side > 2.5 and height > 0.8:
        return "vehicle"
    if height > 2.5 and short_side < 0.8:
        return "pole"
    if long_side < 1.2 and 1.2 < height <= 2.5:
        return "pedestrian"
    return "unknown"


def label_clusters(cloud: PointCloud, clusters: Sequence[Cluster]) -> List[DetectedObject]:
    """Turn raw clusters into labelled detections (the node's output stage)."""
    detections: List[DetectedObject] = []
    for cluster_id, cluster in enumerate(clusters):
        detections.append(
            DetectedObject(
                cluster_id=cluster_id,
                centroid=cluster.centroid,
                bbox=cluster.bbox,
                n_points=cluster.size,
                label=_classify_extent(cluster.bbox.extent),
            )
        )
    return detections


def filter_by_extent(detections: Sequence[DetectedObject],
                     min_extent: float = 0.2,
                     max_extent: float = 15.0) -> List[DetectedObject]:
    """Drop detections whose largest dimension falls outside the given bounds."""
    kept: List[DetectedObject] = []
    for detection in detections:
        largest = float(np.max(detection.bbox.extent))
        if min_extent <= largest <= max_extent:
            kept.append(detection)
    return kept


def match_clusters_to_labels(detections: Sequence[DetectedObject]) -> Dict[str, int]:
    """Histogram of detection labels (used by tests and examples)."""
    histogram: Dict[str, int] = {}
    for detection in detections:
        histogram[detection.label] = histogram.get(detection.label, 0) + 1
    return histogram
