"""Perception / localization workloads built on the k-d tree radius search."""

from .cluster_filter import (
    DetectedObject,
    filter_by_extent,
    label_clusters,
    match_clusters_to_labels,
)
from .euclidean_cluster import Cluster, ClusterConfig, ClusterResult, EuclideanClusterExtractor
from .icp import ICPConfig, ICPMatcher, ICPResult
from .ndt import NDTConfig, NDTMap, NDTMatcher, NDTResult, VoxelGaussian
from .tracking import ClusterTracker, Track, TrackerConfig

__all__ = [
    "DetectedObject",
    "filter_by_extent",
    "label_clusters",
    "match_clusters_to_labels",
    "Cluster",
    "ClusterConfig",
    "ClusterResult",
    "EuclideanClusterExtractor",
    "ICPConfig",
    "ICPMatcher",
    "ICPResult",
    "NDTConfig",
    "NDTMap",
    "NDTMatcher",
    "NDTResult",
    "VoxelGaussian",
    "ClusterTracker",
    "Track",
    "TrackerConfig",
]
