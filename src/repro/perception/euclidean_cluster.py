"""Euclidean cluster extraction (the Autoware.ai task the paper evaluates).

The algorithm is the classic PCL ``EuclideanClusterExtraction`` used by
Autoware's lidar_euclidean_cluster_detect node: grow clusters by repeatedly
radius-searching around unprocessed points, then keep clusters whose size
falls within configured bounds.  Radius search dominates its execution time,
which is exactly the property the paper exploits (Figure 2).

The extractor selects its search through the execution-backend registry
(:mod:`repro.engine`), so the same clustering code runs on top of any named
backend — per-query or batched, baseline 32-bit or K-D Bonsai compressed —
mirroring how the paper's PCL modification is toggled by a boolean flag but
keeping the mode as *data* (an :class:`~repro.engine.execution.ExecutionConfig`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..engine.backends import SearchBackend
from ..engine.execution import ExecutionConfig
from ..kdtree.build import KDTree, KDTreeConfig, build_kdtree
from ..kdtree.layout import TreeMemoryLayout
from ..kdtree.radius_search import MemoryRecorder, SearchStats
from ..pointcloud.cloud import BoundingBox, PointCloud
from ..runtime.batch import BatchRadiusResult

__all__ = ["Cluster", "ClusterConfig", "ClusterResult", "EuclideanClusterExtractor"]


@dataclass
class Cluster:
    """One extracted cluster: point indices plus derived geometry."""

    indices: List[int]
    centroid: np.ndarray
    bbox: BoundingBox

    @property
    def size(self) -> int:
        """Number of points in the cluster."""
        return len(self.indices)


@dataclass
class ClusterConfig:
    """Parameters of euclidean cluster extraction.

    Defaults follow Autoware's euclidean cluster node: clustering tolerance
    (the radius) in the tens of centimetres, and size bounds that discard
    sensor noise and oversized merges.
    """

    tolerance: float = 0.6
    min_cluster_size: int = 5
    max_cluster_size: int = 20000
    max_leaf_size: int = 15


@dataclass
class ClusterResult:
    """Clusters plus the accounting gathered while extracting them."""

    clusters: List[Cluster]
    n_points: int
    search_stats: SearchStats
    tree: KDTree
    #: The Bonsai backend that served the searches (``None`` for baseline
    #: runs); exposes ``bonsai_stats`` and the compression ``report``.
    bonsai: Optional[SearchBackend] = None

    @property
    def n_clusters(self) -> int:
        """Number of clusters that passed the size filters."""
        return len(self.clusters)

    @property
    def labels(self) -> np.ndarray:
        """Per-point cluster label (-1 for unclustered points)."""
        labels = np.full(self.n_points, -1, dtype=np.int64)
        for cluster_id, cluster in enumerate(self.clusters):
            labels[cluster.indices] = cluster_id
        return labels


class EuclideanClusterExtractor:
    """Cluster a point cloud by euclidean proximity over a k-d tree.

    The search backend is selected by :class:`ExecutionConfig` (the
    ``use_bonsai`` boolean remains as a convenience and maps to the batched
    backend of the corresponding flavour).  All backends produce identical
    clusters and search statistics.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, use_bonsai: bool = False,
                 recorder: Optional[MemoryRecorder] = None,
                 execution: Optional[ExecutionConfig] = None):
        self.config = config or ClusterConfig()
        if execution is None:
            execution = ExecutionConfig(
                backend="bonsai-batched" if use_bonsai else "baseline-batched")
        self.execution = execution
        self.use_bonsai = execution.use_bonsai
        if recorder is None and execution.hardware:
            recorder = execution.make_recorder()
        self.recorder = recorder

    def extract(self, cloud: PointCloud) -> ClusterResult:
        """Build the tree, grow clusters and return the filtered result.

        Batched backends grow clusters wave-by-wave: every BFS frontier is
        issued as one batched radius query.  Per-query backends — and any
        backend when a memory recorder is attached, because the trace-driven
        cache simulation depends on the exact order of the recorded memory
        accesses — keep the query-by-query growth.  Both paths produce
        identical clusters and search statistics.
        """
        if cloud.is_empty:
            return ClusterResult(clusters=[], n_points=0, search_stats=SearchStats(),
                                 tree=None)  # type: ignore[arg-type]
        tree = build_kdtree(cloud, KDTreeConfig(max_leaf_size=self.config.max_leaf_size))
        execution = self.execution

        if self.recorder is not None:
            # Recorded (hardware-in-the-loop) extraction: make_backend
            # resolves to the per-query backend of the configured flavour
            # with the recorder attached, so leaf/point loads — including
            # the build-time compression traffic of a fresh Bonsai tree —
            # stream into the cache model.
            layout = TreeMemoryLayout(n_points=tree.n_points)
            backend = execution.make_backend(tree, recorder=self.recorder,
                                             layout=layout)
            clusters = self._grow_clusters(cloud, backend.search, layout)
        elif execution.strategy == "perquery":
            backend = execution.make_backend(tree)
            clusters = self._grow_clusters(cloud, backend.search)
        else:
            backend = execution.make_backend(tree)
            clusters = self._grow_clusters_batched(cloud, backend.radius_search)
        return ClusterResult(
            clusters=clusters,
            n_points=len(cloud),
            search_stats=backend.stats,
            tree=tree,
            bonsai=backend if self.use_bonsai else None,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow_clusters_batched(
            self, cloud: PointCloud,
            batch_search: Callable[[np.ndarray, float], BatchRadiusResult],
    ) -> List[Cluster]:
        """Grow clusters wave-by-wave: one batched query per BFS frontier.

        Produces the same clusters as the per-query loop — euclidean
        clustering computes the connected components of the fixed-radius
        graph, which are independent of the search order — with every point
        still searched exactly once, so the statistics aggregate identically.
        """
        n = len(cloud)
        points = cloud.points
        processed = np.zeros(n, dtype=bool)
        clusters: List[Cluster] = []
        tolerance = self.config.tolerance

        for seed in range(n):
            if processed[seed]:
                continue
            processed[seed] = True
            members = [seed]
            frontier = np.array([seed], dtype=np.intp)
            while frontier.size:
                result = batch_search(points[frontier], tolerance)
                neighbors = np.unique(result.point_indices)
                fresh = neighbors[~processed[neighbors]]
                processed[fresh] = True
                members.extend(fresh.tolist())
                frontier = fresh
            if self.config.min_cluster_size <= len(members) <= self.config.max_cluster_size:
                member_indices = sorted(members)
                member_points = cloud.points[member_indices].astype(np.float64)
                clusters.append(
                    Cluster(
                        indices=member_indices,
                        centroid=member_points.mean(axis=0),
                        bbox=BoundingBox.from_points(member_points),
                    )
                )
        return clusters

    def _grow_clusters(self, cloud: PointCloud,
                       search: Callable[[Sequence[float], float], List[int]],
                       layout: Optional[TreeMemoryLayout] = None) -> List[Cluster]:
        n = len(cloud)
        processed = np.zeros(n, dtype=bool)
        clusters: List[Cluster] = []
        tolerance = self.config.tolerance
        recorder = self.recorder

        for seed in range(n):
            if processed[seed]:
                continue
            processed[seed] = True
            members = [seed]
            frontier = deque([seed])
            while frontier:
                current = frontier.popleft()
                if recorder is not None and layout is not None:
                    # The cluster loop reads the query point from the cloud and
                    # its processed flag; these accesses are part of the extract
                    # kernel's memory behaviour and keep the point array warm in
                    # the baseline configuration.
                    recorder.record_load(layout.point_address(current), 16)
                    recorder.record_load(layout.flag_address(current), 1)
                neighbors = search(cloud[current], tolerance)
                for neighbor in neighbors:
                    if recorder is not None and layout is not None:
                        recorder.record_load(layout.flag_address(neighbor), 1)
                    if not processed[neighbor]:
                        processed[neighbor] = True
                        members.append(neighbor)
                        frontier.append(neighbor)
                        if recorder is not None and layout is not None:
                            recorder.record_store(layout.flag_address(neighbor), 1)
                            recorder.record_store(
                                layout.queue_address(len(frontier)), 4
                            )
            if self.config.min_cluster_size <= len(members) <= self.config.max_cluster_size:
                points = cloud.points[members].astype(np.float64)
                clusters.append(
                    Cluster(
                        indices=sorted(members),
                        centroid=points.mean(axis=0),
                        bbox=BoundingBox.from_points(points),
                    )
                )
        return clusters
