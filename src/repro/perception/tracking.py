"""Multi-object tracking over euclidean-cluster detections.

Autoware's perception pipeline does not stop at clustering: detections are
associated frame to frame to produce tracked objects with velocities, which is
what downstream planning consumes.  This module implements the standard
cluster-tracking substrate — greedy nearest-neighbour association with a
gating distance, constant-velocity prediction and track lifecycle management
(tentative → confirmed → lost) — so the repository covers the full
perception path the paper's introduction motivates, and provides a third
domain workload whose inner association step is again a neighbour search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pointcloud.cloud import BoundingBox
from .cluster_filter import DetectedObject

__all__ = ["Track", "TrackerConfig", "ClusterTracker"]


@dataclass
class TrackerConfig:
    """Parameters of the cluster tracker."""

    #: Maximum centroid distance (metres) for associating a detection to a track.
    gating_distance: float = 2.0
    #: Consecutive hits before a tentative track is confirmed.
    confirmation_hits: int = 2
    #: Consecutive misses before a track is dropped.
    max_misses: int = 3
    #: Exponential smoothing factor applied to the velocity estimate.
    velocity_smoothing: float = 0.5


@dataclass
class Track:
    """One tracked object."""

    track_id: int
    centroid: np.ndarray
    velocity: np.ndarray
    bbox: BoundingBox
    label: str
    hits: int = 1
    misses: int = 0
    age: int = 1
    confirmed: bool = False

    def predict(self, dt: float) -> np.ndarray:
        """Predicted centroid after ``dt`` seconds of constant-velocity motion."""
        return self.centroid + self.velocity * dt

    @property
    def speed(self) -> float:
        """Speed estimate in metres per second."""
        return float(np.linalg.norm(self.velocity))


class ClusterTracker:
    """Greedy nearest-neighbour tracker over per-frame detections."""

    def __init__(self, config: Optional[TrackerConfig] = None):
        self.config = config or TrackerConfig()
        self._tracks: Dict[int, Track] = {}
        self._next_id = 0
        self._last_timestamp: Optional[float] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def tracks(self) -> List[Track]:
        """All live tracks (tentative and confirmed)."""
        return list(self._tracks.values())

    @property
    def confirmed_tracks(self) -> List[Track]:
        """Tracks that accumulated enough hits to be trusted."""
        return [track for track in self._tracks.values() if track.confirmed]

    @property
    def tracks_spawned(self) -> int:
        """Total number of tracks ever created (including dropped ones)."""
        return self._next_id

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def update(self, detections: Sequence[DetectedObject], timestamp: float) -> List[Track]:
        """Ingest one frame of detections; returns the confirmed tracks.

        Association is greedy nearest-neighbour on predicted centroids with a
        gating radius, which matches the lightweight trackers used on top of
        euclidean clustering in practice.
        """
        dt = 0.0
        if self._last_timestamp is not None:
            dt = max(timestamp - self._last_timestamp, 0.0)
        self._last_timestamp = timestamp

        assignments = self._associate(detections, dt)
        matched_tracks = set()
        matched_detections = set()
        for track_id, detection_index in assignments:
            self._update_track(self._tracks[track_id], detections[detection_index], dt)
            matched_tracks.add(track_id)
            matched_detections.add(detection_index)

        for track_id, track in list(self._tracks.items()):
            if track_id in matched_tracks:
                continue
            track.misses += 1
            track.age += 1
            track.centroid = track.predict(dt)
            if track.misses > self.config.max_misses:
                del self._tracks[track_id]

        for detection_index, detection in enumerate(detections):
            if detection_index not in matched_detections:
                self._spawn_track(detection)

        return self.confirmed_tracks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _associate(self, detections: Sequence[DetectedObject],
                   dt: float) -> List[Tuple[int, int]]:
        """Greedy gated nearest-neighbour assignment (track_id, detection_index)."""
        if not detections or not self._tracks:
            return []
        candidates: List[Tuple[float, int, int]] = []
        for track_id, track in self._tracks.items():
            predicted = track.predict(dt)
            for detection_index, detection in enumerate(detections):
                distance = float(np.linalg.norm(predicted - detection.centroid))
                if distance <= self.config.gating_distance:
                    candidates.append((distance, track_id, detection_index))
        candidates.sort()
        assignments: List[Tuple[int, int]] = []
        used_tracks: set = set()
        used_detections: set = set()
        for distance, track_id, detection_index in candidates:
            if track_id in used_tracks or detection_index in used_detections:
                continue
            assignments.append((track_id, detection_index))
            used_tracks.add(track_id)
            used_detections.add(detection_index)
        return assignments

    def _update_track(self, track: Track, detection: DetectedObject, dt: float) -> None:
        if dt > 0.0:
            instantaneous = (detection.centroid - track.centroid) / dt
            alpha = self.config.velocity_smoothing
            track.velocity = alpha * instantaneous + (1.0 - alpha) * track.velocity
        track.centroid = np.asarray(detection.centroid, dtype=np.float64)
        track.bbox = detection.bbox
        track.label = detection.label
        track.hits += 1
        track.misses = 0
        track.age += 1
        if track.hits >= self.config.confirmation_hits:
            track.confirmed = True

    def _spawn_track(self, detection: DetectedObject) -> None:
        track = Track(
            track_id=self._next_id,
            centroid=np.asarray(detection.centroid, dtype=np.float64),
            velocity=np.zeros(3),
            bbox=detection.bbox,
            label=detection.label,
            confirmed=self.config.confirmation_hits <= 1,
        )
        self._tracks[self._next_id] = track
        self._next_id += 1
