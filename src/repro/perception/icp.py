"""Point-to-point ICP registration (baseline comparator).

NDT is one of two registration families the paper cites for LiDAR
localization; the other is the classic Iterative Closest Point algorithm
(Besl & McKay).  ICP's correspondence step is a nearest-neighbour search over
the map's k-d tree, so it is another consumer of the structures this library
accelerates.  The implementation supports both the baseline kNN and the
compressed (Bonsai) kNN as the correspondence engine, returning identical
transforms either way; the baseline correspondence round is issued as one
batched kNN query per iteration through :mod:`repro.runtime`.

Only the rigid 3-DoF translation + yaw case is solved (the planar motion an
autonomous vehicle performs between consecutive frames), using the standard
SVD-based closed form per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_knn import BonsaiNearestNeighbors
from ..kdtree.build import KDTree, build_kdtree
from ..kdtree.radius_search import SearchStats
from ..pointcloud.cloud import PointCloud
from ..runtime.batch import batch_knn

__all__ = ["ICPConfig", "ICPResult", "ICPMatcher"]


@dataclass
class ICPConfig:
    """Parameters of the ICP matcher."""

    max_iterations: int = 20
    #: Correspondences farther than this are rejected as outliers (metres).
    max_correspondence_distance: float = 1.5
    #: Convergence threshold on the per-iteration transform update.
    convergence_translation: float = 1e-4
    convergence_rotation_rad: float = 1e-4
    #: Scan points are sub-sampled to at most this many before matching.
    max_scan_points: int = 400


@dataclass
class ICPResult:
    """Outcome of one ICP registration."""

    rotation: np.ndarray
    translation: np.ndarray
    iterations: int
    converged: bool
    inlier_rmse: float
    n_correspondences: int

    @property
    def yaw(self) -> float:
        """Estimated yaw angle (radians) of the planar rotation."""
        return float(np.arctan2(self.rotation[1, 0], self.rotation[0, 0]))


class ICPMatcher:
    """Registers scans against a map cloud with point-to-point ICP."""

    def __init__(self, map_cloud: PointCloud, config: Optional[ICPConfig] = None,
                 use_bonsai: bool = False):
        if map_cloud.is_empty:
            raise ValueError("cannot build an ICP matcher over an empty map")
        self.config = config or ICPConfig()
        self.use_bonsai = use_bonsai
        self.tree: KDTree = build_kdtree(map_cloud)
        self.search_stats = SearchStats()
        self._bonsai_knn = BonsaiNearestNeighbors(self.tree) if use_bonsai else None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register(self, scan: PointCloud,
                 initial_translation: Sequence[float] = (0.0, 0.0, 0.0),
                 initial_yaw: float = 0.0) -> ICPResult:
        """Estimate the planar rigid transform aligning ``scan`` onto the map."""
        config = self.config
        points = scan.points.astype(np.float64)
        if points.shape[0] > config.max_scan_points:
            step = points.shape[0] // config.max_scan_points
            points = points[::step][: config.max_scan_points]

        rotation = _yaw_rotation(initial_yaw)
        translation = np.asarray(initial_translation, dtype=np.float64).copy()
        converged = False
        rmse = float("inf")
        n_inliers = 0
        iterations = 0

        for iterations in range(1, config.max_iterations + 1):
            transformed = points @ rotation.T + translation
            sources, targets = self._correspondences(points, transformed)
            n_inliers = sources.shape[0]
            if n_inliers < 3:
                break
            step_rotation, step_translation = _best_planar_transform(
                sources @ rotation.T + translation, targets
            )
            rotation = step_rotation @ rotation
            translation = step_rotation @ translation + step_translation

            residuals = (sources @ rotation.T + translation) - targets
            rmse = float(np.sqrt(np.mean(np.sum(residuals ** 2, axis=1))))
            delta_t = float(np.linalg.norm(step_translation))
            delta_yaw = abs(float(np.arctan2(step_rotation[1, 0], step_rotation[0, 0])))
            if delta_t < config.convergence_translation and \
                    delta_yaw < config.convergence_rotation_rad:
                converged = True
                break

        return ICPResult(
            rotation=rotation,
            translation=translation,
            iterations=iterations,
            converged=converged,
            inlier_rmse=rmse,
            n_correspondences=n_inliers,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _correspondences(self, sources: np.ndarray,
                         transformed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Nearest map point of every transformed scan point, gated by distance.

        The baseline path issues all scan points as one batched 1-NN query
        (:func:`repro.runtime.batch_knn`); the Bonsai path screens each point
        against the compressed leaves.  Both return exact nearest neighbours,
        so the resulting transforms are identical — up to exact distance
        ties, where the batched engine picks the lowest-index point among the
        equidistant candidates.
        """
        max_distance = self.config.max_correspondence_distance
        if self._bonsai_knn is not None:
            kept_sources: List[np.ndarray] = []
            kept_targets: List[np.ndarray] = []
            for source, point in zip(sources, transformed):
                index, distance = self._bonsai_knn.search(point, k=1)[0]
                if distance <= max_distance:
                    kept_sources.append(source)
                    kept_targets.append(self.tree.points_f64[index])
            if not kept_sources:
                return np.empty((0, 3)), np.empty((0, 3))
            return np.vstack(kept_sources), np.vstack(kept_targets)

        nearest = batch_knn(self.tree, transformed, k=1, stats=self.search_stats)
        keep = nearest.distances[:, 0] <= max_distance
        if not keep.any():
            return np.empty((0, 3)), np.empty((0, 3))
        return sources[keep], self.tree.points_f64[nearest.indices[keep, 0]]


def _yaw_rotation(yaw: float) -> np.ndarray:
    cos_yaw, sin_yaw = np.cos(yaw), np.sin(yaw)
    return np.array([
        [cos_yaw, -sin_yaw, 0.0],
        [sin_yaw, cos_yaw, 0.0],
        [0.0, 0.0, 1.0],
    ])


def _best_planar_transform(sources: np.ndarray,
                           targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form yaw + translation minimising point-to-point error.

    The standard 2D Umeyama/SVD solution applied to the xy components, with z
    translation taken from the centroid difference.
    """
    source_centroid = sources.mean(axis=0)
    target_centroid = targets.mean(axis=0)
    source_centered = sources[:, :2] - source_centroid[:2]
    target_centered = targets[:, :2] - target_centroid[:2]
    covariance = source_centered.T @ target_centered
    u, _, vt = np.linalg.svd(covariance)
    rotation_2d = vt.T @ u.T
    if np.linalg.det(rotation_2d) < 0:
        vt[1, :] *= -1.0
        rotation_2d = vt.T @ u.T
    rotation = np.eye(3)
    rotation[:2, :2] = rotation_2d
    translation = target_centroid - rotation @ source_centroid
    return rotation, translation
