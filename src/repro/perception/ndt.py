"""Simplified NDT (Normal Distributions Transform) scan registration.

Autoware's localization node (``ndt_matching``) registers each LiDAR scan
against a point cloud map.  Its inner loop radius-searches a k-d tree built
over the map's voxel distributions to find the Gaussians influencing each scan
point — which is why Figure 2 of the paper attributes ~51% of NDT matching to
radius search.

This implementation keeps the structure that matters for the reproduction:

* the map is voxelised and each voxel stores a Gaussian (mean, covariance),
  as in ``pcl::VoxelGridCovariance``;
* a k-d tree is built over the voxel means;
* every optimisation iteration radius-searches that tree once per scan point
  (all scan points of an iteration are issued as one batched query through
  :mod:`repro.runtime`);
* a 3-DoF (translation) Newton optimisation maximises the NDT score.

The restriction to translation keeps the optimiser small while leaving the
radius-search workload (the part the paper accelerates) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..core.compressed_leaf import compress_tree
from ..engine.execution import ExecutionConfig
from ..kdtree.build import KDTree, build_kdtree
from ..kdtree.layout import TreeMemoryLayout
from ..kdtree.radius_search import MemoryRecorder, SearchStats
from ..pointcloud.cloud import PointCloud

__all__ = ["VoxelGaussian", "NDTConfig", "NDTResult", "NDTMap", "NDTMatcher"]


@dataclass(frozen=True)
class VoxelGaussian:
    """Gaussian fitted to the map points falling in one voxel."""

    mean: np.ndarray
    covariance: np.ndarray
    inverse_covariance: np.ndarray
    n_points: int


@dataclass
class NDTConfig:
    """Parameters of the simplified NDT matcher."""

    voxel_size: float = 2.0
    search_radius: float = 2.5
    max_iterations: int = 10
    convergence_translation: float = 1e-3
    min_points_per_voxel: int = 4
    step_damping: float = 0.7
    max_scan_points: int = 400
    outlier_ratio: float = 0.55
    #: Lower bound on the per-axis standard deviation of a voxel Gaussian.
    #: Thin surfaces (walls) otherwise produce nearly singular covariances
    #: whose basin of attraction is narrower than typical odometry error.
    min_component_std: float = 0.2
    #: Maximum translation update per iteration (fraction of the voxel size).
    max_step_fraction: float = 0.25


@dataclass
class NDTResult:
    """Outcome of one registration."""

    translation: np.ndarray
    iterations: int
    converged: bool
    final_score: float
    search_stats: SearchStats


class NDTMap:
    """Voxelised Gaussian map plus a k-d tree over the voxel means."""

    def __init__(self, map_cloud: PointCloud, config: Optional[NDTConfig] = None):
        self.config = config or NDTConfig()
        if map_cloud.is_empty:
            raise ValueError("cannot build an NDT map from an empty cloud")
        self.voxels = self._build_voxels(map_cloud)
        if not self.voxels:
            raise ValueError(
                "no voxel accumulated enough points; decrease min_points_per_voxel "
                "or increase voxel_size"
            )
        means = np.array([voxel.mean for voxel in self.voxels], dtype=np.float32)
        self.tree: KDTree = build_kdtree(means)

    def _build_voxels(self, cloud: PointCloud) -> List[VoxelGaussian]:
        config = self.config
        points = cloud.points.astype(np.float64)
        keys = np.floor(points / config.voxel_size).astype(np.int64)
        voxels: List[VoxelGaussian] = []
        _, inverse = np.unique(keys, axis=0, return_inverse=True)
        buckets: Dict[int, List[int]] = {}
        for index, bucket in enumerate(inverse):
            buckets.setdefault(int(bucket), []).append(index)
        for indices in buckets.values():
            if len(indices) < config.min_points_per_voxel:
                continue
            subset = points[indices]
            mean = subset.mean(axis=0)
            centered = subset - mean
            covariance = centered.T @ centered / max(len(indices) - 1, 1)
            # Regularise small eigenvalues (as PCL's VoxelGridCovariance does)
            # so the inverse exists and thin surfaces keep a usable basin.
            eigvals, eigvecs = np.linalg.eigh(covariance)
            floor = max(max(eigvals.max(), 1e-6) * 1e-2, config.min_component_std ** 2)
            eigvals = np.maximum(eigvals, floor)
            covariance = eigvecs @ np.diag(eigvals) @ eigvecs.T
            voxels.append(
                VoxelGaussian(
                    mean=mean,
                    covariance=covariance,
                    inverse_covariance=np.linalg.inv(covariance),
                    n_points=len(indices),
                )
            )
        return voxels


class NDTMatcher:
    """Registers a scan against an :class:`NDTMap` by translation-only NDT.

    The per-iteration neighbour lookup — one radius search per transformed
    scan point — goes through the execution backend selected by
    :class:`~repro.engine.execution.ExecutionConfig` (batched by default).
    All backends return identical results and accumulate identical
    :class:`SearchStats`.

    With a memory ``recorder`` attached the recorded per-query backend of
    the configured flavour is used instead, so every map-tree load streams
    through the trace-driven cache simulation (:mod:`repro.hwmodel.cache`);
    results stay identical — the per-query hits are re-sorted by point
    index, matching the batched engine's order, so even the floating-point
    summation order of the NDT score is preserved.
    """

    def __init__(self, ndt_map: NDTMap, use_bonsai: bool = False,
                 recorder: Optional[MemoryRecorder] = None,
                 execution: Optional[ExecutionConfig] = None):
        self.map = ndt_map
        self.config = ndt_map.config
        if execution is None:
            execution = ExecutionConfig(
                backend="bonsai-batched" if use_bonsai else "baseline-batched")
        self.execution = execution
        self.use_bonsai = execution.use_bonsai
        if recorder is None and execution.hardware:
            recorder = execution.make_recorder()
        self.recorder = recorder
        if recorder is not None:
            layout = TreeMemoryLayout(n_points=ndt_map.tree.n_points)
            if self.use_bonsai:
                # Compress the map tree *before* attaching the recorder: map
                # preparation is offline (unlike the per-frame clustering
                # trees), so its compression traffic must neither enter the
                # localization trace nor pre-warm the simulated caches.
                if getattr(ndt_map.tree, "compressed_array", None) is None:
                    compress_tree(ndt_map.tree)
            self._backend = execution.make_backend(
                ndt_map.tree, recorder=recorder, layout=layout)
        else:
            self._backend = execution.make_backend(ndt_map.tree)
        self._batch_search = self._backend.radius_search
        self._stats = self._backend.stats

    @property
    def search_stats(self) -> SearchStats:
        """Radius-search counters accumulated across registrations."""
        return self._stats

    @property
    def bonsai_stats(self) -> Optional[BonsaiStats]:
        """Compressed-search counters (``None`` in the baseline configuration)."""
        return self._backend.bonsai_stats

    def register(self, scan: PointCloud,
                 initial_translation: Sequence[float] = (0.0, 0.0, 0.0)) -> NDTResult:
        """Estimate the translation aligning ``scan`` onto the map."""
        config = self.config
        translation = np.asarray(initial_translation, dtype=np.float64).copy()
        points = scan.points.astype(np.float64)
        if points.shape[0] > config.max_scan_points:
            step = points.shape[0] // config.max_scan_points
            points = points[::step][: config.max_scan_points]

        score = 0.0
        converged = False
        iterations = 0
        max_step = config.max_step_fraction * config.voxel_size
        for iterations in range(1, config.max_iterations + 1):
            score, gradient, hessian = self._evaluate(points, translation)
            delta = self._ascent_step(gradient, hessian, max_step)
            delta *= config.step_damping
            translation += delta
            if float(np.linalg.norm(delta)) < config.convergence_translation:
                converged = True
                break
        return NDTResult(
            translation=translation,
            iterations=iterations,
            converged=converged,
            final_score=score,
            search_stats=self._stats,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _ascent_step(gradient: np.ndarray, hessian: np.ndarray, max_step: float) -> np.ndarray:
        """Safeguarded Newton step for maximising the NDT score.

        Away from the optimum the Hessian is often indefinite; in that case
        (or when the Newton direction is not an ascent direction) fall back to
        a gradient-ascent step.  Steps are clamped to ``max_step``.
        """
        grad_norm = float(np.linalg.norm(gradient))
        if grad_norm == 0.0:
            return np.zeros(3)
        try:
            delta = np.linalg.solve(hessian - 1e-6 * np.eye(3), -gradient)
        except np.linalg.LinAlgError:
            delta = gradient / grad_norm * max_step
        # The score is maximised: a valid step must have positive projection
        # on the gradient.
        if float(delta @ gradient) <= 0.0 or not np.all(np.isfinite(delta)):
            delta = gradient / grad_norm * max_step
        norm = float(np.linalg.norm(delta))
        if norm > max_step:
            delta = delta / norm * max_step
        return delta

    def _evaluate(self, points: np.ndarray,
                  translation: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
        """NDT score, gradient and Hessian w.r.t. the translation."""
        config = self.config
        score = 0.0
        gradient = np.zeros(3)
        hessian = np.zeros((3, 3))
        transformed = points + translation
        neighbors = self._batch_search(transformed, config.search_radius)
        for point_index, point in enumerate(transformed):
            for voxel_index in neighbors.indices_for(point_index):
                voxel = self.map.voxels[voxel_index]
                diff = point - voxel.mean
                exponent = -0.5 * float(diff @ voxel.inverse_covariance @ diff)
                # Clamp to avoid overflow for far-away voxels.
                weight = float(np.exp(max(exponent, -50.0)))
                score += weight
                grad_term = weight * (voxel.inverse_covariance @ diff)
                gradient += -grad_term
                hessian += weight * (
                    np.outer(voxel.inverse_covariance @ diff, voxel.inverse_covariance @ diff)
                    - voxel.inverse_covariance
                )
        return score, gradient, hessian
