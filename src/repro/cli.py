"""Command-line interface for the K-D Bonsai reproduction.

The CLI exposes the most common flows without writing Python:

``python -m repro generate``
    Generate synthetic LiDAR frames and write them as PCD or NPZ files.
``python -m repro compress-stats``
    Report the compression opportunity (sign/exponent sharing, compressed
    footprint, recompute rate) of one frame.
``python -m repro cluster``
    Run euclidean clustering (baseline or Bonsai) on one frame and print the
    detections.
``python -m repro compare``
    Run the baseline-vs-Bonsai pipeline over a few frames and print the
    Figure 9/11/12-style summary.
``python -m repro batch-sweep``
    Run a batched radius/kNN query sweep over one frame through a named
    execution backend (``--backend``, from the :mod:`repro.engine` registry)
    and report throughput, search statistics and — with ``--compare-loop`` —
    the speed-up over the per-query backend of the same flavour.
``python -m repro scenarios list``
    Enumerate the registered scenario worlds (:mod:`repro.scenarios`).
``python -m repro pipeline --scenario <name>``
    Run the end-to-end perception pipeline (clustering → filtering →
    tracking → NDT localization) over a scenario sequence and print the
    per-stage report.  ``--backend`` selects the execution backend by name
    (including the multiprocessing ``*-batched-mp`` strategies); with
    ``--hardware`` the search stages run through the trace-driven
    cache/timing/energy models (:mod:`repro.hwmodel`) and the per-stage
    hardware report (miss ratios, bytes per level, cycles, energy) is
    printed as well.
``python -m repro hw-sweep``
    Run the hardware-in-the-loop scenario matrix — every selected world ×
    execution backend through the trace-driven models — across ``--jobs``
    worker processes with a deterministic merge, and print the matrix.
    With ``--cache-geometry`` (repeatable) the matrix is re-run per named
    L1/L2 geometry variation and the cache-sensitivity table is printed
    instead (see ``docs/PERFORMANCE.md`` for how to read it).  With
    ``--tile-size`` the sweep switches to map scale: one sharded index
    (:class:`~repro.engine.sharded.ShardedPointCloudIndex`) over a
    1M+-point map cloud, probed in recorded mode across the L2-size cut,
    printing the map-scale sensitivity table.
``python -m repro serve-bench``
    Run the serving-load experiment (:mod:`repro.serve.loadgen`): one
    shared-memory :class:`~repro.serve.store.SharedCloudStore` (built and
    compressed exactly once) serving ``--clients`` attaching client
    processes firing mixed radius/kNN traffic; prints fleet throughput and
    per-class p50/p95/p99 latency (the ``bench_serving_load.py`` table).
``python -m repro campaign``
    Run a differential-testing campaign (:mod:`repro.campaign`):
    ``--budget`` seed-derived randomized worlds, each fired at every
    selected backend (plus the recorded hardware wrappers), results and
    statistics diffed pairwise, divergences shrunk to minimal pytest
    reproducers.  Writes a JSON manifest under ``--out-dir`` and exits
    non-zero when any divergence was found.
``python -m repro lint``
    Run the project-native static analyzer (:mod:`repro.lint`) over the
    given paths (default ``src``): determinism, resource-lifecycle and
    multiprocessing-safety rules, with inline suppressions and an optional
    ``--baseline`` of grandfathered findings.  Exits non-zero on any new
    unsuppressed finding.  ``docs/LINT.md`` catalogs the rules.
``python -m repro trends record|report|dashboard``
    Golden-metric trend tracking (:mod:`repro.trends`): ``record`` merges
    on-disk artifacts (golden snapshots, campaign manifests) into a
    per-family JSONL store; ``report`` runs the baseline-vs-head
    regression detector and exits non-zero on flagged drift; ``dashboard``
    renders the byte-deterministic static HTML explorer.  The benchmark
    scripts record their regenerated matrices into the same store when
    ``REPRO_TRENDS_DIR`` is set (see ``docs/TRENDS.md``).

Scenario names, backend names, cache-geometry names and lint-rule names in
``--help`` output come straight from their registries (:mod:`repro.scenarios`,
:mod:`repro.engine`, :mod:`repro.analysis.cache_sweep`, :mod:`repro.lint`),
so the listings never drift from the code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (worker/job counts)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser.

    Scenario-, backend- and geometry-taking commands pull the available
    names from their registries at parser-build time, so ``--help`` always
    lists exactly the registered scenarios, execution backends and cache
    geometries — there is no hand-maintained list to drift.
    """
    from .analysis.cache_sweep import geometry_names
    from .engine import backend_names
    from .scenarios import scenario_names

    registered = ", ".join(scenario_names())
    backends = backend_names()
    geometries = geometry_names()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="K-D Bonsai reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate synthetic LiDAR frames and write them to disk")
    generate.add_argument("--frames", type=int, default=3, help="number of frames")
    generate.add_argument("--output-dir", type=Path, default=Path("frames"),
                          help="directory to write frames into")
    generate.add_argument("--format", choices=("pcd", "npz"), default="pcd",
                          help="output file format")
    generate.add_argument("--seed", type=int, default=7, help="scene random seed")

    compress = subparsers.add_parser(
        "compress-stats", help="report the compression opportunity of one frame")
    compress.add_argument("--frame", type=int, default=0, help="frame index")
    compress.add_argument("--seed", type=int, default=7, help="scene random seed")
    compress.add_argument("--radius", type=float, default=0.6, help="search radius [m]")

    cluster = subparsers.add_parser(
        "cluster", help="run euclidean clustering on one synthetic frame")
    cluster.add_argument("--frame", type=int, default=0, help="frame index")
    cluster.add_argument("--seed", type=int, default=7, help="scene random seed")
    cluster.add_argument("--tolerance", type=float, default=0.6,
                         help="clustering tolerance (radius) [m]")
    cluster.add_argument("--bonsai", action="store_true",
                         help="use the K-D Bonsai compressed search")

    compare = subparsers.add_parser(
        "compare", help="baseline vs Bonsai summary over a few frames")
    compare.add_argument("--frames", type=int, default=4, help="number of frames")
    compare.add_argument("--seed", type=int, default=7, help="scene random seed")

    sweep = subparsers.add_parser(
        "batch-sweep", help="run a batched query sweep through the vectorised engine")
    sweep.add_argument("--frame", type=int, default=0, help="frame index")
    sweep.add_argument("--seed", type=int, default=7, help="scene random seed")
    sweep.add_argument("--queries", type=int, default=10000,
                       help="number of queries in the sweep")
    sweep.add_argument("--radius", type=float, default=0.6, help="search radius [m]")
    sweep.add_argument("--k", type=int, default=5, help="neighbours per kNN query")
    sweep.add_argument("--backend", choices=backends, default=None,
                       help="execution backend for the radius sweep "
                            "(default: baseline-batched)")
    sweep.add_argument("--engine", choices=("baseline", "bonsai"), default=None,
                       help="legacy flavour selector; prefer --backend")
    sweep.add_argument("--compare-loop", action="store_true",
                       help="also time the per-query backend of the same flavour "
                            "and print the speed-up")

    scenarios = subparsers.add_parser(
        "scenarios", help="inspect the registered scenario library",
        description=f"Registered scenarios: {registered}")
    scenarios.add_argument("action", choices=("list",),
                           help="what to do (list: print the registry)")
    scenarios.add_argument("--seed", type=int, default=None,
                           help="seed used when counting scene obstacles")

    pipeline = subparsers.add_parser(
        "pipeline", help="run the end-to-end perception pipeline on a scenario")
    pipeline.add_argument("--scenario", default="urban",
                          help=f"registered scenario name, one of: {registered}")
    pipeline.add_argument("--frames", type=int, default=4, help="number of frames")
    pipeline.add_argument("--seed", type=int, default=None,
                          help="scene/sensor seed (default: the scenario's)")
    pipeline.add_argument("--beams", type=int, default=None,
                          help="LiDAR beams (default: the scenario's)")
    pipeline.add_argument("--azimuth-steps", type=int, default=None,
                          help="LiDAR azimuth steps (default: the scenario's)")
    pipeline.add_argument("--backend", choices=backends, default=None,
                          help="execution backend serving the search stages "
                               "(default: baseline-batched, or bonsai-batched "
                               "with --bonsai)")
    pipeline.add_argument("--bonsai", action="store_true",
                          help="use the K-D Bonsai compressed search "
                               "(shorthand for --backend bonsai-batched)")
    pipeline.add_argument("--no-localization", action="store_true",
                          help="skip the NDT localization stage")
    pipeline.add_argument("--hardware", action="store_true",
                          help="hardware-in-the-loop mode: run the search stages "
                               "through the trace-driven cache/timing/energy models "
                               "and print the per-stage hardware report")

    hw_sweep = subparsers.add_parser(
        "hw-sweep",
        help="parallel hardware-in-the-loop sweep across scenarios "
             "(optionally across cache geometries)",
        description=f"Registered scenarios: {registered}")
    hw_sweep.add_argument("--scenario", action="append", dest="scenarios",
                          default=None, metavar="NAME",
                          help="scenario to include (repeatable; "
                               "default: every registered scenario)")
    hw_sweep.add_argument("--backend", action="append", dest="backends",
                          choices=backends, default=None,
                          help="execution backend to sweep (repeatable; "
                               "default: baseline-batched and bonsai-batched)")
    hw_sweep.add_argument("--frames", type=int, default=3,
                          help="frames per scenario run")
    hw_sweep.add_argument("--seed", type=int, default=None,
                          help="scene/sensor seed (default: the scenario's)")
    hw_sweep.add_argument("--beams", type=int, default=18, help="LiDAR beams")
    hw_sweep.add_argument("--azimuth-steps", type=int, default=180,
                          help="LiDAR azimuth steps")
    hw_sweep.add_argument("--jobs", type=_positive_int, default=None,
                          help="worker processes running sweep cells "
                               "(default: auto — at most 4, honours "
                               "REPRO_MP_WORKERS; 1 = serial)")
    hw_sweep.add_argument("--cache-geometry", action="append",
                          dest="cache_geometries", choices=geometries,
                          default=None,
                          help="re-run the matrix under this named L1/L2 "
                               "geometry and print the sensitivity table "
                               "(repeatable; omit for the plain matrix)")
    hw_sweep.add_argument("--tile-size", type=float, default=None,
                          metavar="METRES",
                          help="map-scale mode: shard a map-scale cloud into "
                               "XY tiles of this size and print the map-scale "
                               "cache-sensitivity table instead (uses the "
                               "first --scenario; default: city_block)")
    hw_sweep.add_argument("--map-points", type=_positive_int, default=1_000_000,
                          help="map-scale mode: points in the sampled map "
                               "cloud")
    hw_sweep.add_argument("--map-queries", type=_positive_int, default=256,
                          help="map-scale mode: radius queries in the "
                               "recorded batch")

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="serving load: N client processes attach to one shared-memory "
             "store and fire mixed radius/kNN traffic")
    serve_bench.add_argument("--clients", type=_positive_int, default=4,
                             help="client processes attaching to the store")
    serve_bench.add_argument("--points", type=_positive_int, default=15_000,
                             help="points in the shared cloud")
    serve_bench.add_argument("--requests", type=_positive_int, default=24,
                             help="requests per client")
    serve_bench.add_argument("--queries", type=_positive_int, default=96,
                             help="queries per request batch")
    serve_bench.add_argument("--radius", type=float, default=0.6,
                             help="radius of the radius-search requests [m]")
    serve_bench.add_argument("--k", type=int, default=5,
                             help="neighbours per kNN request")
    serve_bench.add_argument("--seed", type=int, default=7,
                             help="cloud/request-stream seed")

    campaign = subparsers.add_parser(
        "campaign",
        help="differential-testing campaign: randomized worlds x every "
             "backend, divergences diffed and shrunk",
        description=f"Registered scenarios: {registered}")
    campaign.add_argument("--budget", type=_positive_int, default=25,
                          help="number of randomized worlds to test")
    campaign.add_argument("--seed", type=int, default=0,
                          help="campaign seed (worlds derive from it "
                               "deterministically)")
    campaign.add_argument("--backend", action="append", dest="backends",
                          choices=backends, default=None,
                          help="backend under test (repeatable; default: "
                               "every registered backend)")
    campaign.add_argument("--scenario", action="append", dest="scenarios",
                          default=None, metavar="NAME",
                          help="restrict sampled worlds to this scenario "
                               "(repeatable; default: every registered one)")
    campaign.add_argument("--out-dir", type=Path,
                          default=Path("campaign-results"),
                          help="directory the campaign result dir is "
                               "written under")
    campaign.add_argument("--no-recorded", action="store_true",
                          help="skip the recorded hardware-wrapper diffs")
    campaign.add_argument("--no-shrink", action="store_true",
                          help="report divergences without shrinking them")
    campaign.add_argument("--max-shrink-evals", type=_positive_int,
                          default=200,
                          help="evaluation budget of each shrink run")

    from .lint import rule_names

    lint = subparsers.add_parser(
        "lint", help="run the project-native static analyzer",
        description=f"Registered rules: {', '.join(rule_names())} "
                    f"(catalog: docs/LINT.md)")
    lint.add_argument("paths", nargs="*", type=Path, default=[Path("src")],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format")
    lint.add_argument("--rule", action="append", dest="rules",
                      choices=rule_names(), default=None,
                      help="run only this rule (repeatable; default: all)")
    lint.add_argument("--baseline", type=Path, default=None,
                      help="baseline file of grandfathered findings; only "
                           "new findings fail the run")
    lint.add_argument("--write-baseline", type=Path, default=None,
                      help="write the current findings as a baseline file "
                           "and exit 0")
    lint.add_argument("--output", type=Path, default=None,
                      help="also write the report to this file")

    trends = subparsers.add_parser(
        "trends",
        help="golden-metric trend tracking: record runs, detect "
             "regressions, render the explorer dashboard",
        description="Trend store workflow (docs/TRENDS.md): benchmarks "
                    "record themselves when REPRO_TRENDS_DIR is set; "
                    "`record` ingests on-disk artifacts; `report` compares "
                    "a head run against a baseline commit; `dashboard` "
                    "renders the static HTML explorer.")
    trends_sub = trends.add_subparsers(dest="trends_command", required=True)

    def _store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dir", type=Path, dest="store_dir",
                         default=Path("benchmarks/trends"),
                         help="trend store directory "
                              "(default: benchmarks/trends)")

    record = trends_sub.add_parser(
        "record", help="merge on-disk artifacts into the trend store")
    _store_dir(record)
    record.add_argument("--commit", required=True,
                        help="commit id the records belong to "
                             "(CI passes the git SHA)")
    record.add_argument("--run-id", default=None,
                        help="run id within the commit (default: the commit)")
    record.add_argument("--order", type=int, default=0,
                        help="monotonic run sequence number the trend "
                             "x-axis sorts by (CI passes the run number)")
    record.add_argument("--golden", type=Path, default=None, metavar="DIR",
                        help="ingest the golden snapshot directory "
                             "(tests/golden) as golden-* records")
    record.add_argument("--campaign", action="append", type=Path,
                        dest="campaigns", default=None, metavar="MANIFEST",
                        help="ingest a campaign manifest.json (repeatable)")

    report = trends_sub.add_parser(
        "report", help="regression report: head records vs a baseline commit")
    _store_dir(report)
    report.add_argument("--baseline", required=True,
                        help="baseline commit to compare against")
    report.add_argument("--head", default=None,
                        help="head commit (default: the latest recorded run)")
    report.add_argument("--family", action="append", dest="families",
                        default=None, metavar="NAME",
                        help="restrict to this metric family (repeatable; "
                             "default: every family in the store)")

    dashboard = trends_sub.add_parser(
        "dashboard", help="render the static HTML trend explorer")
    _store_dir(dashboard)
    dashboard.add_argument("--output", type=Path,
                           default=Path("trends-dashboard.html"),
                           help="HTML file to write")
    dashboard.add_argument("--baseline", default=None,
                           help="baseline commit for regression highlighting "
                                "(default: the earliest recorded run)")
    dashboard.add_argument("--head", default=None,
                           help="head commit for regression highlighting "
                                "(default: the latest recorded run)")

    return parser


def _check_scenarios(command: str, names) -> None:
    """Exit with the registry listing when any scenario name is unknown.

    ``--scenario`` stays free-form in the parser (eight registered names
    would bloat ``--help`` as argparse choices), so commands validate here
    — same non-zero-exit-with-choices behaviour the ``choices``-backed
    ``--backend``/``--cache-geometry`` flags get from argparse.
    """
    from .scenarios import scenario_names

    registered = scenario_names()
    for name in names:
        if name not in registered:
            raise SystemExit(
                f"repro {command}: unknown scenario {name!r}; "
                f"registered: {', '.join(registered)}")


def _sequence(n_frames: int, seed: int):
    from .pointcloud import DrivingSequence, LidarConfig, SceneConfig, SequenceConfig

    return DrivingSequence(SequenceConfig(
        n_frames=max(n_frames, 1),
        scene=SceneConfig(seed=seed),
        lidar=LidarConfig(seed=seed * 101),
    ))


def _cmd_generate(args: argparse.Namespace) -> int:
    from .pointcloud import save_npz, save_pcd

    sequence = _sequence(args.frames, args.seed)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    for index in range(args.frames):
        cloud = sequence.frame(index)
        path = args.output_dir / f"frame_{index:04d}.{args.format}"
        if args.format == "pcd":
            save_pcd(path, cloud)
        else:
            save_npz(path, cloud)
        print(f"wrote {path} ({len(cloud)} points)")
    return 0


def _cmd_compress_stats(args: argparse.Namespace) -> int:
    from .core import leaf_similarity
    from .engine import PointCloudIndex
    from .pointcloud import preprocess_for_clustering

    sequence = _sequence(args.frame + 1, args.seed)
    cloud = preprocess_for_clustering(sequence.frame(args.frame))
    with PointCloudIndex(cloud) as index:
        similarity = leaf_similarity(index.tree)
        bonsai = index.backend("bonsai-perquery")
        for point_index in range(0, len(cloud), 10):
            bonsai.search(cloud[point_index], args.radius)
        report = index.compression_report

        print(f"frame {args.frame}: {len(cloud)} points, "
              f"{index.n_leaves} leaves")
        for coord, rate in similarity.share_rates.items():
            print(f"  {coord} sign/exponent shared in {rate:.1%} of leaves")
        print(f"  compressed footprint: {report.compressed_bytes} B "
              f"({report.compression_ratio:.1%} of baseline)")
        print(f"  recompute rate at radius {args.radius} m: "
              f"{bonsai.bonsai_stats.inconclusive_rate:.3%}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .perception import ClusterConfig, EuclideanClusterExtractor, label_clusters
    from .perception.cluster_filter import match_clusters_to_labels
    from .pointcloud import preprocess_for_clustering

    sequence = _sequence(args.frame + 1, args.seed)
    cloud = preprocess_for_clustering(sequence.frame(args.frame))
    extractor = EuclideanClusterExtractor(
        ClusterConfig(tolerance=args.tolerance), use_bonsai=args.bonsai)
    result = extractor.extract(cloud)
    detections = label_clusters(cloud, result.clusters)
    histogram = match_clusters_to_labels(detections)

    mode = "Bonsai-extensions" if args.bonsai else "baseline"
    print(f"frame {args.frame} ({mode} search): {len(cloud)} points -> "
          f"{result.n_clusters} clusters")
    for label, count in sorted(histogram.items()):
        print(f"  {label:12s} {count}")
    for detection in detections[:10]:
        center = np.round(detection.centroid, 2)
        print(f"  cluster {detection.cluster_id:3d}: {detection.label:10s} "
              f"at {center} with {detection.n_points} points")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import compare_measurements, render_fig9a, render_fig9b
    from .workloads import EuclideanClusterPipeline

    sequence = _sequence(args.frames, args.seed)
    clouds = [sequence.frame(i) for i in range(args.frames)]
    pipeline = EuclideanClusterPipeline()
    baseline = pipeline.run_frames(clouds, use_bonsai=False)
    bonsai = pipeline.run_frames(clouds, use_bonsai=True)
    summary = compare_measurements(baseline, bonsai)

    print(render_fig9a(summary))
    print()
    print(render_fig9b(summary))
    print()
    print(f"latency: mean -{summary.latency_improvements['mean_reduction']:.1%}, "
          f"p99 -{summary.latency_improvements['p99_reduction']:.1%}")
    print(f"energy:  mean -{summary.energy_improvements['mean_reduction']:.1%}")
    print(f"recomputed classifications: {summary.inconclusive_rate:.2%}")
    return 0


def _resolve_backend(args: argparse.Namespace) -> str:
    """The sweep's backend name from ``--backend`` (or legacy ``--engine``).

    Contradictory selections (``--engine bonsai --backend baseline-...``)
    are an error rather than a silent precedence.
    """
    engine = getattr(args, "engine", None)
    if args.backend is not None:
        if engine is not None and engine != args.backend.split("-", 1)[0]:
            raise SystemExit(
                f"repro batch-sweep: --engine {engine} conflicts with "
                f"--backend {args.backend}")
        return args.backend
    return "bonsai-batched" if engine == "bonsai" else "baseline-batched"


def _cmd_batch_sweep(args: argparse.Namespace) -> int:
    import time

    from .engine import PointCloudIndex
    from .pointcloud import preprocess_for_clustering

    sequence = _sequence(args.frame + 1, args.seed)
    cloud = preprocess_for_clustering(sequence.frame(args.frame))
    with PointCloudIndex(cloud) as index:

        rng = np.random.default_rng(args.seed * 13 + 1)
        base = cloud.points[rng.integers(0, len(cloud), args.queries)]
        queries = base.astype(np.float64) + rng.normal(0.0, 0.25, base.shape)

        backend_name = _resolve_backend(args)
        backend = index.backend(backend_name)

        start = time.perf_counter()
        radius_result = backend.radius_search(queries, args.radius)
        radius_seconds = time.perf_counter() - start
        start = time.perf_counter()
        knn_result = backend.knn(queries, args.k)
        knn_seconds = time.perf_counter() - start

        n_queries = max(args.queries, 0)
        mean_neighbors = radius_result.counts.mean() if n_queries else 0.0
        mean_nearest = knn_result.distances[:, 0].mean() if n_queries else 0.0
        print(f"frame {args.frame}: {len(cloud)} points, {index.n_leaves} leaves, "
              f"{n_queries} queries ({backend_name} backend)")
        print(f"  radius {args.radius} m: {radius_result.total_matches} matches, "
              f"{mean_neighbors:.1f} neighbours/query, "
              f"{n_queries / radius_seconds:,.0f} queries/s")
        print(f"  knn k={args.k}: mean nearest distance {mean_nearest:.3f} m, "
              f"{n_queries / knn_seconds:,.0f} queries/s")
        stats = backend.stats
        print(f"  stats: {stats.leaves_visited / max(stats.queries, 1):.1f} leaf visits/query, "
              f"{stats.points_examined} points examined, "
              f"{stats.point_bytes_loaded} B of leaf points loaded")

        if args.compare_loop:
            flavor = backend_name.split("-", 1)[0]
            loop_backend = index.backend(f"{flavor}-perquery")
            start = time.perf_counter()
            for query in queries:
                loop_backend.search(query, args.radius)
            loop_radius_seconds = time.perf_counter() - start
            start = time.perf_counter()
            loop_backend.knn(queries, args.k)
            loop_knn_seconds = time.perf_counter() - start
            print(f"  {flavor}-perquery backend: "
                  f"radius {args.queries / loop_radius_seconds:,.0f} queries/s "
                  f"({backend_name} is {loop_radius_seconds / radius_seconds:.1f}x faster), "
                  f"knn {args.queries / loop_knn_seconds:,.0f} queries/s "
                  f"({backend_name} is {loop_knn_seconds / knn_seconds:.1f}x faster)")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .scenarios import all_scenarios

    rows = []
    for spec in all_scenarios():
        scene = spec.scene(seed=args.seed)
        rows.append((
            spec.name,
            len(scene.obstacles),
            f"{spec.defaults.ego_speed_mps:g}",
            ",".join(spec.tags),
            spec.description,
        ))
    print(render_table(
        ("Scenario", "Obstacles", "Ego m/s", "Tags", "Description"),
        rows,
        title=f"Registered scenarios ({len(rows)})",
    ))
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .engine import ExecutionConfig
    from .workloads import PipelineRunner, PipelineRunnerConfig

    _check_scenarios("pipeline", [args.scenario])
    backend = args.backend
    if backend is None:
        backend = "bonsai-batched" if args.bonsai else "baseline-batched"
    elif args.bonsai and not backend.startswith("bonsai-"):
        raise SystemExit(
            f"repro pipeline: --bonsai conflicts with --backend {backend}")
    config = PipelineRunnerConfig(
        execution=ExecutionConfig(backend=backend, hardware=args.hardware),
        localization=not args.no_localization,
    )
    runner = PipelineRunner.from_scenario(
        args.scenario, config=config, n_frames=args.frames, seed=args.seed,
        n_beams=args.beams, n_azimuth_steps=args.azimuth_steps,
    )
    result = runner.run()
    metrics = result.metrics()

    mode = "Bonsai-extensions" if config.execution.use_bonsai else "baseline"
    rows = [
        (f.frame_index, f.n_raw_points, f.n_filtered_points, f.n_clusters,
         f.n_detections_kept, f.n_confirmed_tracks,
         f"{f.model_end_to_end_seconds * 1e3:.2f}")
        for f in result.frames
    ]
    print(render_table(
        ("Frame", "Raw pts", "Filtered", "Clusters", "Kept", "Tracks", "Latency [ms]"),
        rows,
        title=f"Pipeline `{args.scenario}` ({mode} search via {result.backend}, "
              f"{len(result.frames)} frames)",
    ))
    search = metrics["cluster_search"]
    print(f"\nclustering: {search['queries']} queries, "
          f"{search['leaves_visited']} leaf visits, "
          f"{search['point_bytes_loaded']:,} B of leaf points loaded")
    labels = ", ".join(f"{label} x{count}"
                       for label, count in metrics["track_labels"].items()) or "none"
    print(f"tracking:   {metrics['tracks_spawned']} spawned, "
          f"{metrics['confirmed_tracks_final']} confirmed ({labels})")
    if result.localization is not None:
        loc = result.localization
        print(f"localization: {loc.n_scans} scans, mean error {loc.mean_error_m:.3f} m, "
              f"max {loc.max_error_m:.3f} m, {loc.iterations_total} NDT iterations")
    if result.cluster_bonsai is not None:
        b = result.cluster_bonsai
        print(f"bonsai:     {b.leaf_visits} compressed leaf visits, "
              f"inconclusive rate {b.inconclusive_rate:.3%}")
    if result.hardware_stages is not None:
        rows = [
            (name,
             f"{report.l1_miss_ratio:.2%}",
             f"{report.l2_miss_ratio:.2%}",
             f"{report.bytes_loaded:,}",
             f"{report.l2_to_l1_bytes:,}",
             f"{report.dram_to_l2_bytes:,}",
             f"{report.cycles:,.0f}",
             f"{report.energy_j * 1e3:.3f}")
            for name, report in sorted(result.hardware_stages.items())
        ]
        print()
        print(render_table(
            ("Stage", "L1 miss", "L2 miss", "Demand B", "L2->L1 B",
             "DRAM->L2 B", "Cycles", "Energy [mJ]"),
            rows,
            title="Hardware (trace-driven cache + first-order timing/energy)",
        ))
    for stage, seconds in result.stage_seconds.items():
        print(f"  wall {stage:9s} {seconds * 1e3:8.1f} ms")
    return 0


def _cmd_hw_sweep(args: argparse.Namespace) -> int:
    from .analysis import (
        CacheGeometrySweep,
        HardwareScenarioSweep,
        render_cache_sensitivity,
        render_hw_matrix,
    )
    from .engine.parallel import resolve_workers

    if args.scenarios is not None:
        _check_scenarios("hw-sweep", args.scenarios)
    if args.tile_size is not None:
        # Map-scale mode: one sharded index, the L2-size geometry cut,
        # baseline vs Bonsai recorded traffic — not the scenario matrix.
        from .analysis import MapScaleSweep, render_map_scale_sensitivity

        if args.tile_size <= 0:
            raise SystemExit(
                f"repro hw-sweep: --tile-size must be positive, "
                f"got {args.tile_size:g}")
        scenario = args.scenarios[0] if args.scenarios else "city_block"
        sweep = MapScaleSweep(
            scenario, n_points=args.map_points, tile_size=args.tile_size,
            n_queries=args.map_queries,
            seed=args.seed if args.seed is not None else 7)
        result = sweep.run()
        print(render_map_scale_sensitivity(result))
        print(f"\nran {len(result.geometries) * len(result.flavors)} recorded "
              f"map-scale batches over {result.n_touched_tiles} of "
              f"{result.n_tiles} tiles")
        return 0
    if args.backends is not None and len(set(args.backends)) < 2:
        # The matrix and the sensitivity table both compare a backend pair;
        # a single --backend has nothing to compare against.
        raise SystemExit(
            "repro hw-sweep: need at least two distinct --backend values "
            "to compare (default: baseline-batched vs bonsai-batched)")
    jobs = resolve_workers(args.jobs)
    common = dict(n_frames=args.frames, seed=args.seed, n_beams=args.beams,
                  n_azimuth_steps=args.azimuth_steps, backends=args.backends,
                  n_jobs=jobs)
    if args.cache_geometries:
        sweep = CacheGeometrySweep(args.cache_geometries, args.scenarios,
                                   **common)
        print(render_cache_sensitivity(sweep.run()))
    else:
        sweep = HardwareScenarioSweep(args.scenarios, **common)
        print(render_hw_matrix(sweep.run()))
    print(f"\nran {len(sweep.tasks())} hardware-in-the-loop runs "
          f"across {jobs} worker process(es)")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve import render_serving_load, run_serving_load

    result = run_serving_load(
        n_clients=args.clients,
        n_points=args.points,
        n_requests=args.requests,
        n_queries=args.queries,
        radius=args.radius,
        k=args.k,
        seed=args.seed,
    )
    print(render_serving_load(result))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import CampaignConfig, run_campaign

    if args.scenarios is not None:
        _check_scenarios("campaign", args.scenarios)
    config = CampaignConfig(
        budget=args.budget,
        seed=args.seed,
        backends=args.backends,
        scenarios=args.scenarios,
        out_dir=args.out_dir,
        recorded=not args.no_recorded,
        shrink=not args.no_shrink,
        max_shrink_evals=args.max_shrink_evals,
    )
    result = run_campaign(config, log=print)
    backends = config.resolved_backends()
    print(f"\ncampaign seed {config.seed}: {config.budget} worlds x "
          f"{len(backends)} backend(s) "
          f"(reference {config.reference_backend()}), "
          f"{result.n_divergences} divergence(s)")
    print(f"manifest: {result.manifest_path}")
    if result.n_divergences:
        shrunk = [d for d in result.divergences if d.reproducer is not None]
        for divergence in shrunk:
            print(f"  reproducer: {result.result_dir / divergence.reproducer}")
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (load_baseline, render_json, render_text, run_lint,
                       write_baseline)

    baseline = load_baseline(args.baseline) if args.baseline else None
    report = run_lint(args.paths, rules=args.rules, baseline=baseline)
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report.findings)
        print(f"wrote baseline with {len(report.findings)} finding(s) "
              f"to {args.write_baseline}")
        return 0
    rendered = (render_json(report) if args.format == "json"
                else render_text(report) + "\n")
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
        print(f"wrote {args.format} report to {args.output}")
    print(rendered, end="")
    return 0 if report.ok else 1


def _cmd_trends(args: argparse.Namespace) -> int:
    import json

    from .trends import (TrendSchemaError, TrendStore, TrendStoreError,
                         collect_campaign_manifest, collect_golden_snapshots,
                         find_regressions, render_dashboard,
                         render_regressions)

    store = TrendStore(args.store_dir)
    try:
        if args.trends_command == "record":
            run_id = args.run_id if args.run_id is not None else args.commit
            records = []
            if args.golden is not None:
                if not args.golden.is_dir():
                    raise SystemExit(
                        f"repro trends record: golden directory "
                        f"{args.golden} does not exist")
                records.extend(collect_golden_snapshots(
                    args.golden, commit=args.commit, run_id=run_id,
                    order=args.order))
            for manifest_path in args.campaigns or []:
                if not manifest_path.is_file():
                    raise SystemExit(
                        f"repro trends record: campaign manifest "
                        f"{manifest_path} does not exist")
                try:
                    manifest = json.loads(
                        manifest_path.read_text(encoding="utf-8"))
                except json.JSONDecodeError as exc:
                    raise SystemExit(
                        f"repro trends record: {manifest_path} is not valid "
                        f"JSON ({exc})")
                records.extend(collect_campaign_manifest(
                    manifest, commit=args.commit, run_id=run_id,
                    order=args.order))
            if not records:
                raise SystemExit(
                    "repro trends record: nothing to record — pass --golden "
                    "and/or --campaign (benchmark matrices record themselves "
                    "when run with REPRO_TRENDS_DIR set)")
            touched = store.append(records)
            print(f"recorded {len(records)} record(s) for commit "
                  f"{args.commit} into {len(touched)} famil"
                  f"{'y' if len(touched) == 1 else 'ies'}:")
            for path in touched:
                print(f"  {path}")
            return 0
        if args.trends_command == "report":
            result = find_regressions(store, args.baseline,
                                      head_commit=args.head,
                                      families=args.families)
            print(render_regressions(result), end="")
            return 0 if result.ok else 1
        rendered = render_dashboard(store, baseline_commit=args.baseline,
                                    head_commit=args.head)
        args.output.write_text(rendered, encoding="utf-8")
        print(f"wrote trend dashboard to {args.output} "
              f"({len(rendered)} bytes)")
        return 0
    except (TrendStoreError, TrendSchemaError) as exc:
        raise SystemExit(f"repro trends {args.trends_command}: {exc}")


_COMMANDS = {
    "generate": _cmd_generate,
    "compress-stats": _cmd_compress_stats,
    "cluster": _cmd_cluster,
    "compare": _cmd_compare,
    "batch-sweep": _cmd_batch_sweep,
    "scenarios": _cmd_scenarios,
    "pipeline": _cmd_pipeline,
    "hw-sweep": _cmd_hw_sweep,
    "serve-bench": _cmd_serve_bench,
    "campaign": _cmd_campaign,
    "lint": _cmd_lint,
    "trends": _cmd_trends,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
