"""Compression-opportunity statistics (Section III-A of the paper).

The paper motivates value-similarity compression by measuring, over the point
clouds that feed Autoware's euclidean-cluster node, how often all points of a
k-d tree leaf share the same <sign, exponent> pair per coordinate (78% of
leaves for x, 83% for y).  This module computes those statistics for any
tree/cloud built by this library, both in the 32-bit source format and in the
reduced format actually stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..kdtree.build import KDTree
from .floatfmt import FLOAT16, FLOAT32, FloatFormat

__all__ = ["LeafSimilarityStats", "leaf_similarity", "aggregate_similarity"]

_COORD_NAMES = ("x", "y", "z")


@dataclass
class LeafSimilarityStats:
    """Sharing statistics across the leaves of one or more trees."""

    n_leaves: int = 0
    n_points: int = 0
    shared_per_coord: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in _COORD_NAMES}
    )
    fully_shared_leaves: int = 0
    format_name: str = FLOAT32.name

    def share_rate(self, coord: str) -> float:
        """Fraction of leaves whose ``coord`` shares <sign, exponent>."""
        if self.n_leaves == 0:
            return 0.0
        return self.shared_per_coord[coord] / self.n_leaves

    @property
    def share_rates(self) -> Dict[str, float]:
        """Sharing rate per coordinate name."""
        return {name: self.share_rate(name) for name in _COORD_NAMES}

    @property
    def fully_shared_rate(self) -> float:
        """Fraction of leaves where all three coordinates share."""
        if self.n_leaves == 0:
            return 0.0
        return self.fully_shared_leaves / self.n_leaves

    def merge(self, other: "LeafSimilarityStats") -> None:
        """Accumulate another stats object (must use the same format)."""
        if other.format_name != self.format_name:
            raise ValueError("cannot merge similarity stats computed in different formats")
        self.n_leaves += other.n_leaves
        self.n_points += other.n_points
        self.fully_shared_leaves += other.fully_shared_leaves
        for name in _COORD_NAMES:
            self.shared_per_coord[name] += other.shared_per_coord[name]


def _sign_exponent_fields(values: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """<sign, exponent> field of every value in ``values`` under ``fmt``."""
    flat = values.reshape(-1)
    fields = np.empty(flat.shape[0], dtype=np.uint32)
    for i, value in enumerate(flat):
        bits = fmt.encode(float(value))
        fields[i] = fmt.sign_exponent(bits)
    return fields.reshape(values.shape)


def leaf_similarity(tree: KDTree, fmt: FloatFormat = FLOAT32) -> LeafSimilarityStats:
    """Per-coordinate <sign, exponent> sharing statistics of ``tree``'s leaves.

    ``fmt`` selects the representation in which sharing is measured; the paper
    reports the 32-bit numbers as motivation, while the compression itself
    shares the fields of the 16-bit representation.
    """
    stats = LeafSimilarityStats(format_name=fmt.name)
    for leaf in tree.leaves:
        points = tree.leaf_points(leaf)
        fields = _sign_exponent_fields(points.astype(np.float64), fmt)
        stats.n_leaves += 1
        stats.n_points += leaf.n_points
        all_shared = True
        for c, name in enumerate(_COORD_NAMES):
            column = fields[:, c]
            if np.all(column == column[0]):
                stats.shared_per_coord[name] += 1
            else:
                all_shared = False
        if all_shared:
            stats.fully_shared_leaves += 1
    return stats


def aggregate_similarity(trees: Iterable[KDTree],
                         fmt: FloatFormat = FLOAT32) -> LeafSimilarityStats:
    """Similarity statistics accumulated over several trees (frames)."""
    total: Optional[LeafSimilarityStats] = None
    for tree in trees:
        stats = leaf_similarity(tree, fmt)
        if total is None:
            total = stats
        else:
            total.merge(stats)
    return total if total is not None else LeafSimilarityStats(format_name=fmt.name)
