"""Bit-level packing helpers used by the leaf compression layout.

The compressed leaf structure of Figure 6 is not byte aligned (3 flag bits,
10-bit mantissas, 6-bit sign/exponent tuples), so compression and
decompression need an explicit bit writer/reader.  Bits are packed MSB-first
within each byte, matching how the paper's compress/decompress logic streams
fields through the ZipPts buffer.
"""

from __future__ import annotations

from typing import List

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates values of arbitrary bit width into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_position = 0  # bits already used in the last byte

    def write(self, value: int, n_bits: int) -> None:
        """Append the ``n_bits`` least-significant bits of ``value``."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if value < 0 or value >= (1 << n_bits):
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        for shift in range(n_bits - 1, -1, -1):
            bit = (value >> shift) & 0x1
            if self._bit_position == 0:
                self._bytes.append(0)
            self._bytes[-1] |= bit << (7 - self._bit_position)
            self._bit_position = (self._bit_position + 1) % 8

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        if not self._bytes:
            return 0
        if self._bit_position == 0:
            return len(self._bytes) * 8
        return (len(self._bytes) - 1) * 8 + self._bit_position

    def to_bytes(self, pad_to: int = 1) -> bytes:
        """Finish the stream, zero-padding its length to a multiple of ``pad_to`` bytes."""
        if pad_to < 1:
            raise ValueError("pad_to must be at least 1")
        data = bytes(self._bytes)
        remainder = len(data) % pad_to
        if remainder:
            data += b"\x00" * (pad_to - remainder)
        return data


class BitReader:
    """Reads values of arbitrary bit width from a byte string (MSB-first)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # absolute bit position

    def read(self, n_bits: int) -> int:
        """Read the next ``n_bits`` bits as an unsigned integer."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if self._position + n_bits > len(self._data) * 8:
            raise ValueError("attempt to read past the end of the bit stream")
        value = 0
        for _ in range(n_bits):
            byte_index = self._position // 8
            bit_index = 7 - (self._position % 8)
            bit = (self._data[byte_index] >> bit_index) & 0x1
            value = (value << 1) | bit
            self._position += 1
        return value

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the stream."""
        return len(self._data) * 8 - self._position
