"""Binary floating-point formats used by K-D Bonsai.

The paper (Section III-B, Table I) compares four formats for storing the
coordinates of k-d tree leaf points:

* IEEE-754 single precision (32-bit) -- the baseline used by PCL/Autoware.
* IEEE-754 half precision (16-bit) -- the format chosen by K-D Bonsai.
* bfloat16 (1 sign, 8 exponent, 7 mantissa bits).
* a custom 24-bit float (1 sign, 5 exponent, 18 mantissa bits).

This module provides a generic :class:`FloatFormat` codec implementing
round-to-nearest-even conversion from Python/NumPy floats into the packed
integer representation of any such format, plus field extraction helpers used
by the value-similarity compression (sign/exponent sharing) and by the error
model (the exponent of the reduced value bounds the rounding error).

The codec is deliberately explicit (bit manipulation on integers) rather than
relying on ``numpy.float16`` so that the same code path supports bfloat16 and
the custom 24-bit format, and so that tests can cross-check the generic
implementation against NumPy's native half-precision conversion.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

__all__ = [
    "FloatFormat",
    "FLOAT32",
    "FLOAT16",
    "BFLOAT16",
    "FLOAT24",
    "FORMATS_BY_NAME",
    "float32_bits",
    "bits_to_float32",
    "decompose_float32",
]


def float32_bits(value: float) -> int:
    """Return the 32-bit IEEE-754 pattern of ``value`` as an unsigned int."""
    return struct.unpack("<I", struct.pack("<f", np.float32(value)))[0]


def bits_to_float32(bits: int) -> float:
    """Return the float whose 32-bit IEEE-754 pattern is ``bits``."""
    return float(struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0])


def decompose_float32(value: float) -> Tuple[int, int, int]:
    """Split ``value`` into its 32-bit (sign, exponent, mantissa) fields.

    Returns the raw biased exponent (0..255) and the 23-bit mantissa field,
    mirroring Figure 3b of the paper.
    """
    bits = float32_bits(value)
    sign = (bits >> 31) & 0x1
    exponent = (bits >> 23) & 0xFF
    mantissa = bits & 0x7FFFFF
    return sign, exponent, mantissa


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format with explicit field widths.

    Attributes
    ----------
    name:
        Human readable identifier (used in reports and benchmarks).
    exponent_bits:
        Width of the biased exponent field.
    mantissa_bits:
        Width of the stored (fractional) mantissa field.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int

    @property
    def sign_bits(self) -> int:
        """Width of the sign field (always one bit)."""
        return 1

    @property
    def total_bits(self) -> int:
        """Total storage width of the format in bits."""
        return self.sign_bits + self.exponent_bits + self.mantissa_bits

    @property
    def total_bytes(self) -> int:
        """Storage width rounded up to whole bytes."""
        return (self.total_bits + 7) // 8

    @property
    def bias(self) -> int:
        """Exponent bias (``2**(e-1) - 1``)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_biased_exponent(self) -> int:
        """Largest finite biased exponent value (all-ones is inf/NaN)."""
        return (1 << self.exponent_bits) - 2

    @property
    def max_finite(self) -> float:
        """Largest finite magnitude representable in the format."""
        max_mantissa = (1 << self.mantissa_bits) - 1
        significand = 1.0 + max_mantissa / float(1 << self.mantissa_bits)
        return significand * 2.0 ** (self.max_biased_exponent - self.bias)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude representable in the format."""
        return 2.0 ** (1 - self.bias)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, value: float) -> int:
        """Encode ``value`` into the packed integer representation.

        Conversion uses round-to-nearest-even (the IEEE-754 default rounding
        mode assumed by the paper's error analysis).  Values that overflow the
        format saturate to infinity; subnormals are supported.
        """
        value = float(value)
        if math.isnan(value):
            # Canonical quiet NaN: all-ones exponent, MSB of mantissa set.
            return (
                ((1 << self.exponent_bits) - 1) << self.mantissa_bits
            ) | (1 << (self.mantissa_bits - 1))

        sign = 1 if math.copysign(1.0, value) < 0 else 0
        magnitude = abs(value)

        if math.isinf(magnitude):
            return self._pack(sign, (1 << self.exponent_bits) - 1, 0)
        if magnitude == 0.0:
            return self._pack(sign, 0, 0)

        mantissa, exponent = math.frexp(magnitude)  # magnitude = mantissa * 2**exponent
        # frexp returns mantissa in [0.5, 1.0); IEEE uses [1.0, 2.0).
        exponent -= 1
        significand = mantissa * 2.0  # in [1.0, 2.0)

        biased = exponent + self.bias
        if biased >= (1 << self.exponent_bits) - 1:
            # Overflow: saturate to infinity.
            return self._pack(sign, (1 << self.exponent_bits) - 1, 0)

        if biased <= 0:
            # Subnormal: shift the significand right until the exponent is 1.
            shift = 1 - biased
            if shift > self.mantissa_bits + 1:
                # Too small even for the largest subnormal: underflows to zero.
                return self._pack(sign, 0, 0)
            scaled = math.ldexp(significand, self.mantissa_bits - shift)
            frac = self._round_half_even(scaled)
            if frac >= (1 << self.mantissa_bits):
                # Rounded up into the smallest normal.
                return self._pack(sign, 1, 0)
            return self._pack(sign, 0, frac)

        frac_scaled = (significand - 1.0) * (1 << self.mantissa_bits)
        frac = self._round_half_even(frac_scaled)
        if frac == (1 << self.mantissa_bits):
            frac = 0
            biased += 1
            if biased >= (1 << self.exponent_bits) - 1:
                return self._pack(sign, (1 << self.exponent_bits) - 1, 0)
        return self._pack(sign, biased, frac)

    def decode(self, bits: int) -> float:
        """Decode a packed integer representation back into a Python float."""
        sign, exponent, mantissa = self.split(bits)
        sign_factor = -1.0 if sign else 1.0
        all_ones = (1 << self.exponent_bits) - 1
        if exponent == all_ones:
            if mantissa:
                return float("nan")
            return sign_factor * float("inf")
        if exponent == 0:
            value = mantissa / float(1 << self.mantissa_bits)
            return sign_factor * value * 2.0 ** (1 - self.bias)
        significand = 1.0 + mantissa / float(1 << self.mantissa_bits)
        return sign_factor * significand * 2.0 ** (exponent - self.bias)

    def round_trip(self, value: float) -> float:
        """Encode then decode ``value`` (the value "as stored" in the format)."""
        return self.decode(self.encode(value))

    def quantize(self, values: Iterable[float]) -> np.ndarray:
        """Round-trip an iterable of values, returned as float64 ndarray."""
        return np.array([self.round_trip(v) for v in values], dtype=np.float64)

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised round-trip of an arbitrary-shaped float array.

        IEEE half precision uses NumPy's native conversion (bit-exact with the
        scalar path); other formats fall back to the scalar codec.
        """
        values = np.asarray(values, dtype=np.float64)
        if self.name == "ieee_fp16":
            return values.astype(np.float16).astype(np.float64)
        if self.name == "ieee_fp32":
            return values.astype(np.float32).astype(np.float64)
        flat = values.reshape(-1)
        out = np.array([self.round_trip(float(v)) for v in flat], dtype=np.float64)
        return out.reshape(values.shape)

    # ------------------------------------------------------------------
    # Field helpers
    # ------------------------------------------------------------------
    def split(self, bits: int) -> Tuple[int, int, int]:
        """Split packed ``bits`` into (sign, biased exponent, mantissa)."""
        mask = (1 << self.total_bits) - 1
        bits &= mask
        mantissa = bits & ((1 << self.mantissa_bits) - 1)
        exponent = (bits >> self.mantissa_bits) & ((1 << self.exponent_bits) - 1)
        sign = (bits >> (self.mantissa_bits + self.exponent_bits)) & 0x1
        return sign, exponent, mantissa

    def sign_exponent(self, bits: int) -> int:
        """Return the concatenated <sign, exponent> field of packed ``bits``.

        This is the unit of sharing in value-similarity compression
        (Section III-A / Figure 6 of the paper).
        """
        sign, exponent, _ = self.split(bits)
        return (sign << self.exponent_bits) | exponent

    def mantissa(self, bits: int) -> int:
        """Return the mantissa field of packed ``bits``."""
        return bits & ((1 << self.mantissa_bits) - 1)

    def biased_exponent(self, bits: int) -> int:
        """Return the biased exponent field of packed ``bits``."""
        _, exponent, _ = self.split(bits)
        return exponent

    def ulp(self, bits: int) -> float:
        """Unit in the last place of the encoded value (normal numbers)."""
        _, exponent, _ = self.split(bits)
        if exponent == 0:
            exponent = 1
        return 2.0 ** (exponent - self.bias - self.mantissa_bits)

    def max_rounding_error(self, bits: int) -> float:
        """Worst-case |rounding error| when a wider value was stored as ``bits``.

        This is Eq. 6 of the paper generalised to any mantissa width: half an
        ULP of the destination format, computed from the exponent field alone.
        """
        return 0.5 * self.ulp(bits)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pack(self, sign: int, exponent: int, mantissa: int) -> int:
        return (
            (sign << (self.mantissa_bits + self.exponent_bits))
            | (exponent << self.mantissa_bits)
            | mantissa
        )

    @staticmethod
    def _round_half_even(value: float) -> int:
        floor = math.floor(value)
        diff = value - floor
        if diff > 0.5:
            return int(floor) + 1
        if diff < 0.5:
            return int(floor)
        return int(floor) + (int(floor) & 1)


FLOAT32 = FloatFormat(name="ieee_fp32", exponent_bits=8, mantissa_bits=23)
FLOAT16 = FloatFormat(name="ieee_fp16", exponent_bits=5, mantissa_bits=10)
BFLOAT16 = FloatFormat(name="bfloat16", exponent_bits=8, mantissa_bits=7)
FLOAT24 = FloatFormat(name="float24", exponent_bits=5, mantissa_bits=18)

FORMATS_BY_NAME = {
    fmt.name: fmt for fmt in (FLOAT32, FLOAT16, BFLOAT16, FLOAT24)
}


def table1_formats() -> List[FloatFormat]:
    """The reduced formats compared in Table I of the paper."""
    return [FLOAT16, BFLOAT16, FLOAT24]
