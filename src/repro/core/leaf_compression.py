"""Value-similarity compression of k-d tree leaf points (Figure 6).

A leaf's points are first converted to the reduced floating-point format
(IEEE fp16 by default).  For each coordinate, if the <sign, exponent> tuple is
identical across every point in the leaf, a single copy of it is stored and a
per-coordinate flag records the sharing.  The compressed structure layout
mirrors Figure 6 of the paper:

``[cX cY cZ] [mantissas, point-major, x/y/z interleaved] [one <s,e> copy per
compressed coordinate] [<s,e> tuples of every point for the remaining
coordinates, point-major]``

Compression is lossless with respect to the reduced 16-bit values: decoding a
compressed leaf reproduces exactly the fp16 bit patterns that were encoded.
The only information loss relative to the original cloud is the fp32 -> fp16
conversion, whose error the shell classifier bounds at search time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bitstream import BitReader, BitWriter
from .floatfmt import FLOAT16, FloatFormat

__all__ = [
    "ZIPPTS_SLICE_BYTES",
    "MAX_POINTS_PER_LEAF",
    "CompressedLeaf",
    "compress_leaf",
    "decompress_leaf",
    "compressed_size_bits",
]

#: The ZipPts buffer exchanges data in 128-bit slices (Section IV-B).
ZIPPTS_SLICE_BYTES = 16
#: The ZipPts buffer holds at most 16 points (PCL default is 15 per leaf).
MAX_POINTS_PER_LEAF = 16
#: Number of spatial coordinates.
N_COORDS = 3


@dataclass(frozen=True)
class CompressedLeaf:
    """The compressed representation of one leaf's points.

    Attributes
    ----------
    data:
        The packed bytes, zero-padded to a whole number of 128-bit slices.
    n_points:
        Number of points encoded.
    flags:
        Per-coordinate sharing flags ``(cX, cY, cZ)``; ``True`` means the
        coordinate's <sign, exponent> is stored once for the whole leaf.
    payload_bits:
        Exact number of meaningful bits before slice padding.
    fmt_name:
        Name of the reduced float format used for the coordinates.
    """

    data: bytes
    n_points: int
    flags: Tuple[bool, bool, bool]
    payload_bits: int
    fmt_name: str = FLOAT16.name

    @property
    def size_bytes(self) -> int:
        """Padded size in bytes (what is stored in ``cmprsd_strct_array``)."""
        return len(self.data)

    @property
    def payload_bytes(self) -> int:
        """Meaningful (unpadded) size in bytes, rounded up."""
        return (self.payload_bits + 7) // 8

    @property
    def n_slices(self) -> int:
        """Number of 128-bit ZipPts slices occupied."""
        return len(self.data) // ZIPPTS_SLICE_BYTES

    @property
    def n_coords_compressed(self) -> int:
        """How many of the three coordinates share their <sign, exponent>."""
        return sum(self.flags)

    def compression_ratio(self, baseline_bytes_per_point: int = 16) -> float:
        """Compressed bytes over baseline bytes for the same points."""
        baseline = self.n_points * baseline_bytes_per_point
        if baseline == 0:
            return 1.0
        return self.size_bytes / baseline


def _sign_exponent_bits(fmt: FloatFormat) -> int:
    return fmt.sign_bits + fmt.exponent_bits


def compressed_size_bits(n_points: int, flags: Sequence[bool],
                         fmt: FloatFormat = FLOAT16) -> int:
    """Exact payload size in bits of a compressed leaf (before padding)."""
    se_bits = _sign_exponent_bits(fmt)
    bits = N_COORDS  # compression flags
    bits += n_points * N_COORDS * fmt.mantissa_bits
    for flag in flags:
        bits += se_bits if flag else se_bits * n_points
    return bits


def compress_leaf(points_fp32: np.ndarray, fmt: FloatFormat = FLOAT16) -> CompressedLeaf:
    """Compress a leaf's ``(N, 3)`` float32 points into the Figure 6 layout.

    Raises ``ValueError`` if the leaf holds more points than the ZipPts buffer
    supports (16) or is empty.
    """
    points_fp32 = np.asarray(points_fp32, dtype=np.float32)
    if points_fp32.ndim != 2 or points_fp32.shape[1] != N_COORDS:
        raise ValueError("leaf points must form an (N, 3) array")
    n_points = points_fp32.shape[0]
    if n_points == 0:
        raise ValueError("cannot compress an empty leaf")
    if n_points > MAX_POINTS_PER_LEAF:
        raise ValueError(
            f"leaf holds {n_points} points; the ZipPts buffer supports at most "
            f"{MAX_POINTS_PER_LEAF}"
        )

    # Reduced-format bit patterns, shape (N, 3).
    bits = np.empty((n_points, N_COORDS), dtype=np.uint32)
    for i in range(n_points):
        for c in range(N_COORDS):
            bits[i, c] = fmt.encode(float(points_fp32[i, c]))

    se_bits = _sign_exponent_bits(fmt)
    se = (bits >> fmt.mantissa_bits) & ((1 << se_bits) - 1)
    mantissa = bits & ((1 << fmt.mantissa_bits) - 1)

    flags = tuple(bool(np.all(se[:, c] == se[0, c])) for c in range(N_COORDS))

    writer = BitWriter()
    for flag in flags:
        writer.write(1 if flag else 0, 1)
    # Mantissas bypass compression, stored point-major (x, y, z per point).
    for i in range(n_points):
        for c in range(N_COORDS):
            writer.write(int(mantissa[i, c]), fmt.mantissa_bits)
    # Single <sign, exponent> copy per compressed coordinate.
    for c in range(N_COORDS):
        if flags[c]:
            writer.write(int(se[0, c]), se_bits)
    # Remaining <sign, exponent> tuples, point-major over uncompressed coords.
    for i in range(n_points):
        for c in range(N_COORDS):
            if not flags[c]:
                writer.write(int(se[i, c]), se_bits)

    payload_bits = writer.bit_length
    data = writer.to_bytes(pad_to=ZIPPTS_SLICE_BYTES)
    return CompressedLeaf(
        data=data,
        n_points=n_points,
        flags=flags,  # type: ignore[arg-type]
        payload_bits=payload_bits,
        fmt_name=fmt.name,
    )


def decompress_leaf(compressed: CompressedLeaf,
                    fmt: Optional[FloatFormat] = None) -> np.ndarray:
    """Decompress a leaf back into its reduced-precision ``(N, 3)`` values.

    The returned array is float64 holding exactly the values representable in
    the reduced format (i.e. the values the Bonsai functional unit operates
    on).  The fp16 bit patterns are reconstructed exactly.
    """
    fmt = fmt or FLOAT16
    if fmt.name != compressed.fmt_name:
        raise ValueError(
            f"compressed leaf uses format {compressed.fmt_name!r}, "
            f"decompression requested with {fmt.name!r}"
        )
    reader = BitReader(compressed.data)
    n_points = compressed.n_points
    se_bits = _sign_exponent_bits(fmt)

    flags = tuple(bool(reader.read(1)) for _ in range(N_COORDS))
    if flags != compressed.flags:
        raise ValueError("compression flags in the bit stream disagree with metadata")

    mantissa = np.empty((n_points, N_COORDS), dtype=np.uint32)
    for i in range(n_points):
        for c in range(N_COORDS):
            mantissa[i, c] = reader.read(fmt.mantissa_bits)

    shared_se = {}
    for c in range(N_COORDS):
        if flags[c]:
            shared_se[c] = reader.read(se_bits)

    se = np.empty((n_points, N_COORDS), dtype=np.uint32)
    for c in range(N_COORDS):
        if flags[c]:
            se[:, c] = shared_se[c]
    for i in range(n_points):
        for c in range(N_COORDS):
            if not flags[c]:
                se[i, c] = reader.read(se_bits)

    values = np.empty((n_points, N_COORDS), dtype=np.float64)
    for i in range(n_points):
        for c in range(N_COORDS):
            packed = (int(se[i, c]) << fmt.mantissa_bits) | int(mantissa[i, c])
            values[i, c] = fmt.decode(packed)
    return values


def decompress_leaf_bits(compressed: CompressedLeaf,
                         fmt: Optional[FloatFormat] = None) -> np.ndarray:
    """Decompress a leaf into the raw reduced-format bit patterns ``(N, 3)``."""
    fmt = fmt or FLOAT16
    values = decompress_leaf(compressed, fmt)
    bits = np.empty(values.shape, dtype=np.uint32)
    for i in range(values.shape[0]):
        for c in range(values.shape[1]):
            bits[i, c] = fmt.encode(float(values[i, c]))
    return bits
