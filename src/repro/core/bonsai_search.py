"""Radius search over compressed leaves (the K-D Bonsai leaf inspector).

The traversal is unchanged from the baseline (:func:`repro.kdtree.radius_search`);
only leaf processing differs.  When the search reaches a leaf whose compressed
structure exists, the inspector:

1. loads the compressed structure in 128-bit slices (modelling the LDDCP
   micro-operations) and decompresses it into reduced-precision coordinates;
2. computes the approximate squared distance and the worst-case error bound
   per point (what the vectorised (A-B')^2 functional units produce);
3. applies the shell classification of Eq. 12;
4. for inconclusive points only, loads the original 32-bit point and
   re-computes the exact classification, so results are identical to the
   baseline.

The inspector accumulates the functional counters the hardware model needs
(bytes loaded, slices, inconclusive classifications), and optionally feeds a
memory-access recorder for cache simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..kdtree.build import KDTree
from ..kdtree.layout import POINT_STRIDE_BYTES, TreeMemoryLayout
from ..kdtree.node import LeafNode
from ..kdtree.radius_search import MemoryRecorder, SearchStats
from ..runtime.kernels import (
    leaf_distances2,
    reduced_precision_max_delta,
    shell_classify,
    shell_error_bound,
)
from .compressed_leaf import CompressedRef, CompressedStructArray, compress_tree
from .error_model import PartErrorTable
from .floatfmt import FLOAT16, FloatFormat
from .leaf_compression import ZIPPTS_SLICE_BYTES, decompress_leaf

__all__ = ["BonsaiStats", "BonsaiLeafInspector", "BonsaiRadiusSearch"]


@dataclass
class BonsaiStats:
    """Functional counters specific to the compressed search path."""

    leaf_visits: int = 0
    slices_loaded: int = 0
    compressed_bytes_loaded: int = 0
    points_classified: int = 0
    conclusive_in: int = 0
    conclusive_out: int = 0
    inconclusive: int = 0
    recompute_bytes_loaded: int = 0
    fallback_leaf_visits: int = 0

    @property
    def inconclusive_rate(self) -> float:
        """Fraction of classifications resolved by 32-bit recomputation."""
        if self.points_classified == 0:
            return 0.0
        return self.inconclusive / self.points_classified

    @property
    def total_point_bytes_loaded(self) -> int:
        """Compressed bytes plus recomputation bytes."""
        return self.compressed_bytes_loaded + self.recompute_bytes_loaded

    def merge(self, other: "BonsaiStats") -> None:
        """Accumulate ``other``'s counters into this object."""
        self.leaf_visits += other.leaf_visits
        self.slices_loaded += other.slices_loaded
        self.compressed_bytes_loaded += other.compressed_bytes_loaded
        self.points_classified += other.points_classified
        self.conclusive_in += other.conclusive_in
        self.conclusive_out += other.conclusive_out
        self.inconclusive += other.inconclusive
        self.recompute_bytes_loaded += other.recompute_bytes_loaded
        self.fallback_leaf_visits += other.fallback_leaf_visits


class BonsaiLeafInspector:
    """Leaf inspector operating on compressed leaf structures.

    Parameters
    ----------
    array:
        The tree's ``cmprsd_strct_array``.  If omitted, the inspector looks
        for ``tree.compressed_array`` (set by :func:`compress_tree`).
    fmt:
        Reduced float format of the compressed coordinates.
    cache_decoded:
        Keep decoded leaves in a per-inspector cache.  Decoding is repeated
        work in hardware too, but caching only the *functional* result keeps
        the pure-Python model fast; the byte/slice accounting still charges
        every visit.
    """

    def __init__(self, array: Optional[CompressedStructArray] = None,
                 fmt: FloatFormat = FLOAT16, cache_decoded: bool = True):
        self.array = array
        self.fmt = fmt
        self.cache_decoded = cache_decoded
        self.part_error = PartErrorTable(fmt)
        self.bonsai_stats = BonsaiStats()
        self._decoded_cache: Dict[int, np.ndarray] = {}
        self._error_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # LeafInspector protocol
    # ------------------------------------------------------------------
    def inspect(self, tree: KDTree, leaf: LeafNode, query: np.ndarray, r2: float,
                results: List[int], stats: SearchStats,
                recorder: Optional[MemoryRecorder],
                layout: Optional[TreeMemoryLayout]) -> None:
        array = self._resolve_array(tree)
        ref: Optional[CompressedRef] = leaf.compressed_ref  # type: ignore[assignment]
        if array is None or ref is None:
            # No compressed structure: fall back to the baseline behaviour.
            self.bonsai_stats.fallback_leaf_visits += 1
            self._baseline_inspect(tree, leaf, query, r2, results, stats, recorder, layout)
            return

        self.bonsai_stats.leaf_visits += 1
        self.bonsai_stats.slices_loaded += ref.n_slices
        self.bonsai_stats.compressed_bytes_loaded += ref.n_slices * ZIPPTS_SLICE_BYTES
        stats.points_examined += leaf.n_points
        stats.point_bytes_loaded += ref.n_slices * ZIPPTS_SLICE_BYTES

        if recorder is not None and layout is not None:
            for slice_index in range(ref.n_slices):
                recorder.record_load(
                    layout.compressed_address(ref.offset + slice_index * ZIPPTS_SLICE_BYTES),
                    ZIPPTS_SLICE_BYTES,
                )

        reduced, max_delta = self._decoded(array, leaf.leaf_id, ref)

        diffs = query - reduced
        sq = diffs * diffs
        d2_approx = sq.sum(axis=1)
        eps = shell_error_bound(np.abs(diffs), max_delta)

        self.bonsai_stats.points_classified += leaf.n_points

        conclusive_in, conclusive_out, inconclusive = shell_classify(d2_approx, eps, r2)

        self.bonsai_stats.conclusive_in += int(conclusive_in.sum())
        self.bonsai_stats.conclusive_out += int(conclusive_out.sum())
        self.bonsai_stats.inconclusive += int(inconclusive.sum())

        for local_index, point_index in enumerate(leaf.indices):
            if conclusive_in[local_index]:
                results.append(int(point_index))
                stats.points_in_radius += 1
                continue
            if conclusive_out[local_index]:
                continue
            # Inconclusive: fetch the original 32-bit point and recompute.
            self.bonsai_stats.recompute_bytes_loaded += POINT_STRIDE_BYTES
            stats.point_bytes_loaded += POINT_STRIDE_BYTES
            if recorder is not None and layout is not None:
                recorder.record_load(layout.point_address(int(point_index)),
                                     POINT_STRIDE_BYTES)
            original = tree.points_f64[int(point_index)]
            diff = query - original
            if float(diff @ diff) <= r2:
                results.append(int(point_index))
                stats.points_in_radius += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_array(self, tree: KDTree) -> Optional[CompressedStructArray]:
        if self.array is not None:
            return self.array
        return getattr(tree, "compressed_array", None)

    def _decoded(self, array: CompressedStructArray, leaf_id: int,
                 ref: CompressedRef) -> tuple:
        if self.cache_decoded and leaf_id in self._decoded_cache:
            return self._decoded_cache[leaf_id], self._error_cache[leaf_id]
        compressed = array.get(leaf_id)
        reduced = decompress_leaf(compressed, self.fmt)
        max_delta = self._max_delta_array(reduced)
        if self.cache_decoded:
            self._decoded_cache[leaf_id] = reduced
            self._error_cache[leaf_id] = max_delta
        return reduced, max_delta

    def _max_delta_array(self, reduced: np.ndarray) -> np.ndarray:
        """Per-coordinate worst-case rounding error (Eq. 6), vectorised.

        The hardware derives this from the exponent field via the
        ``part_error_mem`` lookup; here the same quantity is computed from the
        decoded magnitudes: for normal numbers ``2**(e - bias - (m+1))`` equals
        half a ULP of the binade the value lies in.
        """
        return reduced_precision_max_delta(reduced, self.fmt)

    def _baseline_inspect(self, tree, leaf, query, r2, results, stats, recorder, layout):
        points = tree.points_f64[leaf.indices]
        d2 = leaf_distances2(points, query)
        inside = d2 <= r2
        stats.points_examined += leaf.n_points
        stats.points_in_radius += int(inside.sum())
        stats.point_bytes_loaded += leaf.n_points * POINT_STRIDE_BYTES
        if recorder is not None and layout is not None:
            for point_index in leaf.indices:
                recorder.record_load(layout.point_address(int(point_index)),
                                     POINT_STRIDE_BYTES)
        for point_index, in_radius in zip(leaf.indices, inside):
            if in_radius:
                results.append(int(point_index))


class BonsaiRadiusSearch:
    """High-level helper: compress a tree once, then issue Bonsai searches."""

    def __init__(self, tree: KDTree, fmt: FloatFormat = FLOAT16,
                 recorder: Optional[MemoryRecorder] = None,
                 layout: Optional[TreeMemoryLayout] = None):
        self.tree = tree
        self.fmt = fmt
        self.recorder = recorder
        self.layout = layout
        if getattr(tree, "compressed_array", None) is None:
            self.report = compress_tree(tree, fmt)
            self._record_compression_accesses()
        else:
            self.report = None
        self.inspector = BonsaiLeafInspector(fmt=fmt)
        self.stats = SearchStats()

    def _record_compression_accesses(self) -> None:
        """Trace the build-time compression pass through the memory recorder.

        The LDSPZPB loads read every leaf point once and the STZPB stores
        write the compressed slices into ``cmprsd_strct_array``; these
        accesses are part of the extract kernel (the paper compresses leaves
        during tree construction) and contribute to the Bonsai configuration's
        cache behaviour.
        """
        if self.recorder is None or self.layout is None:
            return
        for leaf in self.tree.leaves:
            for point_index in leaf.indices:
                self.recorder.record_load(
                    self.layout.point_address(int(point_index)), POINT_STRIDE_BYTES
                )
            ref = leaf.compressed_ref
            if ref is None:
                continue
            for slice_index in range(ref.n_slices):
                self.recorder.record_store(
                    self.layout.compressed_address(
                        ref.offset + slice_index * ZIPPTS_SLICE_BYTES
                    ),
                    ZIPPTS_SLICE_BYTES,
                )

    @property
    def bonsai_stats(self) -> BonsaiStats:
        """Counters specific to compressed leaf processing."""
        return self.inspector.bonsai_stats

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Radius search over compressed leaves; identical results to baseline."""
        from ..kdtree.radius_search import radius_search

        return radius_search(
            self.tree, query, radius, inspector=self.inspector, stats=self.stats,
            recorder=self.recorder, layout=self.layout,
        )
