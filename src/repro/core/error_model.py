"""Worst-case error model for reduced-precision radius search.

Implements Equations 5-12 of the paper.  The point of the model is that the
exponent of a reduced-precision coordinate ``B'`` alone bounds the rounding
error introduced when converting the original 32-bit value ``B`` to the
reduced format.  That bound propagates through the squared-difference and the
three-coordinate sum, producing a *shell* around the squared search radius:
distances outside the shell are guaranteed to classify identically to the
full-precision computation; distances inside the shell are inconclusive and
must be re-computed with the original 32-bit points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .floatfmt import FLOAT16, FloatFormat

__all__ = [
    "Classification",
    "max_delta",
    "max_eps_sd",
    "squared_difference_with_error",
    "approximate_squared_distance",
    "classify_exact",
    "classify_with_shell",
    "ShellClassifier",
    "PartErrorTable",
]


class Classification(enum.Enum):
    """Outcome of a radius-search point classification."""

    IN_RADIUS = "in_radius"
    NOT_IN_RADIUS = "not_in_radius"
    INCONCLUSIVE = "inconclusive"


def max_delta(reduced_value: float, fmt: FloatFormat = FLOAT16) -> float:
    """Worst-case |rounding error| of ``reduced_value`` (Eq. 6).

    ``reduced_value`` is the value *after* conversion to ``fmt`` (i.e. ``B'``);
    only its exponent is needed, which by construction is identical to the
    exponent of the original value whenever the conversion does not change the
    binade (the paper's stated assumption: the exponent is representable in
    both formats).
    """
    bits = fmt.encode(reduced_value)
    return fmt.max_rounding_error(bits)


def max_eps_sd(a: float, b_reduced: float, fmt: FloatFormat = FLOAT16) -> float:
    """Worst-case error of ``(a - b_reduced)**2`` w.r.t. ``(a - b)**2`` (Eq. 9)."""
    delta = max_delta(b_reduced, fmt)
    return 2.0 * abs(a - b_reduced) * delta + delta * delta


def squared_difference_with_error(
    a: float, b_reduced: float, fmt: FloatFormat = FLOAT16
) -> Tuple[float, float]:
    """Return ``((a - b')**2, max(eps_sd))`` for one coordinate.

    This mirrors the behaviour of the (A-B')^2 functional unit (Figure 7): the
    squared difference is computed in full precision on the reduced operand,
    and the worst-case error is derived from the exponent of ``b_reduced`` via
    the pre-computed ``part_error_mem`` terms.
    """
    diff = a - b_reduced
    sq = diff * diff
    return sq, max_eps_sd(a, b_reduced, fmt)


def approximate_squared_distance(
    query: Sequence[float],
    point_reduced: Sequence[float],
    fmt: FloatFormat = FLOAT16,
) -> Tuple[float, float]:
    """Approximate squared euclidean distance and total error bound.

    Returns ``(d'^2, T_eps_sd)`` per Eqs. 10-11 of the paper, summing the
    per-coordinate squared differences and worst-case errors.
    """
    d2 = 0.0
    total_eps = 0.0
    for a, b_reduced in zip(query, point_reduced):
        sq, eps = squared_difference_with_error(float(a), float(b_reduced), fmt)
        d2 += sq
        total_eps += eps
    return d2, total_eps


def classify_exact(d2: float, r2: float) -> Classification:
    """Baseline classification (Eq. 3): inside iff ``d2 <= r2``."""
    if d2 <= r2:
        return Classification.IN_RADIUS
    return Classification.NOT_IN_RADIUS


def classify_with_shell(d2_approx: float, r2: float, total_eps: float) -> Classification:
    """Shell classification of Eq. 12.

    ``d2_approx`` is the approximate squared distance (from reduced-precision
    coordinates), ``total_eps`` the total worst-case error.  Distances inside
    the shell ``(r2 - total_eps, r2 + total_eps]`` cannot be guaranteed to
    match the baseline and are reported inconclusive.
    """
    if d2_approx <= r2 - total_eps:
        return Classification.IN_RADIUS
    if d2_approx > r2 + total_eps:
        return Classification.NOT_IN_RADIUS
    return Classification.INCONCLUSIVE


class PartErrorTable:
    """The ``part_error_mem`` lookup table of the (A-B')^2 functional unit.

    The hardware pre-computes ``2*|max(delta)|`` and ``max(delta)^2`` for every
    possible exponent of the reduced format (32 entries for IEEE fp16) so the
    worst-case error can be formed with one multiply and one add (Figure 7).
    """

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self._two_delta = np.zeros(1 << fmt.exponent_bits, dtype=np.float64)
        self._delta_sq = np.zeros(1 << fmt.exponent_bits, dtype=np.float64)
        for exponent in range(1 << fmt.exponent_bits):
            effective = exponent if exponent != 0 else 1
            delta = 2.0 ** (effective - fmt.bias) * 2.0 ** (-(fmt.mantissa_bits + 1))
            self._two_delta[exponent] = 2.0 * delta
            self._delta_sq[exponent] = delta * delta

    def __len__(self) -> int:
        return self._two_delta.shape[0]

    def lookup(self, biased_exponent: int) -> Tuple[float, float]:
        """Return ``(2*max_delta, max_delta**2)`` for a biased exponent."""
        return float(self._two_delta[biased_exponent]), float(self._delta_sq[biased_exponent])

    def error_bound(self, a: float, b_reduced: float) -> float:
        """Worst-case error of the squared difference using table lookups."""
        bits = self.fmt.encode(b_reduced)
        exponent = self.fmt.biased_exponent(bits)
        two_delta, delta_sq = self.lookup(exponent)
        return abs(a - b_reduced) * two_delta + delta_sq


@dataclass
class ShellStats:
    """Counters accumulated by :class:`ShellClassifier`."""

    total: int = 0
    in_radius: int = 0
    not_in_radius: int = 0
    inconclusive: int = 0

    @property
    def inconclusive_rate(self) -> float:
        """Fraction of classifications that required 32-bit recomputation."""
        if self.total == 0:
            return 0.0
        return self.inconclusive / self.total


class ShellClassifier:
    """Stateful classifier applying the shell test with recompute fallback.

    This is the software view of what the Bonsai-extensions compute: the
    approximate distance and error bound come from the reduced operands, and
    any inconclusive result is resolved by re-computing with the original
    32-bit coordinates (Eq. 3), guaranteeing baseline-identical results.
    """

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self.stats = ShellStats()

    def classify(
        self,
        query: Sequence[float],
        point_reduced: Sequence[float],
        point_original: Sequence[float],
        r2: float,
    ) -> Tuple[bool, bool]:
        """Classify a point; returns ``(in_radius, recomputed)``."""
        d2_approx, total_eps = approximate_squared_distance(query, point_reduced, self.fmt)
        outcome = classify_with_shell(d2_approx, r2, total_eps)
        self.stats.total += 1
        if outcome is Classification.IN_RADIUS:
            self.stats.in_radius += 1
            return True, False
        if outcome is Classification.NOT_IN_RADIUS:
            self.stats.not_in_radius += 1
            return False, False
        self.stats.inconclusive += 1
        d2 = 0.0
        for a, b in zip(query, point_original):
            diff = float(a) - float(b)
            d2 += diff * diff
        return d2 <= r2, True
