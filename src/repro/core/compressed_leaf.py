"""The ``cmprsd_strct_array`` and per-leaf compressed references.

The paper's modified PCL keeps one extra byte array per tree in which the
compressed structures of all leaves are stored consecutively as they are
created during the tree build, and re-uses otherwise-unused leaf fields to
hold each leaf's (offset, length) into that array.  This module models both
pieces and provides ``compress_tree`` to run the whole build-time compression
pass over a k-d tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..kdtree.build import KDTree
from ..kdtree.node import LeafNode
from .floatfmt import FLOAT16, FloatFormat
from .leaf_compression import (
    MAX_POINTS_PER_LEAF,
    ZIPPTS_SLICE_BYTES,
    CompressedLeaf,
    compress_leaf,
)

__all__ = [
    "CompressedRef",
    "CompressedStructArray",
    "compress_tree",
    "compression_pass_count",
    "CompressionReport",
]

#: Number of whole-tree compression passes this process has run.  The
#: serving layer's "compress once, attach everywhere" claim is asserted
#: against this counter: the process that creates a
#: :class:`~repro.serve.store.SharedCloudStore` counts exactly one pass,
#: and every attaching client counts zero.
_COMPRESSION_PASSES = 0


def compression_pass_count() -> int:
    """How many times :func:`compress_tree` ran in this process."""
    return _COMPRESSION_PASSES


@dataclass(frozen=True)
class CompressedRef:
    """Reference from a leaf into the compressed-structure array."""

    offset: int
    length: int
    n_points: int
    n_slices: int
    flags: tuple

    @property
    def end(self) -> int:
        """One-past-the-end byte offset of the compressed structure."""
        return self.offset + self.length


class CompressedStructArray:
    """A growable byte array holding compressed leaf structures back to back."""

    def __init__(self, fmt: FloatFormat = FLOAT16):
        self.fmt = fmt
        self._data = bytearray()
        self._leaves: Dict[int, CompressedLeaf] = {}
        self._refs: Dict[int, CompressedRef] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def append(self, leaf_id: int, compressed: CompressedLeaf) -> CompressedRef:
        """Append ``compressed`` and return its reference.

        The append offset is always slice aligned because every compressed
        structure is padded to whole 128-bit slices.
        """
        if leaf_id in self._refs:
            raise ValueError(f"leaf {leaf_id} already has a compressed structure")
        offset = len(self._data)
        self._data.extend(compressed.data)
        ref = CompressedRef(
            offset=offset,
            length=compressed.size_bytes,
            n_points=compressed.n_points,
            n_slices=compressed.n_slices,
            flags=compressed.flags,
        )
        self._refs[leaf_id] = ref
        self._leaves[leaf_id] = compressed
        return ref

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._refs)

    @property
    def total_bytes(self) -> int:
        """Total size of the array in bytes."""
        return len(self._data)

    @property
    def data(self) -> bytes:
        """The raw concatenated compressed structures."""
        return bytes(self._data)

    def ref(self, leaf_id: int) -> CompressedRef:
        """The compressed reference of ``leaf_id``."""
        return self._refs[leaf_id]

    def get(self, leaf_id: int) -> CompressedLeaf:
        """The compressed structure of ``leaf_id``."""
        return self._leaves[leaf_id]

    def read(self, ref: CompressedRef) -> bytes:
        """Read the raw bytes referenced by ``ref`` (as the LDDCP loads would)."""
        return bytes(self._data[ref.offset:ref.end])


@dataclass
class CompressionReport:
    """Summary of a whole-tree compression pass."""

    n_leaves: int
    n_points: int
    baseline_bytes: int
    compressed_bytes: int
    leaves_fully_shared: int
    coords_shared: Dict[str, int]

    @property
    def compression_ratio(self) -> float:
        """Compressed size over baseline size (lower is better)."""
        if self.baseline_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.baseline_bytes

    @property
    def savings_fraction(self) -> float:
        """Fraction of bytes removed by compression."""
        return 1.0 - self.compression_ratio


def compress_tree(tree: KDTree, fmt: FloatFormat = FLOAT16,
                  array: Optional[CompressedStructArray] = None,
                  baseline_bytes_per_point: int = 16) -> CompressionReport:
    """Compress every leaf of ``tree`` into a :class:`CompressedStructArray`.

    Each leaf's ``compressed_ref`` attribute is populated, mirroring the
    paper's reuse of unused leaf fields to store the reference.  Returns a
    :class:`CompressionReport`; the array itself can be retrieved from any
    leaf's reference or passed in explicitly.
    """
    global _COMPRESSION_PASSES
    _COMPRESSION_PASSES += 1
    array = array if array is not None else CompressedStructArray(fmt)
    coords_shared = {"x": 0, "y": 0, "z": 0}
    fully_shared = 0
    total_points = 0
    for leaf in tree.leaves:
        points = tree.leaf_points(leaf)
        compressed = compress_leaf(points, fmt)
        ref = array.append(leaf.leaf_id, compressed)
        leaf.compressed_ref = ref
        total_points += leaf.n_points
        for name, flag in zip(("x", "y", "z"), compressed.flags):
            if flag:
                coords_shared[name] += 1
        if all(compressed.flags):
            fully_shared += 1
    # Stash the array on the tree so searches can find it without new APIs.
    tree.compressed_array = array  # type: ignore[attr-defined]
    return CompressionReport(
        n_leaves=tree.n_leaves,
        n_points=total_points,
        baseline_bytes=total_points * baseline_bytes_per_point,
        compressed_bytes=array.total_bytes,
        leaves_fully_shared=fully_shared,
        coords_shared=coords_shared,
    )
