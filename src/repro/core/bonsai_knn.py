"""Nearest-neighbour search over compressed leaves (extension).

The paper evaluates radius search, but the same compressed leaves can serve
k-nearest-neighbour queries — the other operation Autoware performs on k-d
trees (and the one accelerated by Tigris/QuickNN in related work).  The shell
idea carries over: from the reduced-precision coordinates and the per-point
error bound one can compute a *lower bound* on the true squared distance; a
leaf point whose lower bound is no better than the current k-th best distance
cannot enter the result set and its original 32-bit coordinates never need to
be fetched.  Points that could enter the set are resolved with the original
coordinates, so results are identical to the baseline kNN.

This module is an extension beyond the paper's evaluation; it demonstrates
that the compressed layout composes with other query types and quantifies how
many full-precision fetches the bound avoids.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..kdtree.build import KDTree
from ..kdtree.node import Node
from ..kdtree.radius_search import SearchStats
from ..runtime.kernels import reduced_precision_max_delta, shell_error_bound
from .compressed_leaf import CompressedStructArray, compress_tree
from .floatfmt import FLOAT16, FloatFormat
from .leaf_compression import ZIPPTS_SLICE_BYTES, decompress_leaf

__all__ = ["BonsaiKNNStats", "BonsaiNearestNeighbors"]


@dataclass
class BonsaiKNNStats:
    """Counters of the compressed kNN search."""

    queries: int = 0
    leaves_visited: int = 0
    points_screened: int = 0
    exact_fetches: int = 0
    compressed_bytes_loaded: int = 0
    exact_bytes_loaded: int = 0

    @property
    def fetch_rate(self) -> float:
        """Fraction of screened points whose 32-bit coordinates were fetched."""
        if self.points_screened == 0:
            return 0.0
        return self.exact_fetches / self.points_screened


class BonsaiNearestNeighbors:
    """k-nearest-neighbour search using compressed leaves with exact results."""

    def __init__(self, tree: KDTree, fmt: FloatFormat = FLOAT16):
        self.tree = tree
        self.fmt = fmt
        if getattr(tree, "compressed_array", None) is None:
            compress_tree(tree, fmt)
        self.array: CompressedStructArray = tree.compressed_array  # type: ignore[attr-defined]
        self.stats = BonsaiKNNStats()
        self._decoded_cache = {}
        self._error_cache = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(self, query: Sequence[float], k: int) -> List[Tuple[int, float]]:
        """Return the ``k`` nearest points as ``(index, distance)``, sorted.

        Results are identical to :func:`repro.kdtree.nearest_neighbors`.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        query_arr = np.asarray(query, dtype=np.float64)
        if query_arr.shape != (3,):
            raise ValueError("query must be a 3D point")
        self.stats.queries += 1

        heap: List[Tuple[float, int]] = []  # max-heap via negated distances

        def worst_d2() -> float:
            if len(heap) < k:
                return float("inf")
            return -heap[0][0]

        def visit(node: Node) -> None:
            if node.is_leaf:
                self._inspect_leaf(node, query_arr, k, heap, worst_d2)
                return
            value = query_arr[node.split_dim]
            if value <= node.split_value:
                near, far = node.left, node.right
                far_gap = node.split_high - value
            else:
                near, far = node.right, node.left
                far_gap = value - node.split_low
            visit(near)
            if far_gap * far_gap <= worst_d2():
                visit(far)

        visit(self.tree.root)
        ordered = sorted((-neg_d2, index) for neg_d2, index in heap)
        return [(index, float(np.sqrt(d2))) for d2, index in ordered]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _inspect_leaf(self, leaf, query: np.ndarray, k: int, heap, worst_d2) -> None:
        self.stats.leaves_visited += 1
        ref = leaf.compressed_ref
        self.stats.compressed_bytes_loaded += ref.n_slices * ZIPPTS_SLICE_BYTES

        reduced, max_delta = self._decoded(leaf.leaf_id)
        diffs = query - reduced
        sq = diffs * diffs
        d2_approx = sq.sum(axis=1)
        eps = shell_error_bound(np.abs(diffs), max_delta)
        lower_bounds = np.maximum(d2_approx - eps, 0.0)

        self.stats.points_screened += leaf.n_points
        for local_index, point_index in enumerate(leaf.indices):
            if lower_bounds[local_index] > worst_d2():
                continue  # cannot beat the current k-th best; no exact fetch needed
            self.stats.exact_fetches += 1
            self.stats.exact_bytes_loaded += 16
            original = self.tree.points_f64[int(point_index)]
            diff = query - original
            d2 = float(diff @ diff)
            if len(heap) < k:
                heapq.heappush(heap, (-d2, int(point_index)))
            elif d2 < worst_d2():
                heapq.heapreplace(heap, (-d2, int(point_index)))

    def _decoded(self, leaf_id: int):
        cached = self._decoded_cache.get(leaf_id)
        if cached is not None:
            return cached, self._error_cache[leaf_id]
        reduced = decompress_leaf(self.array.get(leaf_id), self.fmt)
        max_delta = reduced_precision_max_delta(reduced, self.fmt)
        self._decoded_cache[leaf_id] = reduced
        self._error_cache[leaf_id] = max_delta
        return reduced, max_delta
