"""K-D Bonsai core: float formats, error model, leaf compression and search."""

from .bitstream import BitReader, BitWriter
from .bonsai_knn import BonsaiKNNStats, BonsaiNearestNeighbors
from .bonsai_search import BonsaiLeafInspector, BonsaiRadiusSearch, BonsaiStats
from .compressed_leaf import (
    CompressedRef,
    CompressedStructArray,
    CompressionReport,
    compress_tree,
)
from .error_model import (
    Classification,
    PartErrorTable,
    ShellClassifier,
    approximate_squared_distance,
    classify_exact,
    classify_with_shell,
    max_delta,
    max_eps_sd,
    squared_difference_with_error,
)
from .floatfmt import (
    BFLOAT16,
    FLOAT16,
    FLOAT24,
    FLOAT32,
    FORMATS_BY_NAME,
    FloatFormat,
    bits_to_float32,
    decompose_float32,
    float32_bits,
    table1_formats,
)
from .leaf_compression import (
    MAX_POINTS_PER_LEAF,
    ZIPPTS_SLICE_BYTES,
    CompressedLeaf,
    compress_leaf,
    compressed_size_bits,
    decompress_leaf,
)
from .stats import LeafSimilarityStats, aggregate_similarity, leaf_similarity

__all__ = [
    "BitReader",
    "BitWriter",
    "BonsaiKNNStats",
    "BonsaiNearestNeighbors",
    "BonsaiLeafInspector",
    "BonsaiRadiusSearch",
    "BonsaiStats",
    "CompressedRef",
    "CompressedStructArray",
    "CompressionReport",
    "compress_tree",
    "Classification",
    "PartErrorTable",
    "ShellClassifier",
    "approximate_squared_distance",
    "classify_exact",
    "classify_with_shell",
    "max_delta",
    "max_eps_sd",
    "squared_difference_with_error",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT24",
    "FLOAT32",
    "FORMATS_BY_NAME",
    "FloatFormat",
    "bits_to_float32",
    "decompose_float32",
    "float32_bits",
    "table1_formats",
    "MAX_POINTS_PER_LEAF",
    "ZIPPTS_SLICE_BYTES",
    "CompressedLeaf",
    "compress_leaf",
    "compressed_size_bits",
    "decompress_leaf",
    "LeafSimilarityStats",
    "aggregate_similarity",
    "leaf_similarity",
]
