"""ExecutionConfig: the execution mode of a workload as one value.

Before the engine layer existed, every consumer threaded a boolean triple
(``use_bonsai`` / ``simulate_caches`` / ``hardware``) through its own config
dataclasses.  :class:`ExecutionConfig` replaces the triple: a backend *name*
(from :mod:`repro.engine.registry`), a ``hardware`` switch that routes the
searches through the trace-driven cache simulation, and an optional
``cache_config`` overriding the recorded machine's cache geometry — which is
what makes cache-geometry sensitivity sweeps a config change instead of new
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .backends import SearchBackend
from .registry import backend_names, get_backend

__all__ = ["ExecutionConfig"]


@dataclass(frozen=True)
class ExecutionConfig:
    """How a workload executes its tree searches.

    Parameters
    ----------
    backend:
        Registered backend name (see
        :func:`repro.engine.registry.backend_names`).
    hardware:
        Route the searches through the per-query recorded path so every
        tree access streams into the trace-driven cache/timing/energy
        models.  Functional results are unchanged (the recorded path is
        bitwise-identical to the batched one); the run additionally carries
        per-stage hardware reports.
    cache_config:
        Machine geometry (:class:`~repro.hwmodel.cpu_config.CPUConfig`) the
        hardware recorder simulates.  ``None`` uses each stage's own CPU
        config (the paper's Table IV machine by default); a sweep passes
        variations here to map cache-geometry sensitivity.
    """

    backend: str = "baseline-batched"
    hardware: bool = False
    cache_config: Optional[object] = None

    def __post_init__(self) -> None:
        if self.backend not in backend_names():
            known = ", ".join(backend_names())
            raise ValueError(
                f"unknown backend {self.backend!r}; registered: {known}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def flavor(self) -> str:
        """Leaf format of the backend: ``"baseline"`` or ``"bonsai"``."""
        return self.backend.split("-", 1)[0]

    @property
    def strategy(self) -> str:
        """Execution strategy of the backend: everything after the flavour
        (``"perquery"``, ``"batched"`` or ``"batched-mp"``)."""
        return self.backend.split("-", 1)[1]

    @property
    def use_bonsai(self) -> bool:
        """Whether the backend searches compressed (K-D Bonsai) leaves."""
        return self.flavor == "bonsai"

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_flavor(self, use_bonsai: bool) -> "ExecutionConfig":
        """This config with the backend's leaf format replaced."""
        flavor = "bonsai" if use_bonsai else "baseline"
        return replace(self, backend=f"{flavor}-{self.strategy}")

    def with_hardware(self, hardware: bool) -> "ExecutionConfig":
        """This config with the ``hardware`` switch replaced."""
        return replace(self, hardware=hardware)

    # ------------------------------------------------------------------
    # Backend construction
    # ------------------------------------------------------------------
    def make_recorder(self, cpu=None):
        """A fresh :class:`~repro.hwmodel.cache.HierarchyRecorder`.

        Uses ``cache_config`` when set, else the caller's stage ``cpu``,
        else the paper's Table IV machine.
        """
        from ..hwmodel.cache import HierarchyRecorder

        machine = self.cache_config if self.cache_config is not None else cpu
        if machine is None:
            from ..hwmodel.cpu_config import TABLE_IV_CPU
            machine = TABLE_IV_CPU
        return HierarchyRecorder.for_cpu(machine)

    def make_backend(self, tree, *, recorder=None, layout=None,
                     stats=None) -> SearchBackend:
        """Construct this config's backend over ``tree``.

        With ``hardware`` set (or an explicit ``recorder`` passed), the
        backend is the recorded per-query counterpart of the configured
        flavour — trace-driven simulation depends on the exact access order,
        which only the per-query path defines — and functional results stay
        bitwise identical.  This holds for the ``-mp`` strategies too:
        ``ExecutionConfig(backend="bonsai-batched-mp", hardware=True)``
        records through ``bonsai-perquery``, so hardware runs never depend
        on worker scheduling.
        """
        if self.hardware or recorder is not None:
            if recorder is None:
                recorder = self.make_recorder()
            return get_backend(f"{self.flavor}-perquery", tree,
                               recorder=recorder, layout=layout, stats=stats)
        return get_backend(self.backend, tree, stats=stats)
