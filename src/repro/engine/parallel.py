"""Multiprocessing backends: shard a query batch across worker processes.

The batched engines (:mod:`repro.runtime`) already amortise the Python
interpreter over whole query batches, but one process still serves the whole
batch.  Radius and kNN queries are embarrassingly parallel across *queries*
— each query's traversal, pruning and result depend only on that query and
the (immutable) tree — so this module adds the last scaling dimension behind
the same :class:`~repro.engine.backends.SearchBackend` protocol:

``baseline-batched-mp`` / ``bonsai-batched-mp``
    Split the batch into contiguous query shards, run each shard through the
    single-process batched backend of the same flavour inside a worker
    process, and merge the per-shard results back in **shard-index order**.

Determinism contract
--------------------
The merged output is **bitwise identical** to the single-process
counterpart's, however the workers are scheduled:

* *Hits* — the single-process engines sort radius hits by ``(query, point)``
  and kNN rows are per-query; concatenating per-shard results of contiguous,
  disjoint query ranges in shard order reproduces that global order exactly
  (:func:`merge_radius_shards`, :func:`merge_knn_shards`).
* *Statistics* — :class:`~repro.kdtree.radius_search.SearchStats` and
  :class:`~repro.core.bonsai_search.BonsaiStats` counters aggregate exactly
  as if the queries had been issued one by one (the batched engines already
  guarantee this, see :meth:`SearchStats.note_leaf_visit_batch`), and merging
  is commutative integer addition — worker *completion* order cannot change
  the totals.  ``tests/test_parallel_backends.py`` shuffles shard results to
  lock this down.

Worker model
------------
Workers are plain ``multiprocessing`` pool processes (``fork`` start method
when the platform offers it, ``spawn`` otherwise).  Each backend owns **one
persistent pool**, created lazily on its first parallel call and initialised
once with the (pickled) tree — subsequent batches reuse the warm workers and
never re-transfer the tree; every shard task constructs a fresh
single-process backend over the worker's tree, so per-shard statistics come
back clean.  For the Bonsai flavour the *parent* compresses the tree on
backend construction (before any pool exists), and workers receive the
already-compressed tree — compression happens exactly once per tree, like
the single-process backend.  ``close()`` tears the pool down; an abandoned
backend's pool is finalised automatically.

Batches smaller than ``min_parallel_queries`` (default
:data:`MIN_PARALLEL_QUERIES`) and single-query ``search()`` calls take the
in-process path — process startup would dominate.  Inside a daemon process
(e.g. a worker of the parallel hardware sweep) the backends always run
in-process: nested pools are not allowed, and the results are identical
anyway.

Worker count resolution (:func:`resolve_workers`): an explicit
``n_workers=`` wins, then the ``REPRO_MP_WORKERS`` environment variable,
then ``max(2, min(4, cpu_count))``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..core.floatfmt import FLOAT16, FloatFormat
from ..kdtree.build import KDTree
from ..kdtree.radius_search import MemoryRecorder, SearchStats
from ..runtime.batch import BatchKNNResult, BatchRadiusResult, as_query_batch

__all__ = [
    "MIN_PARALLEL_QUERIES",
    "BaselineBatchedMPBackend",
    "BonsaiBatchedMPBackend",
    "merge_radius_shards",
    "merge_knn_shards",
    "plan_shards",
    "process_map",
    "resolve_workers",
]

#: Below this many queries a batch runs in-process: the per-shard work would
#: be smaller than the cost of starting the worker pool.
MIN_PARALLEL_QUERIES = 48


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """The effective worker count of a parallel backend or sweep.

    Precedence: an explicit ``n_workers`` (must be >= 1), then the
    ``REPRO_MP_WORKERS`` environment variable, then ``max(2, min(4, cpus))``
    — at least two so the shard/merge machinery is exercised (and tested)
    even on single-core machines, at most four because the pure-Python
    workloads stop scaling long before the typical core count does.

    ``REPRO_MP_WORKERS`` must hold a positive integer; anything else
    (``"four"``, ``"0"``, ``"-2"``) raises a ``ValueError`` naming the
    variable instead of an opaque parse error or a silent clamp.  Blank or
    whitespace-only values count as unset and fall through to the default.
    """
    if n_workers is not None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        return n_workers
    env = os.environ.get("REPRO_MP_WORKERS")
    if env is not None and env.strip():
        text = env.strip()
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"REPRO_MP_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_MP_WORKERS must be a positive integer, got {env!r}")
        return value
    return max(2, min(4, os.cpu_count() or 1))


def _pool_context():
    """The multiprocessing context: ``fork`` when available (cheap startup),
    ``spawn`` otherwise — workers receive all state through pickled
    initializer arguments, so both behave identically."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _in_daemon_process() -> bool:
    """Whether this process cannot spawn children (pool workers are daemonic)."""
    return multiprocessing.current_process().daemon


def process_map(fn: Callable, items: Sequence, *, n_jobs: int,
                initializer: Optional[Callable] = None,
                initargs: Tuple = (), pool=None) -> List:
    """Order-preserving parallel map over ``items``.

    Results are collected **by item index**, so the returned list is in
    ``items`` order no matter in which order the workers complete — the
    property every deterministic merge in this package builds on.  Falls
    back to a serial loop when ``n_jobs < 2``, when there is at most one
    item, or inside a daemon process (nested pools are not allowed); the
    serial path runs ``initializer`` locally but restores the previous
    worker-global state afterwards, so a serial run's tree/backend never
    leaks into later calls in the same process.

    With ``pool`` the map runs on that existing (already initialised)
    worker pool instead of creating a one-shot pool — the caller owns the
    pool's lifetime.  The ``-mp`` backends pass their persistent pool here;
    the sweeps use the one-shot path.
    """
    if pool is not None:
        handles = [pool.apply_async(fn, (item,)) for item in items]
        return [handle.get() for handle in handles]
    if n_jobs < 2 or len(items) < 2 or _in_daemon_process():
        if initializer is None:
            return [fn(item) for item in items]
        # The serial fallback runs the initializer in *this* process, so
        # whatever worker globals it sets (``_init_worker`` stores the
        # tree/backend in ``_WORKER_STATE``) must not outlive the map:
        # snapshot and restore them so two sequential serial maps with
        # different trees cannot cross-contaminate.
        global _WORKER_STATE
        saved_state = _WORKER_STATE
        try:
            initializer(*initargs)
            return [fn(item) for item in items]
        finally:
            _WORKER_STATE = saved_state
    ctx = _pool_context()
    with ctx.Pool(processes=min(n_jobs, len(items)), initializer=initializer,
                  initargs=initargs) as one_shot:
        return process_map(fn, items, n_jobs=n_jobs, pool=one_shot)


# ----------------------------------------------------------------------
# Shard planning and deterministic merges
# ----------------------------------------------------------------------
def plan_shards(n_queries: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, disjoint ``[start, stop)`` query ranges covering the batch.

    Shard boundaries are ``(i * n) // k`` — deterministic, order-preserving
    and never empty (the shard count is clamped to the query count).  Any
    contiguous split yields the same merged result (see the module
    determinism contract); the split only affects load balance.
    """
    if n_queries < 1:
        return []
    k = max(1, min(n_shards, n_queries))
    bounds = [(i * n_queries) // k for i in range(k + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(k)]


def merge_radius_shards(shards: Sequence[BatchRadiusResult]) -> BatchRadiusResult:
    """Concatenate per-shard radius results in shard-index order.

    Because shards are contiguous, disjoint query ranges and every
    single-process engine returns hits sorted by ``(query, point)``, the
    concatenation *is* the global ``(query, point)`` order — bitwise
    identical to serving the whole batch in one process.
    """
    n_total = sum(shard.n_queries for shard in shards)
    offsets = np.zeros(n_total + 1, dtype=np.intp)
    position = 0
    base = 0
    chunks: List[np.ndarray] = []
    for shard in shards:
        n_queries = shard.n_queries
        offsets[position + 1:position + n_queries + 1] = base + shard.offsets[1:]
        position += n_queries
        base += shard.point_indices.shape[0]
        chunks.append(shard.point_indices)
    indices = (np.concatenate(chunks) if chunks
               else np.zeros(0, dtype=np.intp))
    return BatchRadiusResult(offsets=offsets, point_indices=indices)


def merge_knn_shards(shards: Sequence[BatchKNNResult]) -> BatchKNNResult:
    """Stack per-shard kNN results in shard-index order.

    kNN rows are per-query, so row-stacking contiguous shards reproduces the
    single-process ``(Q, k)`` arrays exactly (every shard shares the same
    width — ``min(k, n_points)`` over the same tree).
    """
    return BatchKNNResult(
        indices=np.vstack([shard.indices for shard in shards]),
        distances=np.vstack([shard.distances for shard in shards]),
    )


def _terminate_pool(pool) -> None:
    """Tear down a backend's worker pool (workers are stateless)."""
    pool.terminate()
    pool.join()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state set by the pool initializer: (tree, inner backend name,
#: backend construction opts).  Each shard task builds a fresh backend from
#: it so per-shard statistics come back clean.
_WORKER_STATE: Optional[Tuple[KDTree, str, dict]] = None


def _init_worker(tree: KDTree, inner_name: str, opts: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (tree, inner_name, opts)


#: Keeps the worker's borrowed store handle (and thus its shared-memory
#: mappings) alive for the worker's lifetime.
_WORKER_STORE = None


def _init_worker_shared(store_name: str, inner_name: str, opts: dict) -> None:
    """Pool initializer for shared-store trees: attach by name, no pickle.

    The attach is *borrowed* (non-refcounted): ``Pool.terminate()`` kills
    workers without teardown, so a refcounted attach would leak references
    and keep the store alive forever.  The worker's lifetime is bounded by
    the backend holding a refcounted handle through ``tree._shared_store``.
    """
    global _WORKER_STATE, _WORKER_STORE
    from ..serve.store import SharedCloudStore

    _WORKER_STORE = SharedCloudStore.attach(store_name, refcounted=False)
    _WORKER_STATE = (_WORKER_STORE.tree(), inner_name, opts)


def _fresh_worker_backend():
    from .registry import get_backend

    if _WORKER_STATE is None:
        raise RuntimeError("worker pool was not initialised")
    tree, inner_name, opts = _WORKER_STATE
    return get_backend(inner_name, tree, **opts)


def _radius_shard(payload):
    """One radius shard: (queries, radius) -> (result arrays, shard stats)."""
    queries, radius = payload
    backend = _fresh_worker_backend()
    result = backend.radius_search(queries, radius)
    return result.offsets, result.point_indices, backend.stats, backend.bonsai_stats


def _knn_shard(payload):
    """One kNN shard: (queries, k) -> (result arrays, shard stats)."""
    queries, k = payload
    backend = _fresh_worker_backend()
    result = backend.knn(queries, k)
    return result.indices, result.distances, backend.stats, backend.bonsai_stats


# ----------------------------------------------------------------------
# The backends
# ----------------------------------------------------------------------
class _ShardedBatchedBackend:
    """Shared machinery of the multiprocessing flavours.

    Owns one in-process single-process backend (``inner_name``) that serves
    small batches and single queries and holds the accumulating statistics;
    large batches are sharded across a worker pool and merged
    deterministically (see the module docstring for the contract).
    """

    name = "batched-mp"
    #: ``"baseline"`` or ``"bonsai"`` — :func:`repro.engine.backends.recorded`
    #: rebuilds the flavour's per-query backend from this.
    flavor = "baseline"
    #: Registry name of the single-process counterpart each shard runs.
    inner_name = "baseline-batched"

    def __init__(self, tree: KDTree, *, stats: Optional[SearchStats] = None,
                 n_workers: Optional[int] = None,
                 min_parallel_queries: int = MIN_PARALLEL_QUERIES, **opts):
        from .registry import get_backend

        self.tree = tree
        self.n_workers = resolve_workers(n_workers)
        self.min_parallel_queries = min_parallel_queries
        self._opts = dict(opts)
        self._inner = get_backend(self.inner_name, tree, stats=stats,
                                  **self._opts)
        #: Accumulates across every call, exactly like the single-process
        #: backends' (parallel shards merge their counters back in).
        self.stats = self._inner.stats
        self.recorder: Optional[MemoryRecorder] = None
        self._pool = None
        self._pool_finalizer = None

    # ------------------------------------------------------------------
    # Parallel dispatch
    # ------------------------------------------------------------------
    def _use_parallel(self, n_queries: int) -> bool:
        return (n_queries >= self.min_parallel_queries
                and self.n_workers >= 2
                and not _in_daemon_process())

    def _ensure_pool(self):
        """The backend's persistent worker pool, created on first use.

        One pool per backend instance, reused across every parallel call —
        the tree is pickled to the workers exactly once (at pool startup),
        so repeated large batches (clustering BFS waves, NDT iterations)
        don't re-pay startup or tree transfer.  The tree is effectively
        immutable by then: the Bonsai flavour compresses it in the parent's
        constructor, before any pool can exist.  Torn down by
        :meth:`close` or automatically when the backend is collected.
        """
        if self._pool is None:
            import weakref

            ctx = _pool_context()
            store_name = getattr(self.tree, "shared_store_name", None)
            if store_name is not None:
                # Shared-store trees: workers attach by name, zero-copy.
                # Mandatory, not just faster — the shared tree's compressed
                # array wraps a shared-memory buffer and cannot pickle.
                initializer, initargs = _init_worker_shared, (
                    store_name, self.inner_name, self._opts)
            else:
                initializer, initargs = _init_worker, (
                    self.tree, self.inner_name, self._opts)
            self._pool = ctx.Pool(processes=self.n_workers,
                                  initializer=initializer, initargs=initargs)
            self._pool_finalizer = weakref.finalize(
                self, _terminate_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a later call restarts it)."""
        if self._pool is not None:
            self._pool_finalizer.detach()
            _terminate_pool(self._pool)
            self._pool = None
            self._pool_finalizer = None

    def _run_shards(self, worker, payloads):
        # Collected by shard index (process_map): completion order cannot
        # reorder the merge.
        return process_map(worker, payloads, n_jobs=self.n_workers,
                           pool=self._ensure_pool())

    def _merge_stats(self, parts) -> None:
        for _, _, shard_stats, shard_bonsai in parts:
            self.stats.merge(shard_stats)
            if shard_bonsai is not None and self.bonsai_stats is not None:
                self.bonsai_stats.merge(shard_bonsai)

    # ------------------------------------------------------------------
    # SearchBackend protocol
    # ------------------------------------------------------------------
    @property
    def bonsai_stats(self) -> Optional[BonsaiStats]:
        """Compressed-leaf counters (``None`` on the baseline flavour)."""
        return self._inner.bonsai_stats

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """Sharded batched radius search; bitwise identical to the inner
        backend's result (per-query index-sorted CSR form)."""
        batch = as_query_batch(queries)
        if not self._use_parallel(batch.shape[0]):
            return self._inner.radius_search(batch, radius)
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        payloads = [(batch[start:stop], radius)
                    for start, stop in plan_shards(batch.shape[0], self.n_workers)]
        parts = self._run_shards(_radius_shard, payloads)
        self._merge_stats(parts)
        return merge_radius_shards(
            [BatchRadiusResult(offsets=offsets, point_indices=indices)
             for offsets, indices, _, _ in parts])

    def knn(self, queries, k: int) -> BatchKNNResult:
        """Sharded batched kNN; bitwise identical to the inner backend's
        dense ``(Q, k)`` result (ties at the k-th place broken by lowest
        point index, like every batched engine)."""
        batch = as_query_batch(queries)
        if not self._use_parallel(batch.shape[0]):
            return self._inner.knn(batch, k)
        if k < 1:
            raise ValueError("k must be at least 1")
        payloads = [(batch[start:stop], k)
                    for start, stop in plan_shards(batch.shape[0], self.n_workers)]
        parts = self._run_shards(_knn_shard, payloads)
        self._merge_stats(parts)
        return merge_knn_shards(
            [BatchKNNResult(indices=indices, distances=distances)
             for indices, distances, _, _ in parts])

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query convenience wrapper — always in-process (sorted
        point indices, like the inner backend)."""
        return self._inner.search(query, radius)


class BaselineBatchedMPBackend(_ShardedBatchedBackend):
    """``baseline-batched`` sharded across worker processes."""

    name = "baseline-batched-mp"
    flavor = "baseline"
    inner_name = "baseline-batched"


class BonsaiBatchedMPBackend(_ShardedBatchedBackend):
    """``bonsai-batched`` sharded across worker processes.

    The parent process compresses the tree on construction (once); workers
    receive the already-compressed tree, so no worker repeats the
    compression pass and ``BonsaiStats`` aggregates exactly like the
    single-process backend's.
    """

    name = "bonsai-batched-mp"
    flavor = "bonsai"
    inner_name = "bonsai-batched"

    def __init__(self, tree: KDTree, *, fmt: FloatFormat = FLOAT16,
                 stats: Optional[SearchStats] = None,
                 n_workers: Optional[int] = None,
                 min_parallel_queries: int = MIN_PARALLEL_QUERIES):
        super().__init__(tree, stats=stats, n_workers=n_workers,
                         min_parallel_queries=min_parallel_queries, fmt=fmt)
        self.fmt = fmt
        #: Tree-compression report (``None`` when the tree was pre-compressed).
        self.report = self._inner.report
