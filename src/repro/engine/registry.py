"""Backend registry: execution modes selected by *name*, not by import.

The paper's claims are comparisons between execution modes (baseline vs.
Bonsai, functional vs. trace-driven), so mode selection must be data a
config file, a CLI flag or a sweep loop can carry — the same normalisation
the data-driven ISCA retrospectives apply to decades of heterogeneous
machine configurations.  Workloads, benchmarks and the CLI therefore select
backends through :func:`get_backend`; the registry is the single source of
the valid names (``--help`` listings, sweep dimensions, error messages all
derive from it, so nothing drifts).

::

    from repro.engine import backend_names, get_backend

    for name in backend_names():
        backend = get_backend(name, tree)
        result = backend.radius_search(queries, radius=0.6)

Extending the registry follows the same pattern the ``-mp`` backends use: a
factory with the ``factory(tree, **opts) -> SearchBackend`` signature,
registered under a ``<flavor>-<strategy>`` name.  This is literally how
``baseline-batched-mp`` ships (see :mod:`repro.engine.parallel`)::

    from repro.engine import register_backend
    from repro.engine.parallel import BaselineBatchedMPBackend

    register_backend("baseline-batched-mp", BaselineBatchedMPBackend)

After that one call the name works everywhere backends are selected — the
CLI ``--backend`` flags, ``ExecutionConfig``, ``PointCloudIndex.backend``,
the benchmark dimension tables — and the cross-backend parity suite
(``tests/test_backend_parity.py``) fuzzes it automatically.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from ..kdtree.build import KDTree
from .backends import (
    BaselineBatchedBackend,
    BaselinePerQueryBackend,
    BonsaiBatchedBackend,
    BonsaiPerQueryBackend,
    SearchBackend,
)

__all__ = ["backend_names", "get_backend", "register_backend"]


_REGISTRY: Dict[str, Callable[..., SearchBackend]] = {}

#: Backend names are ``<flavor>-<strategy>``: lowercase dash-separated
#: segments, at least two.  The engine layer splits on the first dash
#: (``ExecutionConfig.flavor`` / ``.strategy``, the recorded-wrapper's
#: ``<flavor>-perquery`` lookup), so the shape is enforced at registration.
_NAME_RE = re.compile(r"[a-z0-9_]+(?:-[a-z0-9_]+)+")


def register_backend(name: str, factory: Callable[..., SearchBackend]) -> None:
    """Register ``factory`` (``factory(tree, **opts) -> SearchBackend``).

    Names follow the ``<flavor>-<strategy>`` convention of the built-in
    backends (e.g. ``baseline-batched``) — enforced here, because the rest
    of the engine layer derives the flavor and strategy from the name.
    Registering an existing name is an error (there is exactly one meaning
    per name, everywhere).
    """
    if not _NAME_RE.fullmatch(name):
        raise ValueError(
            f"backend name {name!r} must be '<flavor>-<strategy>' "
            f"(lowercase dash-separated segments, e.g. 'baseline-batched')")
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    """Sorted names of all registered execution backends."""
    return sorted(_REGISTRY)


def get_backend(name: str, tree: KDTree, **opts) -> SearchBackend:
    """Construct the named backend over ``tree``.

    ``opts`` are forwarded to the backend constructor: every backend accepts
    ``stats=`` (a shared :class:`~repro.kdtree.radius_search.SearchStats`
    accumulator); the per-query flavours additionally accept ``recorder=`` /
    ``layout=`` (the hardware-recording hooks), the Bonsai flavours ``fmt=``
    (the reduced float format), and the ``-mp`` strategies ``n_workers=`` /
    ``min_parallel_queries=`` (worker-pool sizing, see
    :mod:`repro.engine.parallel`).  Raises ``KeyError`` naming the
    registered backends on an unknown name.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names()) or "<none>"
        raise KeyError(f"unknown backend {name!r}; registered: {known}") from None
    return factory(tree, **opts)


register_backend("baseline-perquery", BaselinePerQueryBackend)
register_backend("baseline-batched", BaselineBatchedBackend)
register_backend("bonsai-perquery", BonsaiPerQueryBackend)
register_backend("bonsai-batched", BonsaiBatchedBackend)

# The multiprocessing flavours live in their own module (they build on the
# batched backends above through this registry), imported here so the names
# register exactly once, at the same time as the built-ins.
from .parallel import BaselineBatchedMPBackend, BonsaiBatchedMPBackend  # noqa: E402

register_backend("baseline-batched-mp", BaselineBatchedMPBackend)
register_backend("bonsai-batched-mp", BonsaiBatchedMPBackend)
