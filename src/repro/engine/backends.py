"""Execution backends: one query surface over every search implementation.

The repo grew four ways to answer the same two questions ("which points are
within ``r`` of these queries?", "which ``k`` points are nearest?"):
per-query baseline search, the batched vectorised engine, and the Bonsai
compressed variants of both — plus a recorded flavour that streams every
tree access through the trace-driven cache simulation.  Each spelled its own
API, so every consumer (workloads, benchmarks, the CLI) carried
``use_bonsai`` / ``simulate_caches`` / ``hardware`` boolean triples.

This module normalises them behind one :class:`SearchBackend` protocol:

======================== ============================================== =========
name                     implementation                                 leaf data
======================== ============================================== =========
``baseline-perquery``    one traversal per query                        32-bit
``baseline-batched``     one traversal per batch (:mod:`repro.runtime`) 32-bit
``baseline-batched-mp``  batch sharded across worker processes          32-bit
``bonsai-perquery``      per-query compressed search (:mod:`repro.core`) compressed
``bonsai-batched``       batched compressed search                      compressed
``bonsai-batched-mp``    compressed batch sharded across processes      compressed
======================== ============================================== =========

The four single-process backends live here; the two multiprocessing
strategies live in :mod:`repro.engine.parallel` (they compose the batched
backends below through the registry).  ``docs/PERFORMANCE.md`` is the
selection guide, with measured throughput per backend.

Every backend — whatever its internal execution strategy — returns the
uniform batched containers (:class:`~repro.runtime.batch.BatchRadiusResult`,
:class:`~repro.runtime.batch.BatchKNNResult`) with per-query index-sorted
radius hits, and accumulates the shared counters
(:class:`~repro.kdtree.radius_search.SearchStats`, plus
:class:`~repro.core.bonsai_search.BonsaiStats` for the compressed flavours).
All of them produce *identical* functional results; the cross-backend parity
suite (``tests/test_backend_parity.py``) locks that down for every
registered name — including the multiprocessing ones, whose shard merge is
bitwise-deterministic whatever the worker completion order.

Any backend composes with :func:`recorded`, which rebuilds it on the
per-query path with a :class:`~repro.hwmodel.cache.HierarchyRecorder`
attached, so every tree access streams through the cache simulation while
the functional results stay bitwise unchanged.

Backends are constructed by name through :mod:`repro.engine.registry`
(:func:`~repro.engine.registry.get_backend`); nothing outside this package
should instantiate the concrete classes directly.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.bonsai_search import BonsaiRadiusSearch, BonsaiStats
from ..core.floatfmt import FLOAT16, FloatFormat
from ..kdtree.build import KDTree
from ..kdtree.knn import nearest_neighbors
from ..kdtree.layout import TreeMemoryLayout
from ..kdtree.radius_search import MemoryRecorder, SearchStats, radius_search
from ..runtime.batch import (
    BatchKNNResult,
    BatchQueryEngine,
    BatchRadiusResult,
    as_query_batch,
)
from ..runtime.bonsai import BonsaiBatchSearcher

__all__ = [
    "SearchBackend",
    "BaselinePerQueryBackend",
    "BaselineBatchedBackend",
    "BonsaiPerQueryBackend",
    "BonsaiBatchedBackend",
    "recorded",
]


@runtime_checkable
class SearchBackend(Protocol):
    """What every execution backend exposes (duck-typed).

    ``radius_search`` / ``knn`` take whole query batches and return the
    uniform batched result containers; ``search`` is the single-query
    convenience used by per-query consumers (its return order is the
    backend's native traversal order, which the recorded paths depend on).
    ``stats`` always accumulates; ``bonsai_stats`` is ``None`` on the
    baseline flavours and ``recorder`` is ``None`` on unrecorded backends.

    Units and determinism: queries and radii are in the cloud's coordinate
    unit (metres for every built-in scenario), returned distances are
    euclidean in the same unit, and byte counters
    (``stats.point_bytes_loaded`` etc.) are in bytes.  For a given tree and
    query batch every registered backend must return bitwise-identical hits
    and neighbours and charge identical functional counters — execution
    strategy (per-query, batched, multiprocessing) is never allowed to show
    up in results.
    """

    name: str
    tree: KDTree
    stats: SearchStats
    bonsai_stats: Optional[BonsaiStats]
    recorder: Optional[MemoryRecorder]

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:  # pragma: no cover - protocol
        ...

    def knn(self, queries, k: int) -> BatchKNNResult:  # pragma: no cover - protocol
        ...

    def search(self, query: Sequence[float], radius: float) -> List[int]:  # pragma: no cover - protocol
        ...


class _PerQueryBackendBase:
    """Shared machinery of the per-query flavours.

    Single queries go through the reference per-query search; batches loop
    over it and present the hits in the batched CSR layout with each query's
    indices sorted — bitwise identical to the batched engines' output (the
    property the hardware-in-the-loop pipeline relies on).  kNN batches loop
    over the per-query branch-and-bound search into the dense
    :class:`BatchKNNResult` layout.
    """

    name = "perquery"
    #: "baseline" or "bonsai"; :func:`recorded` rebuilds a backend of the
    #: same flavour with a recorder attached.
    flavor = "baseline"

    tree: KDTree
    stats: SearchStats
    recorder: Optional[MemoryRecorder]

    @property
    def hierarchy(self):
        """Cache-hierarchy statistics of the recorder (``None`` unrecorded)."""
        return getattr(self.recorder, "stats", None)

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """Per-query searches presented in the batched (CSR) result format."""
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        batch = as_query_batch(queries)
        offsets = np.zeros(batch.shape[0] + 1, dtype=np.intp)
        chunks: List[np.ndarray] = []
        for index, query in enumerate(batch):
            hits = np.sort(np.asarray(self.search(query, radius), dtype=np.intp))
            chunks.append(hits)
            offsets[index + 1] = offsets[index] + hits.shape[0]
        indices = (np.concatenate(chunks) if chunks
                   else np.zeros(0, dtype=np.intp))
        return BatchRadiusResult(offsets=offsets, point_indices=indices)

    def knn(self, queries, k: int) -> BatchKNNResult:
        """Per-query kNN presented in the dense batched result layout.

        Both flavours answer kNN through the exact 32-bit branch-and-bound
        search (radius search is the operation the compressed leaves
        accelerate; the compressed-kNN extension lives separately in
        :mod:`repro.core.bonsai_knn`), so all backends return identical
        neighbours.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        batch = as_query_batch(queries)
        width = min(k, self.tree.n_points)
        indices = np.full((batch.shape[0], width), -1, dtype=np.intp)
        distances = np.full((batch.shape[0], width), np.inf)
        for row, query in enumerate(batch):
            for column, (point_index, distance) in enumerate(
                    nearest_neighbors(self.tree, query, k, stats=self.stats)):
                indices[row, column] = point_index
                distances[row, column] = distance
        return BatchKNNResult(indices=indices, distances=distances)


class BaselinePerQueryBackend(_PerQueryBackendBase):
    """One 32-bit traversal per query (the PCL/FLANN reference path)."""

    name = "baseline-perquery"
    flavor = "baseline"

    def __init__(self, tree: KDTree, *, stats: Optional[SearchStats] = None,
                 recorder: Optional[MemoryRecorder] = None,
                 layout: Optional[TreeMemoryLayout] = None):
        self.tree = tree
        self.stats = stats if stats is not None else SearchStats()
        self.recorder = recorder
        self.layout = layout or (TreeMemoryLayout(n_points=tree.n_points)
                                 if recorder is not None else None)
        self.bonsai_stats: Optional[BonsaiStats] = None

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query radius search (native traversal order)."""
        return radius_search(self.tree, query, radius, stats=self.stats,
                             recorder=self.recorder, layout=self.layout)


class BonsaiPerQueryBackend(_PerQueryBackendBase):
    """One compressed-leaf traversal per query (the paper's search).

    Compresses the tree on construction when it is not already compressed;
    with a recorder attached, that build-time compression traffic is part of
    the recorded trace (as in the extract kernel), whereas a pre-compressed
    tree — an offline map — contributes nothing.
    """

    name = "bonsai-perquery"
    flavor = "bonsai"

    def __init__(self, tree: KDTree, *, fmt: FloatFormat = FLOAT16,
                 stats: Optional[SearchStats] = None,
                 recorder: Optional[MemoryRecorder] = None,
                 layout: Optional[TreeMemoryLayout] = None):
        self.tree = tree
        self.fmt = fmt
        self.recorder = recorder
        self.layout = layout or (TreeMemoryLayout(n_points=tree.n_points)
                                 if recorder is not None else None)
        self._bonsai = BonsaiRadiusSearch(tree, fmt=fmt, recorder=recorder,
                                          layout=self.layout)
        if stats is not None:
            self._bonsai.stats = stats
        self.stats = self._bonsai.stats
        #: Tree-compression report (``None`` when the tree was pre-compressed).
        self.report = self._bonsai.report

    @property
    def bonsai_stats(self) -> BonsaiStats:
        """Compressed-leaf counters of the underlying inspector."""
        return self._bonsai.bonsai_stats

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query compressed radius search (native traversal order)."""
        return self._bonsai.search(query, radius)


class BaselineBatchedBackend:
    """One 32-bit traversal per query *batch* (:mod:`repro.runtime`)."""

    name = "baseline-batched"
    flavor = "baseline"

    def __init__(self, tree: KDTree, *, stats: Optional[SearchStats] = None):
        self.tree = tree
        self._engine = BatchQueryEngine(tree, stats=stats)
        self.stats = self._engine.stats
        self.bonsai_stats: Optional[BonsaiStats] = None
        self.recorder: Optional[MemoryRecorder] = None

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """Batched radius search (per-query index-sorted CSR result)."""
        return self._engine.radius_search(queries, radius)

    def knn(self, queries, k: int) -> BatchKNNResult:
        """Batched kNN (dense, distance-then-index sorted rows)."""
        return self._engine.knn(queries, k)

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query convenience wrapper (sorted point indices)."""
        return self._engine.search(query, radius)


class BonsaiBatchedBackend:
    """One compressed-leaf traversal per query batch, decoded once per leaf."""

    name = "bonsai-batched"
    flavor = "bonsai"

    def __init__(self, tree: KDTree, *, fmt: FloatFormat = FLOAT16,
                 stats: Optional[SearchStats] = None):
        self.tree = tree
        self.fmt = fmt
        self._searcher = BonsaiBatchSearcher(tree, fmt=fmt)
        if stats is not None:
            self._searcher.stats = stats
        self.stats = self._searcher.stats
        self.recorder: Optional[MemoryRecorder] = None
        #: Tree-compression report (``None`` when the tree was pre-compressed).
        self.report = self._searcher.report
        # kNN goes through the baseline batched engine (see
        # ``_PerQueryBackendBase.knn`` for why), sharing this backend's stats.
        self._knn_engine = BatchQueryEngine(tree, stats=self.stats)

    @property
    def bonsai_stats(self) -> BonsaiStats:
        """Compressed-leaf counters of the underlying batch searcher."""
        return self._searcher.bonsai_stats

    def radius_search(self, queries, radius: float) -> BatchRadiusResult:
        """Batched compressed radius search; identical results to baseline."""
        return self._searcher.radius_search(queries, radius)

    def knn(self, queries, k: int) -> BatchKNNResult:
        """Batched kNN over the 32-bit points (exact, same as baseline)."""
        return self._knn_engine.knn(queries, k)

    def search(self, query: Sequence[float], radius: float) -> List[int]:
        """Single-query convenience wrapper (sorted point indices)."""
        return self._searcher.search(query, radius)


def recorded(backend: SearchBackend, *,
             recorder: Optional[MemoryRecorder] = None,
             cpu=None) -> SearchBackend:
    """A hardware-recorded counterpart of ``backend`` over the same tree.

    Trace-driven cache simulation depends on the exact order of the recorded
    memory accesses, so the recorded counterpart always executes on the
    per-query path — regardless of the wrapped backend's strategy — with a
    :class:`~repro.hwmodel.cache.HierarchyRecorder` attached.  Functional
    results are bitwise identical to the unrecorded backend's (the per-query
    hits are re-sorted into the batched order); the parity suite asserts
    this for every named backend.

    Parameters
    ----------
    backend:
        Any constructed backend; only its tree and flavour are reused (the
        recorded backend accumulates its own fresh statistics).  The
        flavour's ``<flavor>-perquery`` backend must be registered — a
        custom flavour without a per-query counterpart is an error, not a
        silent fallback to the baseline.
    recorder:
        The recorder to attach; built from ``cpu`` when omitted.
    cpu:
        Cache geometry (:class:`~repro.hwmodel.cpu_config.CPUConfig`) for
        the default recorder; the paper's Table IV machine when omitted.
    """
    from .registry import get_backend

    if recorder is None:
        from ..hwmodel.cache import HierarchyRecorder
        if cpu is None:
            from ..hwmodel.cpu_config import TABLE_IV_CPU
            cpu = TABLE_IV_CPU
        recorder = HierarchyRecorder.for_cpu(cpu)
    flavor = getattr(backend, "flavor", None) or backend.name.split("-", 1)[0]
    opts = {"fmt": backend.fmt} if hasattr(backend, "fmt") else {}
    return get_backend(f"{flavor}-perquery", backend.tree,
                       recorder=recorder, **opts)
