"""ShardedPointCloudIndex: city-scale clouds as a grid of per-tile indexes.

The unsharded :class:`~repro.engine.index.PointCloudIndex` builds one k-d
tree over the whole cloud — fine for single LiDAR frames (tens of thousands
of points), but a city-scale map (1M–10M points) makes that one tree slow to
build, expensive to compress and impossible to page: every query touches one
monolithic structure.  This module partitions the cloud into **XY grid
tiles** and gives each tile its own :class:`PointCloudIndex` — built lazily
on first touch, compressed lazily on first Bonsai use, torn down tile by
tile — so map-scale clouds build and query in bounded memory and the
cache-geometry sweep can finally reach L2-capacity working sets
(``benchmarks/bench_map_scale.py``).

Determinism contract
--------------------
Query results are **bitwise identical** to the unsharded
``PointCloudIndex`` over the same cloud (up to kNN distance ties at the
k-th place, the same caveat the batched engines already carry versus the
per-query heaps — see :mod:`repro.runtime.batch`).  Three mechanisms:

* *Shared distance arithmetic.*  Every squared distance that reaches a
  result is a per-(query, point) quantity computed by the kernels of
  :mod:`repro.runtime.kernels` — the same float64 arithmetic whatever tree,
  leaf or tile the point sits in, so tile membership cannot change a
  distance.
* *Conservative tile selection.*  A tile is queried whenever the search
  volume intersects the tile's actual point bounding box (with a small
  relative slack absorbing the bounding-box rounding), so no in-range point
  can hide in a skipped tile; visiting extra tiles only adds work, never
  results.
* *Canonical merge order.*  Cross-tile radius hits are re-sorted into the
  global per-query ``(query, point)`` CSR order; kNN candidates go through
  the exact selection kernel of the batched engine
  (:meth:`~repro.runtime.batch.BatchQueryEngine._knn_select`, sort by
  ``(query, d2, point)``, square root applied after selection).  Query
  batches are processed in contiguous chunks concatenated through the
  parallel shard-merge helpers (:func:`~repro.engine.parallel.merge_radius_shards`
  / :func:`~repro.engine.parallel.merge_knn_shards`) in index order, the
  same contract the ``-mp`` backends are locked to.

Any registered backend name runs per tile — including the
``*-batched-mp`` strategies, whose worker pools then shard each tile's
sub-batch a second time — and the per-tile statistics merge into
:attr:`search_stats` / :attr:`bonsai_stats` / :attr:`hierarchy_stats`
exactly like the unsharded facade's.

Example
-------
>>> import numpy as np
>>> from repro.engine import PointCloudIndex, ShardedPointCloudIndex
>>> points = np.random.default_rng(0).uniform(-80, 80, (20000, 3)).astype(np.float32)
>>> sharded = ShardedPointCloudIndex(points, tile_size=40.0)
>>> flat = PointCloudIndex(points)
>>> a = sharded.radius_search(points[:32], radius=2.5)
>>> b = flat.radius_search(points[:32], radius=2.5)
>>> bool(np.array_equal(a.point_indices, b.point_indices))
True
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.bonsai_search import BonsaiStats
from ..core.floatfmt import FLOAT16, FloatFormat
from ..kdtree.build import KDTreeConfig
from ..kdtree.radius_search import SearchStats
from ..pointcloud.cloud import PointCloud
from ..runtime.batch import (
    BatchKNNResult,
    BatchQueryEngine,
    BatchRadiusResult,
    _build_radius_result,
    _empty_radius_result,
    as_query_batch,
)
from ..runtime.kernels import rowwise_distances2
from .index import DEFAULT_BACKEND, PointCloudIndex
from .parallel import merge_knn_shards, merge_radius_shards, plan_shards

__all__ = ["ShardedPointCloudIndex", "DEFAULT_TILE_SIZE"]

#: Default XY tile edge length (metres for the built-in scenarios).  At
#: map-scale point densities (~40 points/m^2 of surface) a 32 m tile holds a
#: few thousand points — trees build in milliseconds and single tiles fit in
#: L2-sized working sets.
DEFAULT_TILE_SIZE = 32.0

#: Queries per processing chunk.  Chunks bound the (chunk, tiles) distance
#: matrix the tile-selection step materialises; contiguous chunks merge
#: through the shard-merge helpers, so the chunk size never reaches results.
DEFAULT_CHUNK_QUERIES = 2048

#: Relative / absolute slack of the sphere-vs-tile-bbox intersection test:
#: the bbox distance is computed with different floating-point rounding than
#: the per-point kernels, so the test over-admits by a hair rather than ever
#: skipping a tile holding an in-range point.
_BBOX_SLACK_REL = 1e-9
_BBOX_SLACK_ABS = 1e-12


class ShardedPointCloudIndex:
    """A grid of per-tile :class:`PointCloudIndex` behind one query surface.

    Parameters
    ----------
    cloud:
        A :class:`~repro.pointcloud.cloud.PointCloud` or an ``(N, 3)``
        array.  An empty cloud is allowed (zero tiles; every query returns
        empty results) — unlike the unsharded index, whose tree build
        rejects it.
    tile_size:
        XY edge length of the square grid tiles (must be positive).
    tree_config:
        Per-tile tree-build parameters (PCL defaults when omitted).
    fmt:
        Reduced float format of the lazy per-tile Bonsai compression.
    chunk_queries:
        Queries per processing chunk (affects memory/throughput only).
    """

    def __init__(self, cloud, *, tile_size: float = DEFAULT_TILE_SIZE,
                 tree_config: Optional[KDTreeConfig] = None,
                 fmt: FloatFormat = FLOAT16,
                 chunk_queries: int = DEFAULT_CHUNK_QUERIES):
        if tile_size <= 0.0:
            raise ValueError("tile_size must be positive")
        if chunk_queries < 1:
            raise ValueError("chunk_queries must be at least 1")
        if isinstance(cloud, PointCloud):
            points = cloud.points
        else:
            points = np.asarray(cloud, dtype=np.float32)
            if points.ndim != 2 or points.shape[1] != 3:
                raise ValueError("points must form an (N, 3) array")
        self.tile_size = float(tile_size)
        self.tree_config = tree_config
        self.fmt = fmt
        self.chunk_queries = int(chunk_queries)
        #: The full cloud, in the exact float32 form every tile tree indexes
        #: (the same cast the unsharded tree build applies).
        self._points = np.ascontiguousarray(points, dtype=np.float32)
        self._points_f64 = self._points.astype(np.float64)
        self._partition()
        #: Per-tile indexes, built lazily on first touch.
        self._tile_indexes: List[Optional[PointCloudIndex]] = (
            [None] * self.n_tiles)

    def _partition(self) -> None:
        """Assign every point to its XY grid tile and record tile extents."""
        n = self._points_f64.shape[0]
        if n == 0:
            self._tile_cells = np.empty((0, 2), dtype=np.int64)
            self._tile_point_indices: List[np.ndarray] = []
            self._tile_lo = np.empty((0, 3), dtype=np.float64)
            self._tile_hi = np.empty((0, 3), dtype=np.float64)
            return
        cells = np.floor(self._points_f64[:, :2] / self.tile_size).astype(np.int64)
        # Unique cells come back lexicographically sorted — the canonical
        # tile numbering; the stable argsort keeps global point indices
        # ascending within each tile, so local -> global index maps are
        # monotone and per-tile kNN tie-breaking by local index equals
        # tie-breaking by global index.
        unique_cells, inverse = np.unique(cells, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=unique_cells.shape[0])
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        sorted_points = self._points_f64[order]
        self._tile_cells = unique_cells
        self._tile_point_indices = np.split(order, np.cumsum(counts)[:-1])
        self._tile_lo = np.minimum.reduceat(sorted_points, starts, axis=0)
        self._tile_hi = np.maximum.reduceat(sorted_points, starts, axis=0)

    # ------------------------------------------------------------------
    # Tile facts
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of indexed points (across all tiles)."""
        return int(self._points.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The full ``(N, 3)`` float32 cloud, in global index order."""
        return self._points

    @property
    def n_tiles(self) -> int:
        """Number of non-empty grid tiles."""
        return len(self._tile_point_indices)

    @property
    def tile_counts(self) -> np.ndarray:
        """Points per tile, in tile order."""
        return np.array([idx.size for idx in self._tile_point_indices],
                        dtype=np.intp)

    @property
    def tile_cells(self) -> np.ndarray:
        """The ``(T, 2)`` integer XY grid coordinates of each tile."""
        return self._tile_cells

    def tile_bounds(self, tile: int) -> Tuple[np.ndarray, np.ndarray]:
        """The actual point bounding box ``(lo, hi)`` of one tile."""
        return self._tile_lo[tile].copy(), self._tile_hi[tile].copy()

    @property
    def n_built_tiles(self) -> int:
        """Number of tiles whose index has been built so far (lazy build)."""
        return sum(1 for index in self._tile_indexes if index is not None)

    def tile_index(self, tile: int) -> PointCloudIndex:
        """The named tile's :class:`PointCloudIndex`, built on first touch."""
        index = self._tile_indexes[tile]
        if index is None:
            index = PointCloudIndex(
                self._points[self._tile_point_indices[tile]],
                tree_config=self.tree_config, fmt=self.fmt)
            self._tile_indexes[tile] = index
        return index

    def built_tile_indexes(self) -> List[Tuple[int, PointCloudIndex]]:
        """``(tile, index)`` pairs of the tiles built so far, in tile order.

        Lets callers (the map-scale sweep, tests) walk per-tile statistics
        without forcing untouched tiles to build.
        """
        return [(tile, index) for tile, index in enumerate(self._tile_indexes)
                if index is not None]

    def build_all(self) -> "ShardedPointCloudIndex":
        """Eagerly build every tile index (benchmark warm-up); returns self."""
        for tile in range(self.n_tiles):
            self.tile_index(tile)
        return self

    def ensure_compressed(self) -> None:
        """Build and Bonsai-compress every tile eagerly.

        Normal use never needs this: each tile compresses itself the first
        time a Bonsai backend touches it.  Benchmarks call it to move the
        compression pass out of the timed region.
        """
        for tile in range(self.n_tiles):
            self.tile_index(tile).ensure_compressed()

    def close(self) -> None:
        """Release every built tile's backends (worker pools included).

        Idempotent; tile trees and compression stay cached, so later
        queries only rebuild backends, exactly like
        :meth:`PointCloudIndex.close` — and shutdown-safe the same way
        (tile closes racing interpreter finalization are swallowed).
        """
        for index in self._tile_indexes:
            if index is not None:
                index.close()

    def __enter__(self) -> "ShardedPointCloudIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Tile selection
    # ------------------------------------------------------------------
    def _tile_bbox_distances2(self, chunk: np.ndarray) -> np.ndarray:
        """Squared distance of each chunk query to each tile's point bbox.

        ``(C, T)`` matrix; zero when the query lies inside the box.  This is
        the standard point-vs-AABB clamp distance, used only to *select*
        tiles — never as a result distance — so its rounding is covered by
        the slack of the intersection tests.
        """
        below = np.maximum(self._tile_lo[None, :, :] - chunk[:, None, :], 0.0)
        above = np.maximum(chunk[:, None, :] - self._tile_hi[None, :, :], 0.0)
        gap = np.maximum(below, above)
        return np.einsum("ctd,ctd->ct", gap, gap)

    def _backend_for(self, tile: int, name: str, recorded: bool, cpu):
        return self.tile_index(tile).backend(name, recorded=recorded, cpu=cpu)

    def _query_chunks(self, n_queries: int) -> List[Tuple[int, int]]:
        n_chunks = -(-n_queries // self.chunk_queries)
        return plan_shards(n_queries, n_chunks)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def radius_search(self, queries, radius: float, *,
                      backend: str = DEFAULT_BACKEND, recorded: bool = False,
                      cpu=None) -> BatchRadiusResult:
        """All indexed points within ``radius`` of each query.

        Bitwise identical to the unsharded index's result (per-query
        index-sorted CSR form) whatever the tiling, chunking or backend;
        only tiles whose point bounding box intersects a query's search
        sphere are consulted — a query landing in zero tiles returns an
        empty (well-formed) row.  ``recorded``/``cpu`` select each tile's
        hardware-recorded counterpart, as in :meth:`PointCloudIndex.backend`.
        """
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        batch = as_query_batch(queries)
        n_queries = batch.shape[0]
        if n_queries == 0 or self.n_tiles == 0:
            return _empty_radius_result(n_queries)
        r = float(radius)
        threshold = r * r * (1.0 + _BBOX_SLACK_REL) + _BBOX_SLACK_ABS
        parts: List[BatchRadiusResult] = []
        for start, stop in self._query_chunks(n_queries):
            chunk = batch[start:stop]
            bbox_d2 = self._tile_bbox_distances2(chunk)
            hit_queries: List[np.ndarray] = []
            hit_points: List[np.ndarray] = []
            for tile in np.nonzero((bbox_d2 <= threshold).any(axis=0))[0]:
                sub = np.nonzero(bbox_d2[:, tile] <= threshold)[0]
                result = self._backend_for(tile, backend, recorded, cpu) \
                    .radius_search(chunk[sub], r)
                if result.total_matches:
                    hit_queries.append(np.repeat(sub, result.counts))
                    hit_points.append(
                        self._tile_point_indices[tile][result.point_indices])
            parts.append(_build_radius_result(stop - start, hit_queries,
                                              hit_points))
        return merge_radius_shards(parts)

    def knn(self, queries, k: int, *, backend: str = DEFAULT_BACKEND,
            recorded: bool = False, cpu=None) -> BatchKNNResult:
        """The ``k`` nearest indexed points of each query.

        Tiles are visited per query in increasing bounding-box distance and
        the visit stops as soon as the next tile's box is farther than the
        query's current k-th candidate — each visited tile answers a
        standard per-tile kNN, candidate distances are recomputed through
        the shared per-pair kernel, and the final selection is the batched
        engine's (sort by ``(query, d2, point)``), so the result is bitwise
        identical to the unsharded index's up to k-th-place distance ties.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        batch = as_query_batch(queries)
        n_queries = batch.shape[0]
        width = min(k, self.n_points)
        if n_queries == 0 or self.n_tiles == 0:
            return BatchKNNResult(
                indices=np.full((n_queries, width), -1, dtype=np.intp),
                distances=np.full((n_queries, width), np.inf))
        parts = [self._knn_chunk(batch[start:stop], k, width, backend,
                                 recorded, cpu)
                 for start, stop in self._query_chunks(n_queries)]
        return merge_knn_shards(parts)

    def _knn_chunk(self, chunk: np.ndarray, k: int, width: int, backend: str,
                   recorded: bool, cpu) -> BatchKNNResult:
        """Serve one contiguous chunk of kNN queries (see :meth:`knn`)."""
        n_chunk = chunk.shape[0]
        n_tiles = self.n_tiles
        bbox_d2 = self._tile_bbox_distances2(chunk)
        # Stable argsort: per query, tiles in (bbox distance, tile id) order.
        visit_order = np.argsort(bbox_d2, axis=1, kind="stable")
        next_rank = np.zeros(n_chunk, dtype=np.intp)
        #: k-th smallest candidate squared distance so far (inf until a
        #: query has accumulated ``width`` candidates) — the pruning bound.
        tau = np.full(n_chunk, np.inf)
        cand_points: List[List[np.ndarray]] = [[] for _ in range(n_chunk)]
        cand_d2: List[List[np.ndarray]] = [[] for _ in range(n_chunk)]
        cand_counts = np.zeros(n_chunk, dtype=np.intp)

        while True:
            # Each query's next tile, or -1 when it is done: tiles come in
            # increasing bbox distance, so the first tile beyond tau ends
            # the query's visit (all later tiles are at least as far).
            next_tile = np.full(n_chunk, -1, dtype=np.intp)
            for q in np.nonzero(next_rank < n_tiles)[0]:
                tile = visit_order[q, next_rank[q]]
                if (bbox_d2[q, tile]
                        <= tau[q] * (1.0 + _BBOX_SLACK_REL) + _BBOX_SLACK_ABS):
                    next_tile[q] = tile
                else:
                    next_rank[q] = n_tiles
            pending = next_tile >= 0
            if not pending.any():
                break
            for tile in np.unique(next_tile[pending]):
                sub = np.nonzero(next_tile == tile)[0]
                result = self._backend_for(tile, backend, recorded, cpu) \
                    .knn(chunk[sub], k)
                # Per-tile width is min(k, tile points): rows carry no
                # padding, and the local->global map is monotone, so the
                # tile's top-k by (d2, local index) is its top-k by
                # (d2, global index).
                local_width = result.indices.shape[1]
                global_points = (self._tile_point_indices[tile]
                                 [result.indices])
                d2 = rowwise_distances2(
                    self._points_f64[global_points.reshape(-1)],
                    np.repeat(chunk[sub], local_width, axis=0),
                ).reshape(sub.size, local_width)
                for row, q in enumerate(sub):
                    cand_points[q].append(global_points[row])
                    cand_d2[q].append(d2[row])
                    cand_counts[q] += local_width
                    if cand_counts[q] >= width:
                        pool = np.concatenate(cand_d2[q])
                        tau[q] = np.partition(pool, width - 1)[width - 1]
                next_rank[sub] += 1

        flat_q: List[np.ndarray] = []
        flat_p: List[np.ndarray] = []
        flat_d2: List[np.ndarray] = []
        for q in range(n_chunk):
            if cand_points[q]:
                points = np.concatenate(cand_points[q])
                flat_q.append(np.full(points.size, q, dtype=np.intp))
                flat_p.append(points)
                flat_d2.append(np.concatenate(cand_d2[q]))
        return BatchQueryEngine._knn_select(n_chunk, width, flat_q, flat_p,
                                            flat_d2)

    def search(self, query: Sequence[float], radius: float, *,
               backend: str = DEFAULT_BACKEND) -> List[int]:
        """Single-query radius search (sorted point indices)."""
        return self.radius_search(
            as_query_batch(query), radius, backend=backend).indices_for(0).tolist()

    # ------------------------------------------------------------------
    # Merged statistics
    # ------------------------------------------------------------------
    @property
    def search_stats(self) -> SearchStats:
        """Search counters merged across every built tile's backends.

        Per-tile sub-batches each count as queries, so ``queries`` reflects
        (query, tile) visits — tile pruning quality — rather than the
        caller-facing batch size.
        """
        merged = SearchStats()
        for index in self._tile_indexes:
            if index is not None:
                merged.merge(index.search_stats)
        return merged

    @property
    def bonsai_stats(self) -> Optional[BonsaiStats]:
        """Compressed-leaf counters merged across the built tiles.

        ``None`` while no tile has served a Bonsai backend.
        """
        merged: Optional[BonsaiStats] = None
        for index in self._tile_indexes:
            if index is None:
                continue
            stats = index.bonsai_stats
            if stats is not None:
                if merged is None:
                    merged = BonsaiStats()
                merged.merge(stats)
        return merged

    @property
    def hierarchy_stats(self):
        """Cache-hierarchy counters merged across the built tiles.

        ``None`` while no tile has served a recorded backend; otherwise a
        :class:`~repro.hwmodel.cache.HierarchyStats`.
        """
        merged = None
        for index in self._tile_indexes:
            if index is None:
                continue
            stats = index.hierarchy_stats
            if stats is not None:
                if merged is None:
                    from ..hwmodel.cache import HierarchyStats
                    merged = HierarchyStats()
                merged.merge(stats)
        return merged
