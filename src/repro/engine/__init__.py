"""Unified execution-backend API for the K-D Bonsai reproduction.

One protocol, six named backends, one facade.  The paper's claims are
comparisons between execution modes; this layer makes the mode a *name*
(``baseline-perquery`` / ``baseline-batched`` / ``baseline-batched-mp`` /
``bonsai-perquery`` / ``bonsai-batched`` / ``bonsai-batched-mp``), selected
through a registry, composable with a hardware-recording wrapper, and
carried by workload configs as :class:`ExecutionConfig` data instead of
scattered boolean flags.  The ``-mp`` strategies shard query batches across
worker processes with a deterministic, bitwise-identical merge
(:mod:`repro.engine.parallel`); ``docs/PERFORMANCE.md`` is the selection
guide.

Public API
----------
:class:`PointCloudIndex`
    The facade: builds the k-d tree once, compresses it lazily on first
    Bonsai use, serves radius/kNN queries through any named backend with
    uniform batched results and merged statistics.
:class:`ShardedPointCloudIndex`
    The map-scale facade: XY-grid tiles, one lazily built (and lazily
    compressed) per-tile index each, cross-tile queries bitwise identical
    to the unsharded index's (:mod:`repro.engine.sharded`).
:func:`backend_names` / :func:`get_backend`
    The registry (the single source of valid backend names).
:class:`ExecutionConfig`
    A workload's execution mode as one value (backend name + hardware
    switch + recorded cache geometry).
:func:`recorded`
    Hardware-recording wrapper: any backend's per-query recorded
    counterpart with bitwise-identical functional results.
:class:`SearchBackend`
    The protocol every backend implements.

Example
-------
>>> import numpy as np
>>> from repro.engine import PointCloudIndex, backend_names
>>> points = np.random.default_rng(1).uniform(-5, 5, (1000, 3)).astype(np.float32)
>>> index = PointCloudIndex(points)
>>> sorted(backend_names())[:2]
['baseline-batched', 'baseline-perquery']
>>> index.radius_search(points[:8], radius=0.5, backend="bonsai-batched").n_queries
8
"""

from .backends import (
    BaselineBatchedBackend,
    BaselinePerQueryBackend,
    BonsaiBatchedBackend,
    BonsaiPerQueryBackend,
    SearchBackend,
    recorded,
)
from .execution import ExecutionConfig
from .index import PointCloudIndex
from .parallel import BaselineBatchedMPBackend, BonsaiBatchedMPBackend
from .registry import backend_names, get_backend, register_backend
from .sharded import ShardedPointCloudIndex

__all__ = [
    "SearchBackend",
    "BaselinePerQueryBackend",
    "BaselineBatchedBackend",
    "BaselineBatchedMPBackend",
    "BonsaiPerQueryBackend",
    "BonsaiBatchedBackend",
    "BonsaiBatchedMPBackend",
    "recorded",
    "ExecutionConfig",
    "PointCloudIndex",
    "ShardedPointCloudIndex",
    "backend_names",
    "get_backend",
    "register_backend",
]
