"""Deprecated entry points, delegating to the engine backends.

The unified backend API (:mod:`repro.engine`) supersedes the mode-specific
top-level entry points that predate it.  They keep working — delegating to
the registry so behaviour is byte-identical — but emit a
``DeprecationWarning`` pointing at the replacement.  ``repro/__init__``
resolves the deprecated names to the wrappers defined here.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..core.floatfmt import FLOAT16, FloatFormat
from ..kdtree.build import KDTree
from ..kdtree.radius_search import SearchStats
from ..runtime.batch import BatchKNNResult, BatchRadiusResult
from .registry import get_backend

__all__ = ["batch_radius_search", "batch_knn", "BonsaiRadiusSearch"]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; select an execution backend by name "
        f"instead: {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def batch_radius_search(tree: KDTree, queries, radius: float,
                        stats: Optional[SearchStats] = None) -> BatchRadiusResult:
    """Deprecated alias of the ``baseline-batched`` backend's radius search.

    Use ``PointCloudIndex(...).radius_search(queries, radius)`` or
    ``get_backend("baseline-batched", tree)``; results are identical.
    """
    _warn("batch_radius_search",
          'PointCloudIndex(cloud).radius_search(queries, radius) or '
          'get_backend("baseline-batched", tree).radius_search(...)')
    return get_backend("baseline-batched", tree,
                       stats=stats).radius_search(queries, radius)


def batch_knn(tree: KDTree, queries, k: int,
              stats: Optional[SearchStats] = None) -> BatchKNNResult:
    """Deprecated alias of the ``baseline-batched`` backend's kNN."""
    _warn("batch_knn",
          'PointCloudIndex(cloud).knn(queries, k) or '
          'get_backend("baseline-batched", tree).knn(...)')
    return get_backend("baseline-batched", tree, stats=stats).knn(queries, k)


def BonsaiRadiusSearch(tree: KDTree, fmt: FloatFormat = FLOAT16,
                       recorder=None, layout=None):
    """Deprecated alias of the ``bonsai-perquery`` backend.

    Returns a backend exposing the same surface the class offered
    (``search`` / ``stats`` / ``bonsai_stats`` / ``report``), with identical
    behaviour.  Use ``get_backend("bonsai-perquery", tree)`` or
    ``PointCloudIndex(cloud).backend("bonsai-perquery")``.
    """
    _warn("BonsaiRadiusSearch", 'get_backend("bonsai-perquery", tree)')
    return get_backend("bonsai-perquery", tree, fmt=fmt,
                       recorder=recorder, layout=layout)
