"""PointCloudIndex: build the tree once, query through any named backend.

The facade of the engine layer.  It owns one k-d tree, compresses it lazily
the first time a Bonsai backend is requested, caches one backend instance
per (name, recorded) pair, and serves radius/kNN queries through whichever
backend the caller names — with uniform batched results and statistics that
merge across every backend the index has served.

Example
-------
>>> import numpy as np
>>> from repro.engine import PointCloudIndex
>>> points = np.random.default_rng(0).uniform(-5, 5, (2000, 3)).astype(np.float32)
>>> index = PointCloudIndex(points)
>>> baseline = index.radius_search(points[:64], radius=0.8)
>>> bonsai = index.radius_search(points[:64], radius=0.8, backend="bonsai-batched")
>>> bool(np.array_equal(baseline.point_indices, bonsai.point_indices))
True
>>> index.search_stats.queries
128
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.compressed_leaf import CompressionReport, compress_tree
from ..core.floatfmt import FLOAT16, FloatFormat
from ..core.bonsai_search import BonsaiStats
from ..kdtree.build import KDTree, KDTreeConfig, build_kdtree
from ..kdtree.radius_search import SearchStats
from ..runtime.batch import BatchKNNResult, BatchRadiusResult
from .backends import SearchBackend
from .registry import get_backend

__all__ = ["PointCloudIndex"]

#: Backend the index uses when the caller names none.
DEFAULT_BACKEND = "baseline-batched"


class PointCloudIndex:
    """One spatial index, every execution backend.

    Parameters
    ----------
    cloud:
        A :class:`~repro.pointcloud.cloud.PointCloud`, an ``(N, 3)`` array,
        or an already-built :class:`~repro.kdtree.build.KDTree` (reused
        as-is; ``tree_config`` is then ignored).
    tree_config:
        Tree-build parameters (PCL defaults when omitted).
    fmt:
        Reduced float format used when the index compresses its tree for
        the Bonsai backends.
    """

    def __init__(self, cloud, *, tree_config: Optional[KDTreeConfig] = None,
                 fmt: FloatFormat = FLOAT16):
        if isinstance(cloud, KDTree):
            self.tree = cloud
        else:
            self.tree = build_kdtree(cloud, tree_config)
        self.fmt = fmt
        #: Report of the lazy compression pass (``None`` until a Bonsai
        #: backend is first requested; stays ``None`` for a pre-compressed
        #: tree).
        self.compression_report: Optional[CompressionReport] = None
        self._backends: Dict[Tuple[str, bool], SearchBackend] = {}

    # ------------------------------------------------------------------
    # Tree facts
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self.tree.n_points

    @property
    def n_leaves(self) -> int:
        """Number of tree leaves."""
        return self.tree.n_leaves

    @property
    def is_compressed(self) -> bool:
        """Whether the tree carries its compressed (Bonsai) leaf structures."""
        return getattr(self.tree, "compressed_array", None) is not None

    def ensure_compressed(self) -> Optional[CompressionReport]:
        """Compress the tree if it is not already; idempotent.

        Called automatically the first time a Bonsai backend is requested,
        so indices that never touch a compressed backend never pay the
        compression pass.
        """
        if not self.is_compressed:
            self.compression_report = compress_tree(self.tree, self.fmt)
        return self.compression_report

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def backend(self, name: str = DEFAULT_BACKEND, *, recorded: bool = False,
                cpu=None) -> SearchBackend:
        """The named backend over this index's tree (cached per request).

        With ``recorded=True`` the returned backend is the hardware-recorded
        counterpart (see :func:`repro.engine.backends.recorded`): the
        flavour's per-query backend with every tree access streaming through
        the trace-driven cache simulation of ``cpu``'s geometry (Table IV
        when omitted), functional results bitwise unchanged.  Backends are
        cached per ``(name, recorded, cpu)``, so recorded requests with
        different cache geometries get distinct simulations.
        """
        flavor = name.split("-", 1)[0]
        key = (name, recorded, cpu)
        backend = self._backends.get(key)
        if backend is None:
            if flavor == "bonsai":
                self.ensure_compressed()
            opts = {"fmt": self.fmt} if flavor == "bonsai" else {}
            if recorded:
                # Construct the recorded per-query counterpart directly
                # instead of building the functional backend first only to
                # discard it.
                from ..hwmodel.cache import HierarchyRecorder
                from ..hwmodel.cpu_config import TABLE_IV_CPU
                recorder = HierarchyRecorder.for_cpu(
                    cpu if cpu is not None else TABLE_IV_CPU)
                backend = get_backend(f"{flavor}-perquery", self.tree,
                                      recorder=recorder, **opts)
            else:
                backend = get_backend(name, self.tree, **opts)
            self._backends[key] = backend
        return backend

    def close(self) -> None:
        """Release every cached backend (idempotent; the index stays usable).

        Backends that own external resources — the ``*-batched-mp``
        strategies and their persistent worker pools — are closed; the
        backend cache is then cleared, so the next query builds fresh
        backends (and a fresh pool) while the tree and its compression are
        kept.  Merged statistics reset alongside the cache: they live on
        the backend instances.  Calling :meth:`close` twice, or before any
        backend was ever requested, is a no-op — and so is a call racing
        interpreter shutdown (finalizer ordering may have torn pieces of a
        backend down already; those errors are swallowed, but only then).
        """
        import sys

        backends, self._backends = self._backends, {}
        for backend in backends.values():
            close = getattr(backend, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception:
                # During interpreter shutdown, pool/module internals a
                # backend's close() relies on may already be finalized
                # (weakref.finalize ordering is unspecified across
                # objects).  Anywhere else, the failure is real.
                if not sys.is_finalizing():
                    raise

    def __enter__(self) -> "PointCloudIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def radius_search(self, queries, radius: float, *,
                      backend: str = DEFAULT_BACKEND,
                      recorded: bool = False) -> BatchRadiusResult:
        """All indexed points within ``radius`` of each query.

        Identical results whatever backend serves the batch (per-query
        index-sorted CSR form) — including the multiprocessing strategies,
        whose shard merge is deterministic — so backend choice is purely a
        throughput/statistics decision (see ``docs/PERFORMANCE.md``).
        ``radius`` is in the cloud's coordinate unit (metres for the
        built-in scenarios).
        """
        return self.backend(backend, recorded=recorded).radius_search(queries, radius)

    def knn(self, queries, k: int, *, backend: str = DEFAULT_BACKEND,
            recorded: bool = False) -> BatchKNNResult:
        """The ``k`` nearest indexed points of each query."""
        return self.backend(backend, recorded=recorded).knn(queries, k)

    def search(self, query: Sequence[float], radius: float, *,
               backend: str = DEFAULT_BACKEND) -> List[int]:
        """Single-query radius search (the backend's native hit order)."""
        return self.backend(backend).search(query, radius)

    # ------------------------------------------------------------------
    # Merged statistics
    # ------------------------------------------------------------------
    @property
    def search_stats(self) -> SearchStats:
        """Search counters merged across every backend this index served."""
        merged = SearchStats()
        for backend in self._backends.values():
            merged.merge(backend.stats)
        return merged

    @property
    def bonsai_stats(self) -> Optional[BonsaiStats]:
        """Compressed-leaf counters merged across the served Bonsai backends.

        ``None`` when no Bonsai backend has been used yet.
        """
        merged: Optional[BonsaiStats] = None
        for backend in self._backends.values():
            stats = backend.bonsai_stats
            if stats is not None:
                if merged is None:
                    merged = BonsaiStats()
                merged.merge(stats)
        return merged

    @property
    def hierarchy_stats(self):
        """Cache-hierarchy counters merged across the recorded backends.

        ``None`` when no recorded backend has been used yet; otherwise a
        :class:`~repro.hwmodel.cache.HierarchyStats`.
        """
        merged = None
        for backend in self._backends.values():
            stats = getattr(backend, "hierarchy", None)
            if stats is not None:
                if merged is None:
                    from ..hwmodel.cache import HierarchyStats
                    merged = HierarchyStats()
                merged.merge(stats)
        return merged
