#!/usr/bin/env python
"""Perception scenario: detect and track objects across a driving sequence.

The euclidean-cluster node the paper accelerates feeds a tracker in a real
perception stack.  This example runs the full chain on the synthetic sequence
— pre-processing, K-D Bonsai clustering, labeling, frame-to-frame tracking —
and prints the confirmed tracks with their estimated velocities, showing how
the compressed radius search slots into a complete perception pipeline
without changing its outputs.

Run with:  python examples/object_tracking.py [n_frames]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.perception import (
    ClusterConfig,
    ClusterTracker,
    EuclideanClusterExtractor,
    TrackerConfig,
    label_clusters,
)
from repro.pointcloud import default_sequence, preprocess_for_clustering


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    sequence = default_sequence(n_frames=n_frames)
    frame_dt = 1.0 / sequence.config.frame_rate_hz

    extractor = EuclideanClusterExtractor(
        ClusterConfig(tolerance=0.6, min_cluster_size=5), use_bonsai=True
    )
    tracker = ClusterTracker(TrackerConfig(gating_distance=3.0, confirmation_hits=2))

    total_recomputed = 0
    total_classified = 0
    for frame_index in range(n_frames):
        cloud = preprocess_for_clustering(sequence.frame(frame_index))
        result = extractor.extract(cloud)
        detections = label_clusters(cloud, result.clusters)
        confirmed = tracker.update(detections, timestamp=frame_index * frame_dt)
        stats = result.bonsai.bonsai_stats
        total_recomputed += stats.inconclusive
        total_classified += stats.points_classified
        print(f"frame {frame_index}: {len(cloud):5d} points, "
              f"{result.n_clusters:3d} clusters, {len(confirmed):3d} confirmed tracks")

    print("\n=== Confirmed tracks after the sequence ===")
    for track in sorted(tracker.confirmed_tracks, key=lambda t: t.track_id):
        position = np.round(track.centroid, 1)
        print(f"  track {track.track_id:3d}: {track.label:10s} at {position}, "
              f"speed {track.speed:4.1f} m/s, age {track.age} frames, "
              f"{track.hits} hits")

    # The tracker consumed detections produced by the compressed search; the
    # shell guarantees they are identical to the 32-bit baseline's.
    rate = total_recomputed / total_classified if total_classified else 0.0
    print(f"\nClassifications recomputed in 32-bit across the sequence: {rate:.2%} "
          f"(paper reports 0.37%)")


if __name__ == "__main__":
    main()
