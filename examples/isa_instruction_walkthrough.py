#!/usr/bin/env python
"""Instruction-level walkthrough of the Bonsai-extensions (Table II).

This example drives the functional ISA model directly, issuing the exact
instruction sequence the modified PCL library would issue (Section IV-C of
the paper):

* at tree-build time: LDSPZPB per leaf point, one CPRZPB, then STZPB stores
  of the compressed slices into ``cmprsd_strct_array``;
* at search time: LDDCP to load + decompress the leaf, SQDWEL/SQDWEH per
  coordinate to form the squared differences and error bounds, then the shell
  test with 32-bit recomputation for inconclusive points.

It prints the machine state transitions and the micro-op accounting so the
hardware/ISA behaviour described in the paper can be inspected end to end.

Run with:  python examples/isa_instruction_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core.leaf_compression import ZIPPTS_SLICE_BYTES
from repro.isa import BonsaiMachine

POINTS_BASE = 0x1000_0000
COMPRESSED_BASE = 0x4000_0000


def main() -> None:
    rng = np.random.default_rng(7)
    machine = BonsaiMachine()

    # A k-d tree leaf: 15 spatially close points (as the build produces).
    leaf_points = (np.array([22.0, -9.0, 0.8])
                   + rng.normal(0.0, 0.4, size=(15, 3))).astype(np.float32)
    query = leaf_points[3].astype(np.float64) + np.array([0.25, -0.1, 0.05])
    radius = 0.5

    print("=== Build-time flow: LDSPZPB x15, CPRZPB, STZPB ===")
    size_bytes, n_slices = machine.compress_leaf_points(
        leaf_points, points_base=POINTS_BASE, compressed_base=COMPRESSED_BASE
    )
    print(f"Leaf of {len(leaf_points)} points ({len(leaf_points) * 16} B as PointXYZ)")
    print(f"CPRZPB reported size:   {size_bytes} B "
          f"({n_slices} ZipPts slices of {ZIPPTS_SLICE_BYTES} B)")
    print(f"Compression flags:      cX/cY/cZ = "
          f"{machine.zippts.compressed.flags}")
    print(f"Committed instructions: {machine.counters.instructions}, "
          f"micro-ops: {machine.counters.micro_ops}")
    print(f"Load micro-ops: {machine.counters.load_micro_ops}, "
          f"store micro-ops: {machine.counters.store_micro_ops}")

    print("\n=== Search-time flow: LDDCP, SQDWEL/SQDWEH x12, shell test ===")
    before_instructions = machine.counters.instructions
    before_loaded = machine.counters.bytes_loaded
    in_radius, recomputed = machine.classify_leaf(
        query, radius * radius, compressed_base=COMPRESSED_BASE,
        n_points=len(leaf_points), n_slices=n_slices, points_base=POINTS_BASE,
    )
    print(f"Query {np.round(query, 3)} with radius {radius} m")
    print(f"Points in radius (local indices): {in_radius}")
    print(f"Classifications recomputed in 32-bit: {recomputed}")
    print(f"Instructions for the leaf visit: "
          f"{machine.counters.instructions - before_instructions}")
    print(f"Bytes loaded for the leaf visit: "
          f"{machine.counters.bytes_loaded - before_loaded} "
          f"(baseline would load {len(leaf_points) * 16} B of PointXYZ)")

    print("\n=== Per-mnemonic instruction counts ===")
    for mnemonic, count in sorted(machine.counters.per_mnemonic.items()):
        print(f"  {mnemonic:8s} {count}")

    # Cross-check against a straightforward 32-bit distance computation.
    diffs = leaf_points.astype(np.float64) - query
    d2 = np.einsum("ij,ij->i", diffs, diffs)
    expected = sorted(np.nonzero(d2 <= radius * radius)[0].tolist())
    if sorted(in_radius) != expected:
        raise RuntimeError("ISA flow must match the 32-bit baseline")
    print("\nISA-level classification matches the 32-bit baseline exactly.")


if __name__ == "__main__":
    main()
