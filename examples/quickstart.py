#!/usr/bin/env python
"""Quickstart: compress a k-d tree and run a guaranteed-accuracy radius search.

This example walks through the core K-D Bonsai flow on a synthetic LiDAR
frame:

1. generate a point cloud with the synthetic HDL-64E model;
2. pre-process it the way Autoware's euclidean-cluster node does;
3. build a PCL-style k-d tree and compress its leaves (sign/exponent sharing
   over IEEE fp16 coordinates);
4. run radius searches over the compressed leaves and verify the results are
   identical to the 32-bit baseline while loading far fewer bytes.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import BonsaiRadiusSearch, leaf_similarity
from repro.kdtree import SearchStats, build_kdtree, radius_search
from repro.pointcloud import default_sequence, preprocess_for_clustering


def main() -> None:
    # 1. A synthetic LiDAR frame (urban scene, bounded ~120 m sensor range).
    sequence = default_sequence(n_frames=1)
    raw = sequence.frame(0)
    print(f"Raw LiDAR frame:        {len(raw):6d} points, "
          f"max range {raw.max_range():.1f} m")

    # 2. Autoware-style pre-processing (crop, ground removal, voxel filter).
    cloud = preprocess_for_clustering(raw)
    print(f"After pre-processing:   {len(cloud):6d} points")

    # 3. Build the k-d tree (15 points per leaf, PCL default) and look at the
    #    compression opportunity the paper identifies in Section III-A.
    tree = build_kdtree(cloud)
    similarity = leaf_similarity(tree)
    print(f"K-d tree:               {tree.n_leaves} leaves, depth {tree.depth()}")
    print("Leaves sharing <sign, exponent> per coordinate: "
          + ", ".join(f"{coord}={rate:.0%}" for coord, rate in similarity.share_rates.items()))

    # 4. Compress the leaves and search.  BonsaiRadiusSearch compresses the
    #    tree on construction (what the Bonsai-extensions do at build time).
    bonsai = BonsaiRadiusSearch(tree)
    print(f"Compressed leaf bytes:  {bonsai.report.compressed_bytes} "
          f"({bonsai.report.compression_ratio:.0%} of the 32-bit baseline)")

    baseline_stats = SearchStats()
    radius = 0.6
    mismatches = 0
    for index in range(0, len(cloud), 10):
        query = cloud[index]
        baseline = sorted(radius_search(tree, query, radius, stats=baseline_stats))
        compressed = sorted(bonsai.search(query, radius))
        mismatches += int(baseline != compressed)

    print(f"Radius searches:        {baseline_stats.queries} queries, radius {radius} m")
    print(f"Result mismatches:      {mismatches} (guaranteed 0 by the shell test)")
    print(f"Bytes to fetch points:  baseline {baseline_stats.point_bytes_loaded / 1e6:.2f} MB, "
          f"Bonsai {bonsai.stats.point_bytes_loaded / 1e6:.2f} MB")
    print(f"Recomputed in 32-bit:   {bonsai.bonsai_stats.inconclusive_rate:.2%} "
          f"of classifications (paper reports 0.37%)")


if __name__ == "__main__":
    main()
