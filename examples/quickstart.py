#!/usr/bin/env python
"""Quickstart: compress a k-d tree and run a guaranteed-accuracy radius search.

This example walks through the core K-D Bonsai flow on a synthetic LiDAR
frame:

1. generate a point cloud with the synthetic HDL-64E model;
2. pre-process it the way Autoware's euclidean-cluster node does;
3. index it once with :class:`repro.PointCloudIndex` and look at the
   compression opportunity (sign/exponent sharing over IEEE fp16
   coordinates);
4. run radius searches through two *named execution backends* — the 32-bit
   baseline and the compressed (Bonsai) search — and verify the results are
   identical while the compressed backend loads far fewer bytes.

Backends are selected by registry name (``repro.backend_names()``); no
concrete search class is imported here.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PointCloudIndex, backend_names
from repro.core import leaf_similarity
from repro.pointcloud import default_sequence, preprocess_for_clustering


def main() -> None:
    # 1. A synthetic LiDAR frame (urban scene, bounded ~120 m sensor range).
    sequence = default_sequence(n_frames=1)
    raw = sequence.frame(0)
    print(f"Raw LiDAR frame:        {len(raw):6d} points, "
          f"max range {raw.max_range():.1f} m")

    # 2. Autoware-style pre-processing (crop, ground removal, voxel filter).
    cloud = preprocess_for_clustering(raw)
    print(f"After pre-processing:   {len(cloud):6d} points")

    # 3. Index the cloud once (15 points per leaf, PCL default) and look at
    #    the compression opportunity the paper identifies in Section III-A.
    with PointCloudIndex(cloud) as index:
        similarity = leaf_similarity(index.tree)
        print(f"K-d tree:               {index.n_leaves} leaves, depth {index.tree.depth()}")
        print("Leaves sharing <sign, exponent> per coordinate: "
              + ", ".join(f"{coord}={rate:.0%}" for coord, rate in similarity.share_rates.items()))
        print(f"Registered backends:    {', '.join(backend_names())}")

        # 4. Search through two named backends.  The first Bonsai query triggers
        #    the lazy leaf compression (what the Bonsai-extensions do at tree
        #    build time); results are guaranteed identical to the baseline.
        baseline = index.backend("baseline-perquery")
        bonsai = index.backend("bonsai-perquery")
        print(f"Compressed leaf bytes:  {index.compression_report.compressed_bytes} "
              f"({index.compression_report.compression_ratio:.0%} of the 32-bit baseline)")

        radius = 0.6
        mismatches = 0
        for point_index in range(0, len(cloud), 10):
            query = cloud[point_index]
            expected = sorted(baseline.search(query, radius))
            compressed = sorted(bonsai.search(query, radius))
            mismatches += int(expected != compressed)

        print(f"Radius searches:        {baseline.stats.queries} queries, radius {radius} m")
        print(f"Result mismatches:      {mismatches} (guaranteed 0 by the shell test)")
        print(f"Bytes to fetch points:  baseline {baseline.stats.point_bytes_loaded / 1e6:.2f} MB, "
              f"Bonsai {bonsai.stats.point_bytes_loaded / 1e6:.2f} MB")
        print(f"Recomputed in 32-bit:   {bonsai.bonsai_stats.inconclusive_rate:.2%} "
              f"of classifications (paper reports 0.37%)")


if __name__ == "__main__":
    main()
