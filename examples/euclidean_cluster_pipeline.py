#!/usr/bin/env python
"""Object detection scenario: euclidean clustering over a driving sequence.

This is the workload the paper evaluates (Autoware.ai's euclidean-cluster
node).  The example processes a few frames of a synthetic driving sequence
twice — with the baseline 32-bit radius search and with the K-D Bonsai
compressed search — and reports the detections plus the hardware metrics the
paper's Figures 9, 11 and 12 are built from.

Run with:  python examples/euclidean_cluster_pipeline.py [n_frames]
"""

from __future__ import annotations

import sys

from repro.analysis import compare_measurements, render_fig9a, render_fig9b
from repro.perception import ClusterConfig, EuclideanClusterExtractor, label_clusters
from repro.perception.cluster_filter import match_clusters_to_labels
from repro.pointcloud import default_sequence, preprocess_for_clustering
from repro.workloads import EuclideanClusterPipeline

PAPER_FIG9A = {
    "execution_time": -0.12,
    "instructions": -0.16,
    "loads": -0.23,
    "stores": -0.18,
    "l1_accesses": -0.14,
    "l1_misses": 0.08,
}


def describe_detections(sequence, frame_index: int) -> None:
    """Run one frame through clustering + labeling and print the detections."""
    cloud = preprocess_for_clustering(sequence.frame(frame_index))
    extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=0.6, min_cluster_size=5),
                                          use_bonsai=True)
    result = extractor.extract(cloud)
    detections = label_clusters(cloud, result.clusters)
    histogram = match_clusters_to_labels(detections)
    print(f"Frame {frame_index}: {len(cloud)} points -> {result.n_clusters} clusters "
          f"({', '.join(f'{count} {label}' for label, count in sorted(histogram.items()))})")


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    sequence = default_sequence(n_frames=n_frames)

    print("=== Detections (K-D Bonsai search) ===")
    for frame_index in range(min(n_frames, 3)):
        describe_detections(sequence, frame_index)

    print("\n=== Baseline vs Bonsai hardware metrics ===")
    pipeline = EuclideanClusterPipeline()
    clouds = [sequence.frame(i) for i in range(n_frames)]
    baseline = pipeline.run_frames(clouds, use_bonsai=False)
    bonsai = pipeline.run_frames(clouds, use_bonsai=True)
    summary = compare_measurements(baseline, bonsai)

    print(render_fig9a(summary, PAPER_FIG9A))
    print()
    print(render_fig9b(summary))
    print()
    print(f"End-to-end latency improvement: "
          f"{summary.latency_improvements['mean_reduction']:.1%} mean, "
          f"{summary.latency_improvements['p99_reduction']:.1%} p99 "
          f"(paper: 9.26% / 12.19%)")
    print(f"Extract-kernel energy improvement: "
          f"{summary.energy_improvements['mean_reduction']:.1%} (paper: 10.84%)")
    print(f"Classifications recomputed in 32-bit: {summary.inconclusive_rate:.2%} "
          f"(paper: 0.37%)")


if __name__ == "__main__":
    main()
