#!/usr/bin/env python
"""Localization scenario: NDT scan registration on top of k-d tree radius search.

The paper motivates K-D Bonsai with two Autoware tasks: euclidean clustering
(perception) and NDT matching (localization) — Figure 2 shows both spend half
or more of their time in radius search.  This example registers consecutive
synthetic LiDAR scans against a map built from the first frame, using the
simplified NDT matcher, and shows that swapping the baseline radius search
for the Bonsai compressed search leaves the estimated trajectory unchanged
while cutting the bytes fetched from the map tree.

Run with:  python examples/ndt_localization.py
"""

from __future__ import annotations

import numpy as np

from repro.perception import NDTConfig, NDTMap, NDTMatcher
from repro.pointcloud import default_sequence, preprocess_for_clustering, voxel_grid_filter
from repro.workloads import profile_ndt_matching


def main() -> None:
    sequence = default_sequence(n_frames=4)
    ego_speed = sequence.config.ego_speed_mps
    frame_dt = 1.0 / sequence.config.frame_rate_hz

    # The map: the first frame, down-sampled, expressed in the frame-0 pose.
    map_cloud = voxel_grid_filter(preprocess_for_clustering(sequence.frame(0)), 0.4)
    config = NDTConfig(voxel_size=2.0, search_radius=2.5, max_iterations=15,
                       max_scan_points=250)
    ndt_map = NDTMap(map_cloud, config)
    print(f"NDT map: {len(map_cloud)} points -> {len(ndt_map.voxels)} voxel Gaussians")

    for use_bonsai in (False, True):
        matcher = NDTMatcher(NDTMap(map_cloud, config), use_bonsai=use_bonsai)
        label = "Bonsai-extensions" if use_bonsai else "Baseline"
        print(f"\n=== {label} radius search ===")
        for frame_index in range(1, len(sequence)):
            scan = voxel_grid_filter(preprocess_for_clustering(sequence.frame(frame_index)), 0.4)
            # The vehicle moved forward; scans are in the sensor frame, so the
            # registration must recover the ego displacement along +x.
            expected_dx = ego_speed * frame_dt * frame_index
            result = matcher.register(scan, initial_translation=(expected_dx - 0.4, 0.0, 0.0))
            estimated = result.translation
            error = abs(estimated[0] - expected_dx)
            print(f"  frame {frame_index}: expected dx={expected_dx:5.2f} m, "
                  f"estimated dx={estimated[0]:5.2f} m (|error| {error:4.2f} m, "
                  f"{result.iterations} iterations)")
        stats = matcher.search_stats
        print(f"  radius searches: {stats.queries}, points examined: {stats.points_examined}, "
              f"bytes for leaf points: {stats.point_bytes_loaded / 1e3:.1f} kB")

    share = profile_ndt_matching(sequence.frame(1), map_cloud, config)
    print(f"\nRadius-search share of NDT matching: {share.radius_search_share:.0%} "
          f"(paper Figure 2: 51%)")


if __name__ == "__main__":
    main()
