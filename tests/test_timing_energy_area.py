"""Tests of the timing, energy and area models."""

from __future__ import annotations

import pytest

from repro.hwmodel import (
    TABLE_IV_CPU,
    TABLE_V,
    CPUConfig,
    EnergyModel,
    EnergyParameters,
    KernelMetrics,
    TimingModel,
    estimate_bonsai_area,
)
from repro.hwmodel.cache import HierarchyStats


def _metrics(instructions=1_000_000, loads=200_000, stores=50_000,
             l1_accesses=250_000, l1_misses=5_000, l2_accesses=5_000,
             l2_misses=1_000, memory_accesses=1_000):
    return KernelMetrics(
        instructions=instructions, loads=loads, stores=stores,
        l1_accesses=l1_accesses, l1_misses=l1_misses, l2_accesses=l2_accesses,
        l2_misses=l2_misses, memory_accesses=memory_accesses,
    )


class TestCPUConfig:
    def test_table_iv_values(self):
        assert TABLE_IV_CPU.frequency_hz == 3.0e9
        assert TABLE_IV_CPU.fetch_width == 3
        assert TABLE_IV_CPU.issue_width == 8
        assert TABLE_IV_CPU.simd_width_bits == 128
        assert TABLE_IV_CPU.l1d.size_bytes == 32 * 1024
        assert TABLE_IV_CPU.l2.size_bytes == 1024 * 1024

    def test_cycle_time(self):
        assert TABLE_IV_CPU.cycle_time_s == pytest.approx(1 / 3.0e9)


class TestTimingModel:
    def test_cycles_increase_with_instructions(self):
        model = TimingModel()
        assert model.cycles(_metrics(instructions=2_000_000)) > \
            model.cycles(_metrics(instructions=1_000_000))

    def test_cycles_increase_with_misses(self):
        model = TimingModel()
        assert model.cycles(_metrics(l2_misses=50_000, memory_accesses=50_000)) > \
            model.cycles(_metrics())

    def test_breakdown_sums_to_total(self):
        model = TimingModel()
        metrics = _metrics()
        breakdown = model.breakdown(metrics)
        assert breakdown.total_cycles == pytest.approx(
            breakdown.compute_cycles + breakdown.l2_stall_cycles
            + breakdown.memory_stall_cycles
        )
        assert model.cycles(metrics) == pytest.approx(breakdown.total_cycles)

    def test_seconds_follow_frequency(self):
        metrics = _metrics()
        fast = TimingModel(CPUConfig(frequency_hz=3.0e9))
        slow = TimingModel(CPUConfig(frequency_hz=1.5e9))
        assert slow.seconds(metrics) == pytest.approx(2 * fast.seconds(metrics))

    def test_ipc_bounded_by_sustained_ipc(self):
        model = TimingModel()
        assert 0 < model.ipc(_metrics()) <= TABLE_IV_CPU.sustained_ipc

    def test_ipc_zero_for_empty_kernel(self):
        assert TimingModel().ipc(_metrics(instructions=0, l1_misses=0, l2_misses=0)) == 0.0

    def test_from_hierarchy_constructor(self):
        stats = HierarchyStats(l1_accesses=10, l1_misses=2, l2_accesses=2, l2_misses=1,
                               memory_accesses=1)
        metrics = KernelMetrics.from_hierarchy(100, 40, 10, stats)
        assert metrics.l1_accesses == 10
        assert metrics.memory_accesses == 1

    def test_scaled(self):
        metrics = _metrics().scaled(0.5)
        assert metrics.instructions == 500_000
        assert metrics.l1_accesses == 125_000


class TestEnergyModel:
    def test_total_is_sum_of_components(self):
        model = EnergyModel()
        breakdown = model.estimate(_metrics(), execution_time_s=0.01, bonsai_fu_ops=100)
        assert breakdown.total_j == pytest.approx(
            breakdown.core_dynamic_j + breakdown.l1_j + breakdown.l2_j
            + breakdown.dram_j + breakdown.bonsai_units_j + breakdown.static_j
        )

    def test_energy_scales_with_activity(self):
        model = EnergyModel()
        small = model.estimate(_metrics(), 0.01).total_j
        big = model.estimate(_metrics(instructions=5_000_000, l1_accesses=1_000_000),
                             0.01).total_j
        assert big > small

    def test_static_energy_scales_with_time(self):
        model = EnergyModel()
        assert model.estimate(_metrics(), 0.02).static_j == \
            pytest.approx(2 * model.estimate(_metrics(), 0.01).static_j)

    def test_bonsai_fu_energy_is_small_overhead(self):
        """Table V: the added units contribute ~1% of dynamic power."""
        model = EnergyModel()
        with_fu = model.estimate(_metrics(), 0.01, bonsai_fu_ops=10_000)
        assert with_fu.bonsai_units_j < 0.05 * with_fu.total_j

    def test_custom_parameters(self):
        params = EnergyParameters(energy_per_instruction_j=1e-9)
        model = EnergyModel(params)
        assert model.estimate(_metrics(), 0.0).core_dynamic_j == pytest.approx(1e-3)


class TestTableV:
    def test_paper_totals(self):
        total = TABLE_V.bonsai_total
        assert total.area_mm2 == pytest.approx(0.0511)
        assert total.dynamic_power_w == pytest.approx(0.0239, abs=1e-3)

    def test_relative_overheads_match_paper(self):
        assert TABLE_V.relative_area_increase == pytest.approx(0.0036, abs=5e-4)
        assert TABLE_V.relative_dynamic_power_increase == pytest.approx(0.0129, abs=2e-3)


class TestAreaModel:
    def test_estimate_structure(self):
        estimates = estimate_bonsai_area()
        assert set(estimates) >= {"compression_unit", "square_diff_fus",
                                  "total_area_mm2", "total_dynamic_power_w"}

    def test_total_is_sum_of_units(self):
        estimates = estimate_bonsai_area()
        assert estimates["total_area_mm2"] == pytest.approx(
            estimates["compression_unit"].area_mm2 + estimates["square_diff_fus"].area_mm2
        )

    def test_magnitude_matches_paper_order(self):
        """The bottom-up estimate must land in the same order of magnitude as
        the paper's synthesis results (hundredths of mm^2, well below 1% of
        the 14.26 mm^2 core)."""
        estimates = estimate_bonsai_area()
        total = estimates["total_area_mm2"]
        assert 0.005 < total < 0.5
        assert total / TABLE_V.processor.area_mm2 < 0.03

    def test_area_scales_with_fu_count(self):
        one = estimate_bonsai_area(n_fus=1)["square_diff_fus"].area_mm2
        four = estimate_bonsai_area(n_fus=4)["square_diff_fus"].area_mm2
        assert four == pytest.approx(4 * one)

    def test_power_far_below_core(self):
        estimates = estimate_bonsai_area()
        assert estimates["total_dynamic_power_w"] < 0.2 * TABLE_V.processor.dynamic_power_w
