"""Tests of the point cloud pre-processing filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import (
    PointCloud,
    PreprocessConfig,
    crop_box_filter,
    preprocess_for_clustering,
    range_filter,
    remove_ground_plane,
    voxel_grid_filter,
)


class TestVoxelGrid:
    def test_single_voxel_collapses_to_centroid(self):
        cloud = PointCloud([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [0.3, 0.3, 0.3]])
        out = voxel_grid_filter(cloud, leaf_size=1.0)
        assert len(out) == 1
        np.testing.assert_allclose(out[0], [0.2, 0.2, 0.2], atol=1e-6)

    def test_separate_voxels_preserved(self):
        cloud = PointCloud([[0.1, 0.1, 0.1], [5.0, 5.0, 5.0]])
        out = voxel_grid_filter(cloud, leaf_size=1.0)
        assert len(out) == 2

    def test_reduces_dense_cloud(self, lidar_frame):
        out = voxel_grid_filter(lidar_frame, leaf_size=0.5)
        assert 0 < len(out) < len(lidar_frame)

    def test_empty_cloud(self):
        assert len(voxel_grid_filter(PointCloud(), 0.5)) == 0

    def test_invalid_leaf_size_rejected(self):
        with pytest.raises(ValueError):
            voxel_grid_filter(PointCloud([[0, 0, 0]]), 0.0)

    def test_negative_coordinates_bucketed_correctly(self):
        cloud = PointCloud([[-0.1, -0.1, -0.1], [0.1, 0.1, 0.1]])
        out = voxel_grid_filter(cloud, leaf_size=1.0)
        assert len(out) == 2  # floor() separates the two sides of the origin


class TestCropBox:
    def test_keeps_inside(self):
        cloud = PointCloud([[0, 0, 0], [10, 0, 0]])
        out = crop_box_filter(cloud, [-1, -1, -1], [1, 1, 1])
        assert len(out) == 1

    def test_negative_keeps_outside(self):
        cloud = PointCloud([[0, 0, 0], [10, 0, 0]])
        out = crop_box_filter(cloud, [-1, -1, -1], [1, 1, 1], negative=True)
        assert len(out) == 1
        np.testing.assert_allclose(out[0], [10, 0, 0])

    def test_invalid_box_rejected(self):
        with pytest.raises(ValueError):
            crop_box_filter(PointCloud([[0, 0, 0]]), [1, 1, 1], [0, 0, 0])


class TestGroundRemoval:
    def test_ground_points_removed(self):
        cloud = PointCloud([[0, 0, -1.8], [0, 0, 0.0], [1, 1, -1.75]])
        out = remove_ground_plane(cloud, ground_z=-1.8, tolerance=0.2)
        assert len(out) == 1
        np.testing.assert_allclose(out[0], [0, 0, 0])

    def test_tall_objects_survive(self, lidar_frame):
        out = remove_ground_plane(lidar_frame, ground_z=-1.8, tolerance=0.3)
        assert 0 < len(out) < len(lidar_frame)
        assert out.points[:, 2].min() > -1.5


class TestRangeFilter:
    def test_range_bounds(self):
        cloud = PointCloud([[0.5, 0, 0], [5, 0, 0], [50, 0, 0]])
        out = range_filter(cloud, min_range=1.0, max_range=10.0)
        assert len(out) == 1
        np.testing.assert_allclose(out[0], [5, 0, 0])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            range_filter(PointCloud([[0, 0, 0]]), min_range=5.0, max_range=1.0)


class TestPreprocessChain:
    def test_pipeline_reduces_points(self, lidar_frame):
        out = preprocess_for_clustering(lidar_frame)
        assert 0 < len(out) < len(lidar_frame)

    def test_pipeline_removes_ground(self, lidar_frame):
        config = PreprocessConfig()
        out = preprocess_for_clustering(lidar_frame, config)
        assert out.points[:, 2].min() > config.ground_z + config.ground_tolerance - 0.05

    def test_pipeline_respects_crop(self, lidar_frame):
        config = PreprocessConfig(crop_min=(-20, -10, -2.5), crop_max=(20, 10, 4.0))
        out = preprocess_for_clustering(lidar_frame, config)
        assert np.abs(out.points[:, 0]).max() <= 20.0 + 1e-3
        assert np.abs(out.points[:, 1]).max() <= 10.0 + 1e-3

    def test_voxel_disabled(self, lidar_frame):
        config = PreprocessConfig(voxel_leaf_size=0.0)
        out_no_voxel = preprocess_for_clustering(lidar_frame, config)
        out_voxel = preprocess_for_clustering(lidar_frame, PreprocessConfig())
        assert len(out_no_voxel) >= len(out_voxel)
