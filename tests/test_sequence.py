"""Tests of driving-sequence generation and systematic sub-sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import (
    DrivingSequence,
    LidarConfig,
    SceneConfig,
    SequenceConfig,
    default_sequence,
    systematic_subsample,
)


class TestDrivingSequence:
    def test_length_and_duration(self):
        config = SequenceConfig(n_frames=20, frame_rate_hz=10.0)
        sequence = DrivingSequence(config)
        assert len(sequence) == 20
        assert config.duration_s == pytest.approx(2.0)

    def test_frame_timestamps_follow_rate(self, small_sequence):
        f0 = small_sequence.frame(0)
        f2 = small_sequence.frame(2)
        assert f2.timestamp - f0.timestamp == pytest.approx(0.2)

    def test_frames_differ_over_time(self, small_sequence):
        a = small_sequence.frame(0)
        b = small_sequence.frame(3)
        assert len(a) != len(b) or not np.allclose(a.points, b.points)

    def test_out_of_range_frame_rejected(self, small_sequence):
        with pytest.raises(IndexError):
            small_sequence.frame(len(small_sequence))

    def test_frames_iterator_respects_indices(self, small_sequence):
        frames = list(small_sequence.frames([0, 2]))
        assert len(frames) == 2
        assert frames[1].timestamp == pytest.approx(0.2)

    def test_default_sequence_factory(self):
        sequence = default_sequence(n_frames=3, n_beams=8, n_azimuth_steps=60)
        assert len(sequence) == 3
        assert len(sequence.frame(0)) > 0


class TestSystematicSubsample:
    def test_basic_sampling(self):
        indices = systematic_subsample(n_frames=60, n_samples=4, sample_length=3)
        assert len(indices) == 12
        assert indices == sorted(indices)
        assert all(0 <= i < 60 for i in indices)

    def test_windows_are_contiguous(self):
        indices = systematic_subsample(n_frames=100, n_samples=5, sample_length=4)
        windows = [indices[i:i + 4] for i in range(0, len(indices), 4)]
        for window in windows:
            assert window == list(range(window[0], window[0] + 4))

    def test_windows_equally_spaced(self):
        indices = systematic_subsample(n_frames=100, n_samples=4, sample_length=2)
        starts = indices[::2]
        gaps = np.diff(starts)
        assert gaps.max() - gaps.min() <= 1

    def test_full_coverage_allowed(self):
        indices = systematic_subsample(n_frames=12, n_samples=4, sample_length=3)
        assert indices == list(range(12))

    def test_oversampling_rejected(self):
        with pytest.raises(ValueError):
            systematic_subsample(n_frames=10, n_samples=4, sample_length=3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            systematic_subsample(n_frames=10, n_samples=0, sample_length=3)
        with pytest.raises(ValueError):
            systematic_subsample(n_frames=10, n_samples=1, sample_length=0)

    def test_paper_configuration(self):
        """The paper uses 20 windows of 3 frames (300 ms at 10 Hz) from ~8 minutes."""
        n_frames = 8 * 60 * 10
        indices = systematic_subsample(n_frames, n_samples=20, sample_length=3)
        assert len(indices) == 60
        assert max(indices) < n_frames
