"""Tests of cluster labeling and filtering (the node's output stage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import (
    ClusterConfig,
    EuclideanClusterExtractor,
    filter_by_extent,
    label_clusters,
    match_clusters_to_labels,
)
from repro.perception.euclidean_cluster import Cluster
from repro.pointcloud import PointCloud
from repro.pointcloud.cloud import BoundingBox


def _cluster_from_points(points):
    points = np.asarray(points, dtype=np.float64)
    return Cluster(
        indices=list(range(len(points))),
        centroid=points.mean(axis=0),
        bbox=BoundingBox.from_points(points),
    )


class TestLabeling:
    def test_vehicle_sized_box(self):
        points = np.array([[0, 0, -1.5], [4.4, 1.8, 0.2]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "vehicle"

    def test_pedestrian_sized_box(self):
        points = np.array([[0, 0, -1.6], [0.4, 0.4, 0.2]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "pedestrian"

    def test_pole_sized_box(self):
        points = np.array([[0, 0, -1.8], [0.2, 0.2, 3.5]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "pole"

    def test_detection_metadata(self):
        points = np.array([[0, 0, 0], [1, 1, 1]])
        detections = label_clusters(PointCloud(points.astype(np.float32)),
                                    [_cluster_from_points(points)])
        detection = detections[0]
        assert detection.n_points == 2
        assert detection.cluster_id == 0
        assert detection.footprint_area == pytest.approx(1.0)

    def test_labels_on_lidar_frame(self, filtered_frame):
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=0.6, min_cluster_size=5)).extract(filtered_frame)
        detections = label_clusters(filtered_frame, result.clusters)
        assert len(detections) == result.n_clusters
        histogram = match_clusters_to_labels(detections)
        assert sum(histogram.values()) == len(detections)
        # The synthetic urban scene contains vehicles that must be detected.
        assert histogram.get("vehicle", 0) >= 1


class TestFiltering:
    def test_filter_by_extent(self):
        small = _cluster_from_points(np.array([[0, 0, 0], [0.05, 0.05, 0.05]]))
        big = _cluster_from_points(np.array([[0, 0, 0], [30.0, 3.0, 3.0]]))
        ok = _cluster_from_points(np.array([[0, 0, 0], [2.0, 1.0, 1.5]]))
        cloud = PointCloud(np.zeros((2, 3), dtype=np.float32))
        detections = label_clusters(cloud, [small, big, ok])
        kept = filter_by_extent(detections, min_extent=0.2, max_extent=15.0)
        assert len(kept) == 1
        assert kept[0].cluster_id == 2

    def test_histogram_empty(self):
        assert match_clusters_to_labels([]) == {}
