"""Tests of cluster labeling and filtering (the node's output stage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import (
    ClusterConfig,
    EuclideanClusterExtractor,
    filter_by_extent,
    label_clusters,
    match_clusters_to_labels,
)
from repro.perception.euclidean_cluster import Cluster
from repro.pointcloud import PointCloud
from repro.pointcloud.cloud import BoundingBox


def _cluster_from_points(points):
    points = np.asarray(points, dtype=np.float64)
    return Cluster(
        indices=list(range(len(points))),
        centroid=points.mean(axis=0),
        bbox=BoundingBox.from_points(points),
    )


class TestLabeling:
    def test_vehicle_sized_box(self):
        points = np.array([[0, 0, -1.5], [4.4, 1.8, 0.2]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "vehicle"

    def test_pedestrian_sized_box(self):
        points = np.array([[0, 0, -1.6], [0.4, 0.4, 0.2]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "pedestrian"

    def test_pole_sized_box(self):
        points = np.array([[0, 0, -1.8], [0.2, 0.2, 3.5]])
        cluster = _cluster_from_points(points)
        detections = label_clusters(PointCloud(points.astype(np.float32)), [cluster])
        assert detections[0].label == "pole"

    def test_detection_metadata(self):
        points = np.array([[0, 0, 0], [1, 1, 1]])
        detections = label_clusters(PointCloud(points.astype(np.float32)),
                                    [_cluster_from_points(points)])
        detection = detections[0]
        assert detection.n_points == 2
        assert detection.cluster_id == 0
        assert detection.footprint_area == pytest.approx(1.0)

    def test_labels_on_lidar_frame(self, filtered_frame):
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=0.6, min_cluster_size=5)).extract(filtered_frame)
        detections = label_clusters(filtered_frame, result.clusters)
        assert len(detections) == result.n_clusters
        histogram = match_clusters_to_labels(detections)
        assert sum(histogram.values()) == len(detections)
        # The synthetic urban scene contains vehicles that must be detected.
        assert histogram.get("vehicle", 0) >= 1


class TestFiltering:
    def test_filter_by_extent(self):
        small = _cluster_from_points(np.array([[0, 0, 0], [0.05, 0.05, 0.05]]))
        big = _cluster_from_points(np.array([[0, 0, 0], [30.0, 3.0, 3.0]]))
        ok = _cluster_from_points(np.array([[0, 0, 0], [2.0, 1.0, 1.5]]))
        cloud = PointCloud(np.zeros((2, 3), dtype=np.float32))
        detections = label_clusters(cloud, [small, big, ok])
        kept = filter_by_extent(detections, min_extent=0.2, max_extent=15.0)
        assert len(kept) == 1
        assert kept[0].cluster_id == 2

    def test_histogram_empty(self):
        assert match_clusters_to_labels([]) == {}


def _detection_with_extent(length, width, height):
    points = np.array([[0.0, 0.0, 0.0], [length, width, height]])
    return label_clusters(PointCloud(points.astype(np.float32)),
                          [_cluster_from_points(points)])[0]


class TestFilterBoundaries:
    """`filter_by_extent` bounds are inclusive at exactly the threshold."""

    def test_largest_extent_exactly_min_is_kept(self):
        detection = _detection_with_extent(0.2, 0.1, 0.1)
        assert filter_by_extent([detection], min_extent=0.2, max_extent=15.0) \
            == [detection]

    def test_largest_extent_exactly_max_is_kept(self):
        detection = _detection_with_extent(15.0, 1.0, 1.0)
        assert filter_by_extent([detection], min_extent=0.2, max_extent=15.0) \
            == [detection]

    def test_just_outside_either_bound_is_dropped(self):
        too_small = _detection_with_extent(0.19, 0.1, 0.1)
        too_big = _detection_with_extent(15.01, 1.0, 1.0)
        assert filter_by_extent([too_small, too_big],
                                min_extent=0.2, max_extent=15.0) == []

    def test_empty_input(self):
        assert filter_by_extent([]) == []


class TestClassificationBoundaries:
    """`_classify_extent` thresholds are strict (paper-style coarse classes)."""

    def test_vehicle_thresholds_are_strict(self):
        assert _detection_with_extent(2.5, 1.0, 1.5).label != "vehicle"
        assert _detection_with_extent(2.51, 1.0, 0.8).label != "vehicle"
        assert _detection_with_extent(2.51, 1.0, 0.81).label == "vehicle"

    def test_pole_thresholds(self):
        assert _detection_with_extent(0.3, 0.3, 2.5).label != "pole"
        assert _detection_with_extent(0.3, 0.3, 2.51).label == "pole"
        assert _detection_with_extent(0.8, 0.9, 3.0).label != "pole"

    def test_pedestrian_thresholds(self):
        assert _detection_with_extent(0.5, 0.5, 1.7).label == "pedestrian"
        assert _detection_with_extent(1.2, 0.5, 1.7).label != "pedestrian"
        assert _detection_with_extent(0.5, 0.5, 1.2).label != "pedestrian"
        assert _detection_with_extent(0.5, 0.5, 2.5).label == "pedestrian"

    def test_zero_extent_is_unknown(self):
        assert _detection_with_extent(0.0, 0.0, 0.0).label == "unknown"


class TestOnScenarioPipeline:
    def test_filtering_end_to_end_across_scenarios(self):
        """The filter stage keeps only in-bounds detections on real frames."""
        from repro.perception import EuclideanClusterExtractor
        from repro.pointcloud import preprocess_for_clustering
        from repro.scenarios import build_sequence

        for name in ("warehouse_indoor", "sparse_rural"):
            sequence = build_sequence(name, n_frames=1, seed=7,
                                      n_beams=14, n_azimuth_steps=120)
            cloud = preprocess_for_clustering(sequence.frame(0))
            result = EuclideanClusterExtractor(ClusterConfig()).extract(cloud)
            detections = label_clusters(cloud, result.clusters)
            kept = filter_by_extent(detections, min_extent=0.3, max_extent=10.0)
            assert len(kept) <= len(detections)
            for detection in kept:
                assert 0.3 <= float(np.max(detection.bbox.extent)) <= 10.0
