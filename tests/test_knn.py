"""Tests of k-nearest-neighbour search over the k-d tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree import SearchStats, build_kdtree, nearest_neighbor, nearest_neighbors


def _brute_force_knn(points: np.ndarray, query, k: int):
    d = np.linalg.norm(points.astype(np.float64) - np.asarray(query, dtype=np.float64), axis=1)
    order = np.argsort(d, kind="stable")[:k]
    return [(int(i), float(d[i])) for i in order]


class TestNearestNeighbors:
    def test_matches_brute_force(self, random_tree, random_cloud):
        for i in range(0, len(random_cloud), 173):
            query = random_cloud[i]
            got = nearest_neighbors(random_tree, query, k=5)
            expected = _brute_force_knn(random_tree.points, query, 5)
            assert [idx for idx, _ in got] == [idx for idx, _ in expected] or \
                np.allclose([d for _, d in got], [d for _, d in expected])

    def test_distances_sorted(self, random_tree, random_cloud):
        got = nearest_neighbors(random_tree, random_cloud[0], k=10)
        distances = [d for _, d in got]
        assert distances == sorted(distances)

    def test_k_larger_than_cloud(self):
        points = np.random.default_rng(1).uniform(-1, 1, (7, 3)).astype(np.float32)
        tree = build_kdtree(points)
        got = nearest_neighbors(tree, [0, 0, 0], k=20)
        assert len(got) == 7

    def test_nearest_of_cloud_point_is_itself(self, random_tree, random_cloud):
        index, distance = nearest_neighbor(random_tree, random_cloud[11])
        assert distance == pytest.approx(0.0, abs=1e-6)

    def test_invalid_k_rejected(self, random_tree):
        with pytest.raises(ValueError):
            nearest_neighbors(random_tree, [0, 0, 0], k=0)

    def test_invalid_query_rejected(self, random_tree):
        with pytest.raises(ValueError):
            nearest_neighbors(random_tree, [0, 0], k=1)

    def test_stats_populated(self, random_tree, random_cloud):
        stats = SearchStats()
        nearest_neighbors(random_tree, random_cloud[0], k=3, stats=stats)
        assert stats.queries == 1
        assert stats.leaves_visited >= 1
        assert stats.points_examined >= 3

    def test_pruning_examines_fewer_points_than_total(self, frame_tree, filtered_frame):
        stats = SearchStats()
        nearest_neighbors(frame_tree, filtered_frame[0], k=1, stats=stats)
        assert stats.points_examined < frame_tree.n_points

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_points=st.integers(min_value=2, max_value=200),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_set_matches_brute_force_property(self, seed, n_points, k):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-10, 10, size=(n_points, 3)).astype(np.float32)
        tree = build_kdtree(points)
        query = rng.uniform(-12, 12, size=3)
        got = nearest_neighbors(tree, query, k=k)
        expected = _brute_force_knn(points, query, k)
        np.testing.assert_allclose(
            [d for _, d in got], [d for _, d in expected], rtol=1e-9, atol=1e-9
        )
