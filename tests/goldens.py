"""One source of truth for golden-snapshot paths, keyed by backend name.

The golden harnesses (``test_golden_pipeline.py``, ``test_golden_hardware.py``)
historically spelled the execution mode into filenames by hand
(``*_baseline`` / ``*_bonsai``), each file with its own f-string.  Runs are
now keyed by *backend name* (the :mod:`repro.engine` registry), and this
module maps a backend to its snapshot path in exactly one place, so
``--update-golden`` regenerates every mode of every kind uniformly and a new
sweep backend cannot silently miss a harness.

Filenames keep the historical short stems (the backend's leaf-format
flavour): ``pipeline_urban_bonsai.json`` is the ``bonsai-batched`` run of
the ``urban`` world through the functional harness.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.hw_sweep import SWEEP_BACKENDS, mode_label

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Execution backends the golden harnesses sweep (registry names).  The
#: functional harness runs them as-is; the hardware harness runs them with
#: ``ExecutionConfig(hardware=True)``.  Aliased to the hardware sweep's
#: backend list so the two harnesses and the sweep driver can never
#: diverge on which backends are golden-locked.
GOLDEN_BACKENDS = SWEEP_BACKENDS

#: Snapshot kinds and their filename prefixes.
KINDS = {
    "pipeline": "pipeline",
    "hardware": "hw_pipeline",
}

#: A backend's snapshot stem (shared with the sweep's row labels): the
#: default batched backends keep the historical short stems
#: (``baseline`` / ``bonsai``); any other backend uses its full registry
#: name, so adding e.g. ``baseline-perquery`` to a sweep can never collide
#: with an existing snapshot file.
mode_stem = mode_label


def golden_path(kind: str, scenario: str, backend: str) -> Path:
    """The snapshot path of one (kind, scenario, backend) run."""
    return GOLDEN_DIR / f"{KINDS[kind]}_{scenario}_{mode_stem(backend)}.json"
