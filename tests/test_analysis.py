"""Tests of the analysis layer: Table I metrics, box plots, comparisons, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BoxPlotStats,
    ClassificationErrorStats,
    FormatErrorInspector,
    classification_error,
    compare_distributions,
    compare_measurements,
    render_boxplot_figure,
    render_fig2,
    render_fig9a,
    render_fig9b,
    render_fig10,
    render_table,
    render_table1,
    render_table5,
    table1_classification_errors,
)
from repro.core.floatfmt import BFLOAT16, FLOAT16, FLOAT24
from repro.hwmodel import TABLE_V, estimate_bonsai_area
from repro.kdtree import SearchStats, build_kdtree, radius_search
from repro.pointcloud import DrivingSequence, LidarConfig, SceneConfig, SequenceConfig
from repro.workloads import EuclideanClusterPipeline, profile_euclidean_cluster


class TestClassificationError:
    def test_baseline_results_preserved(self, frame_tree, filtered_frame):
        inspector = FormatErrorInspector(FLOAT16)
        stats = SearchStats()
        query = filtered_frame[0]
        got = radius_search(frame_tree, query, 0.6, inspector=inspector, stats=stats)
        assert sorted(got) == sorted(radius_search(frame_tree, query, 0.6))

    def test_error_rate_small_for_fp16(self, frame_tree, filtered_frame):
        queries = [filtered_frame[i] for i in range(0, len(filtered_frame), 23)]
        stats = classification_error(frame_tree, queries, 0.6, FLOAT16)
        assert stats.classifications > 1000
        assert stats.error_rate < 0.01

    def test_table1_ordering_matches_paper(self, frame_tree, filtered_frame):
        """Table I: float24 < fp16 < bfloat16 in classification error."""
        queries = [filtered_frame[i] for i in range(0, len(filtered_frame), 17)]
        errors = table1_classification_errors(frame_tree, queries, 0.6)
        assert errors["float24"].error_rate <= errors["ieee_fp16"].error_rate
        assert errors["ieee_fp16"].error_rate <= errors["bfloat16"].error_rate

    def test_error_components_sum(self, frame_tree, filtered_frame):
        queries = [filtered_frame[i] for i in range(0, len(filtered_frame), 31)]
        stats = classification_error(frame_tree, queries, 0.6, BFLOAT16)
        assert stats.false_in + stats.false_out == stats.misclassified

    def test_merge(self):
        a = ClassificationErrorStats("ieee_fp16", classifications=10, misclassified=1)
        b = ClassificationErrorStats("ieee_fp16", classifications=20, misclassified=3)
        a.merge(b)
        assert a.classifications == 30
        assert a.misclassified == 4
        with pytest.raises(ValueError):
            a.merge(ClassificationErrorStats("bfloat16"))

    def test_empty_error_rate(self):
        assert ClassificationErrorStats("ieee_fp16").error_rate == 0.0


class TestBoxPlot:
    def test_summary_statistics(self):
        stats = BoxPlotStats.from_values("x", [1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.n == 5
        assert stats.mean == pytest.approx(22.0)
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert stats.q1 <= stats.median <= stats.q3 <= stats.p99 <= stats.maximum

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPlotStats.from_values("x", [])

    def test_ascii_box_renders(self):
        stats = BoxPlotStats.from_values("x", list(np.linspace(0, 10, 50)))
        box = stats.ascii_box(0.0, 10.0, width=40)
        assert len(box) == 40
        assert "o" in box and "=" in box

    def test_ascii_box_invalid_axis(self):
        stats = BoxPlotStats.from_values("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            stats.ascii_box(5.0, 5.0)

    def test_compare_distributions_improvement(self):
        baseline = [10.0, 11.0, 12.0, 13.0]
        improved = [9.0, 10.0, 10.5, 11.5]
        result = compare_distributions(baseline, improved)
        assert result["mean_reduction"] > 0
        assert result["p99_reduction"] > 0


class TestCompareMeasurements:
    @pytest.fixture(scope="class")
    def summary(self):
        sequence = DrivingSequence(SequenceConfig(
            n_frames=2, scene=SceneConfig(seed=8),
            lidar=LidarConfig(n_beams=16, n_azimuth_steps=180, seed=80)))
        pipeline = EuclideanClusterPipeline()
        clouds = [sequence.frame(i) for i in range(2)]
        baseline = pipeline.run_frames(clouds, use_bonsai=False)
        bonsai = pipeline.run_frames(clouds, use_bonsai=True)
        return compare_measurements(baseline, bonsai)

    def test_fig9a_directions(self, summary):
        assert summary.fig9a["loads"].relative_change < 0
        assert summary.fig9a["instructions"].relative_change < 0
        assert summary.fig9a["execution_time"].relative_change < 0

    def test_fig9b_fraction(self, summary):
        assert 0.2 < summary.bytes_fraction < 0.6

    def test_latency_and_energy_improve(self, summary):
        assert summary.latency_improvements["mean_reduction"] > 0
        assert summary.energy_improvements["mean_reduction"] > 0

    def test_inconclusive_rate_small(self, summary):
        assert 0.0 <= summary.inconclusive_rate < 0.02

    def test_mean_visits_per_leaf_positive(self, summary):
        assert summary.mean_visits_per_leaf > 1.0

    def test_mismatched_lengths_rejected(self, summary):
        from repro.analysis.compare import compare_measurements as cmp
        with pytest.raises(ValueError):
            cmp([], [None])  # type: ignore[list-item]

    def test_renderers_produce_text(self, summary):
        assert "Figure 9a" in render_fig9a(summary, {"loads": -0.23})
        assert "Figure 9b" in render_fig9b(summary)
        assert "Figure 10" in render_fig10(summary)
        text = render_boxplot_figure("Figure 11", summary.latency_baseline,
                                     summary.latency_bonsai,
                                     summary.latency_improvements, 0.0926, " s")
        assert "Mean improvement" in text


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [("1", "2"), ("333", "4")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_render_table1(self, frame_tree, filtered_frame):
        queries = [filtered_frame[i] for i in range(0, len(filtered_frame), 201)]
        errors = table1_classification_errors(frame_tree, queries, 0.6, [FLOAT16])
        text = render_table1(errors, {"ieee_fp16": 0.00076})
        assert "Table I" in text
        assert "ieee_fp16" in text

    def test_render_fig2(self, lidar_frame):
        share = profile_euclidean_cluster(lidar_frame)
        text = render_fig2([share], {share.task: 0.61})
        assert "Figure 2" in text
        assert "61.00%" in text

    def test_render_table5(self):
        text = render_table5(estimate_bonsai_area(), TABLE_V)
        assert "Table V" in text
        assert "0.0511" in text


class TestHardwareSweepResultModes:
    """The sweep result carries its own mode labels (not hardwired)."""

    @staticmethod
    def _result(backends):
        from repro.analysis.hw_sweep import (
            HardwareScenarioRun, HardwareSweepResult, mode_label)

        runs = [
            HardwareScenarioRun(scenario="urban", mode=mode_label(backend),
                                metrics={"backend": backend}, backend=backend)
            for backend in backends
        ]
        return HardwareSweepResult(
            runs=runs, n_frames=1, n_beams=8, n_azimuth_steps=64,
            modes=tuple(mode_label(backend) for backend in backends))

    def test_default_backends_keep_short_labels(self):
        result = self._result(("baseline-batched", "bonsai-batched"))
        baseline, bonsai = result.pair("urban")
        assert (baseline.mode, bonsai.mode) == ("baseline", "bonsai")
        assert set(result.as_dict()["scenarios"]["urban"]) == {
            "baseline", "bonsai"}

    def test_non_default_backends_pair_and_serialise(self):
        """A sweep over per-query backends must not KeyError on the
        hardwired default labels (regression: pair()/as_dict() used the
        module-global SWEEP_MODES)."""
        backends = ("baseline-perquery", "bonsai-perquery")
        result = self._result(backends)
        first, second = result.pair("urban")
        assert (first.backend, second.backend) == backends
        assert set(result.as_dict()["scenarios"]["urban"]) == set(backends)
