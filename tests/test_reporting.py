"""Edge-case tests of the analysis table renderers and comparison aggregates.

``test_analysis.py`` exercises the renderers on full pipeline output; this
file locks down the edges the benchmarks never hit: empty inputs, single
rows, zero baselines, and the hardware-matrix renderer.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    BoxPlotStats,
    ComparisonSummary,
    MetricComparison,
    compare_measurements,
    render_boxplot_figure,
    render_fig9a,
    render_fig9b,
    render_fig10,
    render_hw_matrix,
    render_table,
)
from repro.analysis.hw_sweep import (
    HardwareScenarioRun,
    HardwareSweepResult,
)
from repro.workloads import EuclideanClusterPipeline


def _stage(bytes_loaded=1000, cycles=100.0, energy=1.0, l1=0.01, dram=64):
    return {
        "l1_miss_ratio": l1,
        "bytes_loaded": bytes_loaded,
        "dram_to_l2_bytes": dram,
        "cycles": cycles,
        "energy_j": energy,
    }


def _sweep(baseline_stage, bonsai_stage):
    runs = [
        HardwareScenarioRun("world", "baseline",
                            {"hardware": {"clustering": baseline_stage}}),
        HardwareScenarioRun("world", "bonsai",
                            {"hardware": {"clustering": bonsai_stage}}),
    ]
    return HardwareSweepResult(runs=runs, n_frames=1, n_beams=8, n_azimuth_steps=60)


class TestRenderTable:
    def test_no_rows_renders_headers_only(self):
        text = render_table(("a", "b"), [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + separator, no data rows
        assert lines[0].startswith("a")

    def test_single_row(self):
        text = render_table(("metric", "value"), [("x", 1)], title="T")
        lines = text.splitlines()
        assert len(lines) == 4
        assert "x" in lines[3] and "1" in lines[3]

    def test_wide_cell_expands_column(self):
        text = render_table(("a",), [("wider-than-header",)])
        header, separator, row = text.splitlines()
        assert len(header) == len(separator) == len(row)


class TestMetricComparisonEdges:
    def test_zero_baseline_reports_zero_change(self):
        assert MetricComparison("m", baseline=0.0, bonsai=5.0).relative_change == 0.0

    def test_reduction_is_negative(self):
        assert MetricComparison("m", 10.0, 7.0).relative_change == pytest.approx(-0.3)


class TestCompareMeasurementsEdges:
    def test_empty_inputs_rejected(self):
        # Distribution statistics are undefined over zero frames; the
        # aggregate refuses instead of emitting NaNs.
        with pytest.raises(ValueError):
            compare_measurements([], [])

    def test_single_frame_pair(self, lidar_frame):
        pipeline = EuclideanClusterPipeline()
        baseline = [pipeline.run_frame(lidar_frame, use_bonsai=False)]
        bonsai = [pipeline.run_frame(lidar_frame, use_bonsai=True)]
        summary = compare_measurements(baseline, bonsai)
        assert summary.latency_baseline.n == 1
        assert summary.latency_baseline.mean == summary.latency_baseline.p99
        assert 0.0 < summary.bytes_fraction < 1.0
        # Single-row summaries must render without errors.
        assert "Figure 9a" in render_fig9a(summary)
        assert "Figure 10" in render_fig10(summary)
        text = render_boxplot_figure(
            "Figure 11", summary.latency_baseline, summary.latency_bonsai,
            summary.latency_improvements, unit=" s")
        assert "Mean improvement" in text


class TestRenderFig9bEdges:
    def test_zero_baseline_bytes(self):
        stats = BoxPlotStats.from_values("x", [1.0])
        summary = ComparisonSummary(
            fig9a={}, fig10={}, latency_baseline=stats, latency_bonsai=stats,
            latency_improvements={"mean_reduction": 0.0, "p99_reduction": 0.0},
            energy_baseline=stats, energy_bonsai=stats,
            energy_improvements={"mean_reduction": 0.0, "p99_reduction": 0.0},
            bytes_baseline=0, bytes_bonsai=0,
            inconclusive_rate=0.0, mean_visits_per_leaf=0.0)
        assert summary.bytes_fraction == 1.0
        assert "100.00%" in render_fig9b(summary)


class TestRenderHwMatrix:
    def test_single_scenario_single_stage(self):
        sweep = _sweep(_stage(bytes_loaded=1000, cycles=100.0, energy=2.0),
                       _stage(bytes_loaded=600, cycles=80.0, energy=1.5))
        text = render_hw_matrix(sweep)
        assert "Hardware scenario matrix" in text
        assert "world" in text and "clustering" in text
        assert "-40.00%" in text  # byte change
        assert "-20.00%" in text  # cycle change
        assert "-25.00%" in text  # energy change

    def test_zero_baseline_values(self):
        sweep = _sweep(_stage(bytes_loaded=0, cycles=0.0, energy=0.0, dram=0),
                       _stage(bytes_loaded=0, cycles=0.0, energy=0.0, dram=0))
        text = render_hw_matrix(sweep)
        assert "+0.00%" in text  # all changes report zero, no division error

    def test_pair_missing_mode_raises(self):
        sweep = HardwareSweepResult(
            runs=[HardwareScenarioRun("world", "baseline", {"hardware": {}})],
            n_frames=1, n_beams=8, n_azimuth_steps=60)
        with pytest.raises(KeyError, match="missing modes"):
            sweep.pair("world")

    def test_as_dict_structure(self):
        sweep = _sweep(_stage(bytes_loaded=1000), _stage(bytes_loaded=600))
        data = sweep.as_dict()
        assert data["preset"] == {"n_frames": 1, "n_beams": 8,
                                  "n_azimuth_steps": 60}
        assert set(data["scenarios"]) == {"world"}
        assert set(data["scenarios"]["world"]) == {"baseline", "bonsai"}
        assert (data["scenarios"]["world"]["bonsai"]["hardware"]["clustering"]
                ["bytes_loaded"]) == 600
        # The report must be JSON-serialisable as promised.
        import json
        assert json.loads(json.dumps(data)) == data
