"""Tests of the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.pointcloud import load_npz, load_pcd


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.frames == 3
        assert args.format == "pcd"

    def test_cluster_flags(self):
        args = build_parser().parse_args(["cluster", "--bonsai", "--tolerance", "0.8"])
        assert args.bonsai is True
        assert args.tolerance == 0.8

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scenarios_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])
        args = build_parser().parse_args(["scenarios", "list"])
        assert args.action == "list"

    def test_pipeline_flags(self):
        args = build_parser().parse_args(
            ["pipeline", "--scenario", "tunnel", "--frames", "2", "--bonsai"])
        assert args.scenario == "tunnel"
        assert args.frames == 2
        assert args.bonsai is True
        assert args.no_localization is False
        assert args.hardware is False

    def test_pipeline_hardware_flag(self):
        args = build_parser().parse_args(["pipeline", "--hardware"])
        assert args.hardware is True

    def test_help_names_every_registered_scenario(self):
        """--help must list the registry's scenarios, with no drift."""
        from repro.scenarios import scenario_names

        subparsers = build_parser()._subparsers._group_actions[0].choices
        for command in ("pipeline", "scenarios"):
            text = subparsers[command].format_help()
            for name in scenario_names():
                assert name in text, (command, name)

    def test_backend_flags_accept_registry_names(self):
        args = build_parser().parse_args(
            ["pipeline", "--backend", "bonsai-perquery"])
        assert args.backend == "bonsai-perquery"
        args = build_parser().parse_args(
            ["batch-sweep", "--backend", "baseline-perquery"])
        assert args.backend == "baseline-perquery"

    def test_backend_flags_reject_unknown_names(self):
        for command in ("pipeline", "batch-sweep"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--backend", "warp-drive"])

    def test_conflicting_backend_selections_rejected(self):
        with pytest.raises(SystemExit, match="--bonsai conflicts"):
            main(["pipeline", "--scenario", "urban", "--bonsai",
                  "--backend", "baseline-batched"])
        with pytest.raises(SystemExit, match="--engine bonsai conflicts"):
            main(["batch-sweep", "--queries", "10", "--engine", "bonsai",
                  "--backend", "baseline-perquery"])
        # Consistent combinations still work.
        args = build_parser().parse_args(
            ["pipeline", "--bonsai", "--backend", "bonsai-perquery"])
        assert args.backend == "bonsai-perquery"

    def test_help_names_every_registered_backend(self):
        """--help must list the backend registry's names, with no drift."""
        from repro.engine import backend_names

        subparsers = build_parser()._subparsers._group_actions[0].choices
        for command in ("pipeline", "batch-sweep", "hw-sweep", "campaign"):
            text = subparsers[command].format_help()
            for name in backend_names():
                assert name in text, (command, name)

    def test_campaign_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--budget", "5", "--seed", "3",
             "--backend", "baseline-batched", "--backend", "bonsai-batched",
             "--scenario", "urban", "--no-recorded", "--no-shrink",
             "--max-shrink-evals", "50"])
        assert args.budget == 5 and args.seed == 3
        assert args.backends == ["baseline-batched", "bonsai-batched"]
        assert args.scenarios == ["urban"]
        assert args.no_recorded is True and args.no_shrink is True
        assert args.max_shrink_evals == 50
        defaults = build_parser().parse_args(["campaign"])
        assert defaults.budget == 25 and defaults.seed == 0
        assert defaults.backends is None and defaults.scenarios is None

    def test_campaign_rejects_nonpositive_budget(self):
        for budget in ("0", "-3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["campaign", "--budget", budget])

    def test_campaign_help_names_every_scenario(self):
        from repro.scenarios import scenario_names

        subparsers = build_parser()._subparsers._group_actions[0].choices
        text = subparsers["campaign"].format_help()
        for name in scenario_names():
            assert name in text, name

    def test_hw_sweep_flags(self):
        args = build_parser().parse_args(
            ["hw-sweep", "--scenario", "urban", "--scenario", "tunnel",
             "--jobs", "4", "--frames", "2",
             "--cache-geometry", "l1-8k", "--cache-geometry", "table-iv"])
        assert args.scenarios == ["urban", "tunnel"]
        assert args.jobs == 4
        assert args.cache_geometries == ["l1-8k", "table-iv"]
        defaults = build_parser().parse_args(["hw-sweep"])
        assert defaults.scenarios is None and defaults.jobs is None
        assert defaults.cache_geometries is None and defaults.backends is None

    def test_hw_sweep_help_names_every_cache_geometry(self):
        """--help must list the geometry registry's names, with no drift."""
        from repro.analysis.cache_sweep import geometry_names

        subparsers = build_parser()._subparsers._group_actions[0].choices
        text = subparsers["hw-sweep"].format_help()
        for name in geometry_names():
            assert name in text, name

    def test_hw_sweep_rejects_unknown_geometry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["hw-sweep", "--cache-geometry", "l1-infinite"])

    def test_hw_sweep_rejects_nonpositive_jobs(self):
        for jobs in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["hw-sweep", "--jobs", jobs])

    def test_hw_sweep_rejects_single_backend(self):
        """The sweep compares backend pairs; one backend is a usage error."""
        with pytest.raises(SystemExit, match="at least two distinct"):
            main(["hw-sweep", "--scenario", "urban",
                  "--backend", "bonsai-batched"])
        with pytest.raises(SystemExit, match="at least two distinct"):
            main(["hw-sweep", "--scenario", "urban",
                  "--backend", "bonsai-batched", "--backend", "bonsai-batched"])


class TestCommands:
    def test_generate_pcd(self, tmp_path, capsys):
        code = main(["generate", "--frames", "1", "--output-dir", str(tmp_path),
                     "--format", "pcd"])
        assert code == 0
        files = sorted(tmp_path.glob("*.pcd"))
        assert len(files) == 1
        assert len(load_pcd(files[0])) > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_npz(self, tmp_path):
        code = main(["generate", "--frames", "2", "--output-dir", str(tmp_path),
                     "--format", "npz", "--seed", "3"])
        assert code == 0
        files = sorted(tmp_path.glob("*.npz"))
        assert len(files) == 2
        assert len(load_npz(files[0])) > 0

    def test_compress_stats(self, capsys):
        code = main(["compress-stats", "--frame", "0", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compressed footprint" in out
        assert "recompute rate" in out

    def test_cluster_baseline(self, capsys):
        code = main(["cluster", "--frame", "0", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline search" in out
        assert "clusters" in out

    def test_cluster_bonsai(self, capsys):
        code = main(["cluster", "--frame", "0", "--seed", "5", "--bonsai"])
        assert code == 0
        assert "Bonsai-extensions search" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(["compare", "--frames", "2", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9a" in out
        assert "latency" in out

    def test_scenarios_list(self, capsys):
        code = main(["scenarios", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("urban", "highway", "tunnel", "warehouse_indoor",
                     "sparse_rural", "parking_lot"):
            assert name in out

    def test_pipeline_baseline(self, capsys):
        code = main(["pipeline", "--scenario", "sparse_rural", "--frames", "3",
                     "--beams", "14", "--azimuth-steps", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pipeline `sparse_rural`" in out
        assert "baseline search" in out
        assert "localization:" in out
        assert "tracking:" in out

    def test_pipeline_bonsai_no_localization(self, capsys):
        code = main(["pipeline", "--scenario", "urban", "--frames", "2",
                     "--beams", "12", "--azimuth-steps", "90",
                     "--bonsai", "--no-localization"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bonsai-extensions search" in out
        assert "bonsai:" in out
        assert "localization:" not in out

    def test_pipeline_hardware(self, capsys):
        code = main(["pipeline", "--scenario", "urban", "--frames", "3",
                     "--beams", "12", "--azimuth-steps", "90", "--hardware"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hardware (trace-driven cache" in out
        assert "clustering" in out and "localization" in out
        assert "DRAM->L2 B" in out

    def test_pipeline_backend_by_name(self, capsys):
        code = main(["pipeline", "--scenario", "urban", "--frames", "2",
                     "--beams", "12", "--azimuth-steps", "90",
                     "--backend", "bonsai-batched", "--no-localization"])
        assert code == 0
        out = capsys.readouterr().out
        assert "via bonsai-batched" in out
        assert "bonsai:" in out

    def test_batch_sweep_backend_by_name(self, capsys):
        code = main(["batch-sweep", "--queries", "200",
                     "--backend", "bonsai-batched", "--compare-loop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bonsai-batched backend" in out
        assert "bonsai-perquery backend" in out

    def test_pipeline_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario 'mars_colony'"):
            main(["pipeline", "--scenario", "mars_colony"])

    def test_pipeline_mp_backend_by_name(self, capsys):
        code = main(["pipeline", "--scenario", "urban", "--frames", "2",
                     "--beams", "10", "--azimuth-steps", "90",
                     "--backend", "baseline-batched-mp", "--no-localization"])
        assert code == 0
        assert "via baseline-batched-mp" in capsys.readouterr().out

    def test_hw_sweep_matrix(self, capsys):
        code = main(["hw-sweep", "--scenario", "urban", "--frames", "2",
                     "--beams", "10", "--azimuth-steps", "90", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hardware scenario matrix" in out
        assert "ran 2 hardware-in-the-loop runs across 2 worker" in out

    def test_hw_sweep_cache_geometry_table(self, capsys):
        code = main(["hw-sweep", "--scenario", "urban", "--frames", "2",
                     "--beams", "10", "--azimuth-steps", "90", "--jobs", "2",
                     "--cache-geometry", "table-iv",
                     "--cache-geometry", "l1-8k"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cache-geometry sensitivity" in out
        assert "l1-8k" in out
        assert "ran 4 hardware-in-the-loop runs" in out


class TestErrorPaths:
    """Unknown registry names must exit non-zero and list the valid choices."""

    def test_unknown_backend_lists_registry_choices(self, capsys):
        from repro.engine import backend_names

        for command in ("pipeline", "batch-sweep", "hw-sweep", "campaign"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--backend", "warp-drive"])
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            for name in backend_names():
                assert name in err, (command, name)

    def test_unknown_scenario_lists_registry_choices(self):
        from repro.scenarios import scenario_names

        for argv in (["pipeline", "--scenario", "mars_colony"],
                     ["hw-sweep", "--scenario", "mars_colony"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            message = str(excinfo.value.code)
            assert "unknown scenario 'mars_colony'" in message
            for name in scenario_names():
                assert name in message, (argv[0], name)

    def test_unknown_cache_geometry_lists_registry_choices(self, capsys):
        from repro.analysis.cache_sweep import geometry_names

        with pytest.raises(SystemExit) as excinfo:
            main(["hw-sweep", "--cache-geometry", "l1-infinite"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in geometry_names():
            assert name in err, name

    def test_valid_names_do_not_trip_the_validation(self):
        args = build_parser().parse_args(
            ["hw-sweep", "--scenario", "urban", "--scenario", "tunnel"])
        assert args.scenarios == ["urban", "tunnel"]


class TestTrendsCommand:
    """`repro trends`: happy paths plus actionable (traceback-free) errors."""

    def _seed_store(self, tmp_path):
        from repro.trends import TrendRecord, TrendStore

        store = TrendStore(tmp_path / "trends")
        store.append([
            TrendRecord(family="scenario-hw", commit=commit, run_id=commit,
                        order=order, key={"scenario": "urban",
                                          "backend": "bonsai-batched"},
                        metrics={"cycles": 100.0 * (1 + order), "bytes": 7})
            for order, commit in enumerate(["base", "head"])
        ])
        return store

    def test_record_report_dashboard_round_trip(self, tmp_path, capsys):
        store_dir = tmp_path / "trends"
        golden_dir = str(Path(__file__).resolve().parent / "golden")
        assert main(["trends", "record", "--dir", str(store_dir),
                     "--commit", "abc", "--golden", golden_dir]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "golden-pipeline.jsonl" in out

        assert main(["trends", "report", "--dir", str(store_dir),
                     "--baseline", "abc"]) == 0
        assert "OK - no regressions" in capsys.readouterr().out

        html = tmp_path / "dash.html"
        assert main(["trends", "dashboard", "--dir", str(store_dir),
                     "--output", str(html)]) == 0
        assert html.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_report_exit_code_flags_regressions(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        code = main(["trends", "report", "--dir", str(store.root),
                     "--baseline", "base"])
        assert code == 1
        assert "FLAGGED" in capsys.readouterr().out

    def test_missing_store_dir_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "report", "--dir", str(tmp_path / "nowhere"),
                  "--baseline", "base"])
        message = str(excinfo.value.code)
        assert "repro trends report:" in message
        assert "REPRO_TRENDS_DIR" in message

    def test_unknown_family_lists_available(self, tmp_path):
        store = self._seed_store(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "report", "--dir", str(store.root),
                  "--baseline", "base", "--family", "no-such-family"])
        message = str(excinfo.value.code)
        assert "unknown metric family 'no-such-family'" in message
        assert "scenario-hw" in message

    def test_malformed_store_line_is_actionable(self, tmp_path):
        store = self._seed_store(tmp_path)
        path = store.family_path("scenario-hw")
        path.write_text(path.read_text(encoding="utf-8") + "{oops\n",
                        encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "report", "--dir", str(store.root),
                  "--baseline", "base"])
        message = str(excinfo.value.code)
        assert "malformed trend record" in message
        assert "scenario-hw.jsonl:3" in message

    def test_unknown_baseline_commit_is_actionable(self, tmp_path):
        store = self._seed_store(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "report", "--dir", str(store.root),
                  "--baseline", "never-recorded"])
        assert "no records" in str(excinfo.value.code)

    def test_record_without_sources_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "record", "--dir", str(tmp_path / "trends"),
                  "--commit", "abc"])
        assert "nothing to record" in str(excinfo.value.code)

    def test_record_rejects_bad_campaign_manifest(self, tmp_path):
        bad = tmp_path / "manifest.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "record", "--dir", str(tmp_path / "trends"),
                  "--commit", "abc", "--campaign", str(bad)])
        assert "not valid JSON" in str(excinfo.value.code)
        with pytest.raises(SystemExit) as excinfo:
            main(["trends", "record", "--dir", str(tmp_path / "trends"),
                  "--commit", "abc", "--campaign", str(tmp_path / "nope.json")])
        assert "does not exist" in str(excinfo.value.code)
