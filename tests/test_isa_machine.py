"""Tests of the Bonsai machine: instruction semantics and end-to-end flows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.floatfmt import FLOAT16
from repro.core.leaf_compression import ZIPPTS_SLICE_BYTES, compress_leaf
from repro.isa import (
    CPRZPB,
    LDDCP,
    LDSPZPB,
    SQDWEH,
    SQDWEL,
    STZPB,
    BonsaiMachine,
)
from repro.kdtree import build_kdtree, radius_search


@pytest.fixture()
def machine():
    return BonsaiMachine()


def _leaf_points(rng, n=10, center=(25.0, -8.0, 0.5), spread=0.3):
    return (np.asarray(center) + rng.normal(0.0, spread, size=(n, 3))).astype(np.float32)


class TestInstructionSemantics:
    def test_ldspzpb_loads_and_converts(self, machine):
        machine.memory.write_point_fp32(0x100, (1.0003, 2.0, -3.0))
        machine.scalars.write(1, 0)      # slot index
        machine.scalars.write(2, 0x100)  # address
        machine.execute(LDSPZPB(r_index=1, r_addr=2))
        stored = machine.zippts.points(1)[0]
        assert stored[0] == FLOAT16.round_trip(1.0003)
        assert machine.counters.instructions == 1
        assert machine.counters.micro_ops == 2
        assert machine.counters.load_micro_ops == 1

    def test_cprzpb_reports_size(self, machine, rng):
        points = _leaf_points(rng, n=8)
        for i, point in enumerate(points):
            machine.memory.write_point_fp32(0x100 + 16 * i, point)
            machine.scalars.write(1, i)
            machine.scalars.write(2, 0x100 + 16 * i)
            machine.execute(LDSPZPB(r_index=1, r_addr=2))
        machine.scalars.write(3, 8)
        machine.execute(CPRZPB(r_size=4, r_num_pts=3))
        expected = compress_leaf(points)
        assert machine.scalars.read(4) == expected.size_bytes

    def test_stzpb_stores_slices(self, machine, rng):
        points = _leaf_points(rng, n=6)
        size_bytes, n_slices = machine.compress_leaf_points(points, points_base=0x100,
                                                            compressed_base=0x4000)
        expected = compress_leaf(points)
        assert size_bytes == expected.size_bytes
        stored = machine.memory.read(0x4000, size_bytes)
        assert stored == expected.data
        assert machine.counters.store_micro_ops == n_slices

    def test_stzpb_too_many_slices_rejected(self, machine, rng):
        points = _leaf_points(rng, n=4)
        for i, point in enumerate(points):
            machine.memory.write_point_fp32(0x100 + 16 * i, point)
            machine.scalars.write(1, i)
            machine.scalars.write(2, 0x100 + 16 * i)
            machine.execute(LDSPZPB(r_index=1, r_addr=2))
        machine.scalars.write(3, 4)
        machine.execute(CPRZPB(r_size=4, r_num_pts=3))
        machine.scalars.write(5, 0x4000)
        with pytest.raises(ValueError):
            machine.execute(STZPB(r_addr=5, n_slices=40))

    def test_lddcp_round_trips_points(self, machine, rng):
        points = _leaf_points(rng, n=12)
        _, n_slices = machine.compress_leaf_points(points, points_base=0x100,
                                                   compressed_base=0x4000)
        machine.scalars.write(6, 12)
        machine.scalars.write(7, 0x4000)
        machine.execute(LDDCP(v_base=8, r_num_pts=6, r_addr=7, n_slices=n_slices))
        expected = points.astype(np.float16).astype(np.float64)
        for coord in range(3):
            low = machine.vectors.read_f16_lanes(8 + 2 * coord)
            high = machine.vectors.read_f16_lanes(8 + 2 * coord + 1)
            lanes = np.concatenate([low, high])[:12]
            np.testing.assert_array_equal(lanes, expected[:, coord])

    def test_lddcp_micro_op_expansion(self, machine, rng):
        points = _leaf_points(rng, n=15)
        _, n_slices = machine.compress_leaf_points(points, points_base=0x100,
                                                   compressed_base=0x4000)
        before = machine.counters.micro_ops
        machine.scalars.write(6, 15)
        machine.scalars.write(7, 0x4000)
        instruction = LDDCP(v_base=8, r_num_pts=6, r_addr=7, n_slices=n_slices)
        machine.execute(instruction)
        assert instruction.micro_ops() == n_slices + 4
        assert machine.counters.micro_ops - before == n_slices + 4

    def test_sqdwe_low_high(self, machine):
        machine.vectors.write_f32_lanes(1, [2.0, 2.0, 2.0, 2.0])
        machine.vectors.write_f16_lanes(2, [1.0, 0.0, 3.0, 2.0, -1.0, 4.0, 2.5, 10.0])
        machine.execute(SQDWEL(v_sq_diff=3, v_error=4, v_a=1, v_b=2))
        np.testing.assert_allclose(machine.vectors.read_f32_lanes(3), [1.0, 4.0, 1.0, 0.0])
        machine.execute(SQDWEH(v_sq_diff=3, v_error=4, v_a=1, v_b=2))
        np.testing.assert_allclose(machine.vectors.read_f32_lanes(3), [9.0, 4.0, 0.25, 64.0])
        assert np.all(machine.vectors.read_f32_lanes(4) >= 0)

    def test_unknown_instruction_rejected(self, machine):
        class Bogus:
            mnemonic = "BOGUS"

            def micro_ops(self):
                return 1

        with pytest.raises(ValueError):
            machine.execute(Bogus())

    def test_per_mnemonic_counting(self, machine, rng):
        points = _leaf_points(rng, n=5)
        machine.compress_leaf_points(points, points_base=0x100, compressed_base=0x4000)
        assert machine.counters.per_mnemonic["LDSPZPB"] == 5
        assert machine.counters.per_mnemonic["CPRZPB"] == 1
        assert machine.counters.per_mnemonic["STZPB"] == 1


class TestLeafClassificationFlow:
    def test_matches_library_radius_search(self, rng):
        """The ISA-level flow classifies a leaf exactly like the library search."""
        machine = BonsaiMachine()
        points = _leaf_points(rng, n=15, spread=0.6)
        tree = build_kdtree(points)           # single leaf (15 points)
        assert tree.n_leaves == 1
        query = points[0].astype(np.float64) + np.array([0.3, -0.2, 0.1])
        radius = 0.5

        _, n_slices = machine.compress_leaf_points(points, points_base=0x100,
                                                   compressed_base=0x4000)
        in_radius, recomputed = machine.classify_leaf(
            query, radius * radius, compressed_base=0x4000, n_points=15,
            n_slices=n_slices, points_base=0x100,
        )
        expected = radius_search(tree, query, radius)
        assert sorted(in_radius) == sorted(expected)
        assert recomputed >= 0

    def test_classification_equivalence_many_random_leaves(self, rng):
        machine = BonsaiMachine()
        mismatches = 0
        base = 0x10000
        for trial in range(25):
            n = int(rng.integers(2, 16))
            center = rng.uniform(-80, 80, size=3)
            center[2] = rng.uniform(-2, 4)
            points = (center + rng.normal(0, 0.5, size=(n, 3))).astype(np.float32)
            query = center + rng.normal(0, 0.5, size=3)
            radius = float(rng.uniform(0.2, 1.5))
            points_base = base + trial * 0x1000
            compressed_base = base + 0x100000 + trial * 0x1000
            _, n_slices = machine.compress_leaf_points(points, points_base, compressed_base)
            got, _ = machine.classify_leaf(query, radius * radius, compressed_base,
                                           n, n_slices, points_base)
            diffs = points.astype(np.float64) - query
            d2 = np.einsum("ij,ij->i", diffs, diffs)
            expected = sorted(np.nonzero(d2 <= radius * radius)[0].tolist())
            mismatches += int(sorted(got) != expected)
        assert mismatches == 0

    def test_counters_track_memory_traffic(self, rng):
        machine = BonsaiMachine()
        points = _leaf_points(rng, n=15)
        _, n_slices = machine.compress_leaf_points(points, 0x100, 0x4000)
        loads_before = machine.counters.bytes_loaded
        machine.classify_leaf((25.0, -8.0, 0.5), 0.25, 0x4000, 15, n_slices, 0x100)
        delta = machine.counters.bytes_loaded - loads_before
        assert delta >= n_slices * ZIPPTS_SLICE_BYTES
