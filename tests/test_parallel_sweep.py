"""Parallel sweep lockdown: pooled sweeps return exactly the serial result.

Covers the two drivers this applies to: the parallel
:class:`~repro.analysis.hw_sweep.HardwareScenarioSweep` (its pooled run must
reproduce the serial — and therefore golden — metrics bit for bit) and the
:class:`~repro.analysis.cache_sweep.CacheGeometrySweep` (one flattened task
pool over the (geometry, scenario, backend) grid, grouped back
deterministically, with the demand-byte totals geometry-invariant).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import CacheGeometrySweep, HardwareScenarioSweep
from repro.analysis.cache_sweep import GEOMETRIES, geometry_names
from repro.analysis.hw_sweep import SweepTask, run_sweep_task

#: Small sensor preset shared by the equality tests (fast, still exercises
#: clustering + localization on both backends).
TINY = dict(n_frames=2, seed=7, n_beams=10, n_azimuth_steps=90)


def _sweep_json(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


class TestParallelHardwareSweep:
    def test_pooled_run_identical_to_serial(self):
        scenarios = ["urban", "sparse_rural"]
        serial = HardwareScenarioSweep(scenarios, **TINY).run()
        pooled = HardwareScenarioSweep(scenarios, **TINY, n_jobs=3).run()
        assert _sweep_json(pooled) == _sweep_json(serial)
        assert [run.scenario for run in pooled.runs] == \
            [run.scenario for run in serial.runs]
        assert [run.mode for run in pooled.runs] == \
            [run.mode for run in serial.runs]

    def test_tasks_are_deterministic_and_scenario_major(self):
        sweep = HardwareScenarioSweep(["urban", "tunnel"], **TINY, n_jobs=2)
        tasks = sweep.tasks()
        assert tasks == sweep.tasks()
        assert [(t.scenario, t.backend) for t in tasks] == [
            ("urban", "baseline-batched"), ("urban", "bonsai-batched"),
            ("tunnel", "baseline-batched"), ("tunnel", "bonsai-batched")]

    def test_pooled_sweep_reproduces_golden_hardware_snapshot(self):
        """A pooled sweep cell must satisfy the committed golden snapshot."""
        from goldens import golden_path
        from test_golden_pipeline import PRESET, _assert_matches

        sweep = HardwareScenarioSweep(["urban"], n_jobs=2, **PRESET)
        run = sweep.run().runs[0]
        assert run.backend == "baseline-batched"
        golden = json.loads(
            golden_path("hardware", "urban", run.backend).read_text())
        got = json.loads(json.dumps({
            "scenario": run.metrics["scenario"],
            "use_bonsai": run.metrics["use_bonsai"],
            "hardware": run.metrics["hardware"],
        }))
        _assert_matches(got, golden)


class TestCacheGeometrySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return CacheGeometrySweep(["table-iv", "l1-8k"], ["urban"],
                                  n_jobs=2, **TINY).run()

    def test_grid_grouping_is_deterministic(self, result):
        assert [g.name for g in result.geometries()] == ["table-iv", "l1-8k"]
        for geometry_run in result.runs:
            assert [run.scenario for run in geometry_run.sweep.runs] == ["urban"] * 2
            assert [run.mode for run in geometry_run.sweep.runs] == \
                list(result.modes)

    def test_table_iv_variant_matches_default_machine(self, result):
        """cache_config=Table IV geometry == no cache_config at all."""
        default = HardwareScenarioSweep(["urban"], **TINY).run()
        assert _sweep_json(result.runs[0].sweep) == _sweep_json(default)

    def test_demand_bytes_are_geometry_invariant(self, result):
        """Geometry changes traffic between levels, never demand bytes."""
        rows = result.comparison_rows()
        assert rows[0]["base"]["bytes_loaded"] == rows[1]["base"]["bytes_loaded"]
        assert rows[0]["other"]["bytes_loaded"] == rows[1]["other"]["bytes_loaded"]

    def test_pooled_grid_identical_to_serial_grid(self):
        serial = CacheGeometrySweep(["table-iv", "l1-8k"], ["urban"],
                                    **TINY).run()
        pooled = CacheGeometrySweep(["table-iv", "l1-8k"], ["urban"],
                                    n_jobs=4, **TINY).run()
        for serial_run, pooled_run in zip(serial.runs, pooled.runs):
            assert serial_run.geometry == pooled_run.geometry
            assert _sweep_json(serial_run.sweep) == _sweep_json(pooled_run.sweep)

    def test_smaller_l1_moves_more_l1_fill_traffic(self):
        """The sensitivity direction: shrinking L1 inflates L2->L1 fills."""
        result = CacheGeometrySweep(
            ["l1-8k", "l1-128k"], ["urban"], n_frames=2, seed=7,
            n_beams=18, n_azimuth_steps=180, n_jobs=2).run()
        small, large = result.comparison_rows()
        assert small["base"]["l2_to_l1_bytes"] > large["base"]["l2_to_l1_bytes"]
        assert small["base"]["bytes_loaded"] == large["base"]["bytes_loaded"]

    def test_geometry_registry_shape(self):
        assert "table-iv" in geometry_names()
        reference = GEOMETRIES["table-iv"]
        cpu = reference.cpu()
        assert cpu.l1d.size_bytes == 32 * 1024
        assert cpu.l2.size_bytes == 1024 * 1024
        shrunk = GEOMETRIES["l1-8k"].cpu()
        assert shrunk.l1d.size_bytes == 8 * 1024
        # Only the cache geometry moves; timing/energy constants stay put.
        assert shrunk.l1_hit_cycles == cpu.l1_hit_cycles
        assert shrunk.frequency_hz == cpu.frequency_hz

    def test_render_cache_sensitivity_lists_every_geometry(self, result):
        from repro.analysis import render_cache_sensitivity

        table = render_cache_sensitivity(result)
        assert "table-iv" in table and "l1-8k" in table
        assert "Cache-geometry sensitivity" in table


def test_sweep_task_is_picklable_and_pure():
    """One task run twice (any process) returns identical metrics."""
    import pickle

    task = SweepTask(scenario="urban", backend="bonsai-batched",
                     n_frames=2, seed=7, n_beams=10, n_azimuth_steps=90)
    clone = pickle.loads(pickle.dumps(task))
    first = run_sweep_task(task)
    second = run_sweep_task(clone)
    assert json.dumps(first.metrics, sort_keys=True, default=str) == \
        json.dumps(second.metrics, sort_keys=True, default=str)
