"""Tests of the project-native static analyzer (:mod:`repro.lint`).

Four layers:

* **Rule fixtures** — every registered rule has a ``<rule>_bad.py`` /
  ``<rule>_ok.py`` pair under ``tests/lint_fixtures/``; the bad one must
  trip exactly that rule, the clean one must not.  Fixtures are copied to a
  neutral directory first so they lint under the strict ``src`` path kind
  (in place, the ``tests`` path part would relax the src-only rules).
* **Suppression and baseline semantics** — inline ``disable=`` /
  ``disable-file=`` comments move findings to the visible ``suppressed``
  list; a baseline grandfathers old findings count-aware, so a *second*
  instance of a baselined finding still fails.
* **Self-lint** — the tier-1 gate: ``repro lint`` over the real tree is
  clean, and two runs render byte-identical reports.
* **Run-identity of campaign/serve artifacts** — the determinism facts the
  lint allowlists encode (seed-derived campaign dirs, uniqueness-only store
  names) hold at runtime.
"""

from __future__ import annotations

import json
import re
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Finding,
    LintReport,
    all_rules,
    get_rule,
    lint_file,
    load_baseline,
    register_rule,
    render_json,
    render_text,
    rule_names,
    run_lint,
    write_baseline,
)
from repro.lint.registry import Rule, _REGISTRY
from repro.lint.rules_determinism import (
    ENV_READ_ALLOWED,
    NONDETERMINISM_ALLOWED,
    WALLCLOCK_ALLOWED,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _lint_fixture(tmp_path: Path, fixture: str, rule: str):
    """Copy a fixture to neutral ground and lint it with one rule."""
    target = tmp_path / f"{fixture}.py"
    shutil.copy(FIXTURES / f"{fixture}.py", target)
    return lint_file(target, rules=all_rules([rule]))


# ----------------------------------------------------------------------
# Rule fixtures
# ----------------------------------------------------------------------
class TestRuleFixtures:
    def test_every_rule_has_a_fixture_pair(self):
        for rule in rule_names():
            stem = rule.replace("-", "_")
            assert (FIXTURES / f"{stem}_bad.py").is_file(), rule
            assert (FIXTURES / f"{stem}_ok.py").is_file(), rule

    @pytest.mark.parametrize("rule", rule_names())
    def test_bad_fixture_trips_the_rule(self, tmp_path, rule):
        findings, _ = _lint_fixture(tmp_path, rule.replace("-", "_") + "_bad",
                                    rule)
        assert findings, f"{rule} found nothing in its violating fixture"
        assert {f.rule for f in findings} == {rule}
        for finding in findings:
            assert finding.line > 0 and finding.col > 0
            assert finding.severity == get_rule(rule).severity

    @pytest.mark.parametrize("rule", rule_names())
    def test_ok_fixture_is_clean(self, tmp_path, rule):
        findings, suppressed = _lint_fixture(
            tmp_path, rule.replace("-", "_") + "_ok", rule)
        assert findings == [] and suppressed == []

    def test_fixture_dir_is_skipped_by_discovery(self):
        report = run_lint([Path("tests")] if (REPO / "tests").exists()
                          else [FIXTURES.parent])
        paths = {f.path for f in report.findings} | {
            f.path for f in report.suppressed}
        assert not any("lint_fixtures" in p for p in paths)


class TestRuleDetails:
    """Pinpoint checks beyond 'the fixture trips'."""

    def _one(self, tmp_path, source: str, rule: str):
        target = tmp_path / "snippet.py"
        target.write_text(source, encoding="utf-8")
        return lint_file(target, rules=all_rules([rule]))

    def test_seeded_default_rng_is_clean(self, tmp_path):
        findings, _ = self._one(
            tmp_path, "import numpy as np\nrng = np.random.default_rng(7)\n",
            "determinism-unseeded-rng")
        assert findings == []

    def test_import_alias_is_resolved(self, tmp_path):
        findings, _ = self._one(
            tmp_path, "import numpy.random as nr\nx = nr.rand(3)\n",
            "determinism-unseeded-rng")
        assert len(findings) == 1

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        findings, _ = self._one(
            tmp_path,
            "def merge(ids):\n    return [i for i in sorted(set(ids))]\n",
            "determinism-set-iteration")
        assert findings == []

    def test_thread_pool_closure_is_clean(self, tmp_path):
        findings, _ = self._one(
            tmp_path,
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run(items):\n"
            "    def stage(i):\n"
            "        return i\n"
            "    with ThreadPoolExecutor(2) as pool:\n"
            "        return list(pool.map(stage, items))\n",
            "mp-unpicklable-task")
        assert findings == []

    def test_broad_except_reraise_is_clean(self, tmp_path):
        findings, _ = self._one(
            tmp_path,
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    except Exception:\n"
            "        raise\n",
            "hygiene-broad-except")
        assert findings == []

    def test_global_resource_is_not_flagged(self, tmp_path):
        findings, _ = self._one(
            tmp_path,
            "from multiprocessing.shared_memory import SharedMemory\n"
            "_SEGMENT = None\n"
            "def init(size):\n"
            "    global _SEGMENT\n"
            "    _SEGMENT = SharedMemory(create=True, size=size)\n",
            "lifecycle-unclosed-resource")
        assert findings == []

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        findings, _ = lint_file(target)
        assert [f.rule for f in findings] == ["parse-error"]
        assert findings[0].severity == "error"

    def test_tests_kind_relaxes_src_only_rules(self, tmp_path):
        nested = tmp_path / "tests"
        nested.mkdir()
        target = nested / "test_thing.py"
        target.write_text("def test_x():\n    assert 1 + 1 == 2\n",
                          encoding="utf-8")
        findings, _ = lint_file(target)
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------
class TestSuppression:
    def test_inline_disable_moves_finding_to_suppressed(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()  "
            "# repro-lint: disable=determinism-wallclock -- test clock\n",
            encoding="utf-8")
        findings, suppressed = lint_file(target)
        assert findings == []
        assert [f.rule for f in suppressed] == ["determinism-wallclock"]

    def test_disable_only_silences_the_named_rule(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()  "
            "# repro-lint: disable=hygiene-broad-except\n",
            encoding="utf-8")
        findings, suppressed = lint_file(target)
        assert [f.rule for f in findings] == ["determinism-wallclock"]
        assert suppressed == []

    def test_file_level_disable(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text(
            "# repro-lint: disable-file=hygiene-assert-control-flow -- demo\n"
            "def guard(v):\n"
            "    assert v > 0\n"
            "    assert v < 10\n",
            encoding="utf-8")
        findings, suppressed = lint_file(target)
        assert findings == []
        assert len(suppressed) == 2

    def test_disable_accepts_a_comma_list(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text(
            "import time, os\n"
            "def stamp():\n"
            "    return time.time(), os.getenv('X')  "
            "# repro-lint: disable=determinism-wallclock,determinism-env-read\n",
            encoding="utf-8")
        findings, suppressed = lint_file(target)
        assert findings == []
        assert sorted(f.rule for f in suppressed) == [
            "determinism-env-read", "determinism-wallclock"]


class TestBaseline:
    def _violation(self, path: Path, n: int = 1) -> None:
        body = "".join(f"def guard{i}(v):\n    assert v > {i}\n"
                       for i in range(n))
        path.write_text(body, encoding="utf-8")

    def test_baseline_grandfathers_existing_findings(self, tmp_path):
        source = tmp_path / "legacy.py"
        self._violation(source)
        baseline_path = tmp_path / "baseline.json"
        first = run_lint([source])
        assert len(first.findings) == 1
        write_baseline(baseline_path, first.findings)
        again = run_lint([source], baseline=load_baseline(baseline_path))
        assert again.findings == [] and len(again.baselined) == 1
        assert again.ok

    def test_second_instance_of_baselined_finding_still_fails(self, tmp_path):
        source = tmp_path / "legacy.py"
        self._violation(source, n=1)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_lint([source]).findings)
        # Same fingerprint (rule, path, message), now twice: the baseline
        # absorbs one instance, the extra one is new and fails.
        source.write_text("def a(v):\n    assert v > 0\n"
                          "def b(v):\n    assert v > 0\n", encoding="utf-8")
        report = run_lint([source], baseline=load_baseline(baseline_path))
        assert len(report.baselined) == 1
        assert len(report.findings) == 1
        assert not report.ok

    def test_line_moves_do_not_invalidate_the_baseline(self, tmp_path):
        source = tmp_path / "legacy.py"
        source.write_text("def guard(v):\n    assert v > 0\n",
                          encoding="utf-8")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_lint([source]).findings)
        source.write_text("\n\n\ndef guard(v):\n    assert v > 0\n",
                          encoding="utf-8")
        report = run_lint([source], baseline=load_baseline(baseline_path))
        assert report.ok and len(report.baselined) == 1

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_duplicate_registration_is_rejected(self):
        class Duplicate(Rule):
            name = rule_names()[0]

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Duplicate)

    def test_bad_name_is_rejected(self):
        class BadName(Rule):
            name = "NoDashes"

        with pytest.raises(ValueError, match="<family>-<rule>"):
            register_rule(BadName)

    def test_bad_severity_is_rejected(self):
        class BadSeverity(Rule):
            name = "hygiene-test-severity"
            severity = "fatal"

        with pytest.raises(ValueError, match="severity"):
            register_rule(BadSeverity)

    def test_unknown_rule_error_lists_the_registry(self):
        with pytest.raises(KeyError, match="determinism-unseeded-rng"):
            get_rule("no-such-rule")

    def test_registered_rule_runs_and_unregisters_cleanly(self, tmp_path):
        import ast

        @register_rule
        class NoPrintRule(Rule):
            name = "hygiene-no-print"
            severity = "warning"
            rationale = "test rule"

            def check(self, module):
                for node in module.walk(ast.Call):
                    if module.full_name(node.func) == "print":
                        yield self.finding(module, node, "print() found")

        try:
            target = tmp_path / "snippet.py"
            target.write_text("print('hi')\n", encoding="utf-8")
            findings, _ = lint_file(target, rules=all_rules(["hygiene-no-print"]))
            assert [f.rule for f in findings] == ["hygiene-no-print"]
        finally:
            del _REGISTRY["hygiene-no-print"]

    def test_every_rule_declares_a_rationale(self):
        for name in rule_names():
            assert get_rule(name).rationale, name


# ----------------------------------------------------------------------
# Self-lint: the tier-1 gate
# ----------------------------------------------------------------------
class TestSelfLint:
    def test_src_tree_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO)
        report = run_lint([Path("src")])
        assert report.ok, render_text(report)

    def test_whole_tree_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO)
        report = run_lint([Path("src"), Path("tests"), Path("benchmarks"),
                           Path("examples")])
        assert report.ok, render_text(report)

    def test_two_runs_render_byte_identical_reports(self, monkeypatch):
        monkeypatch.chdir(REPO)
        first = render_json(run_lint([Path("src")]))
        second = render_json(run_lint([Path("src")]))
        assert first == second
        assert render_text(run_lint([Path("src")])) == render_text(
            run_lint([Path("src")]))

    def test_every_suppression_in_tree_carries_a_justification(self,
                                                               monkeypatch):
        from repro.lint.runner import _DISABLE_FILE_RE, _DISABLE_RE

        monkeypatch.chdir(REPO)
        justified = re.compile(r"repro-lint:\s*disable(?:-file)?="
                               r"[a-z0-9\-,\s]+(--|—)\s*\S")
        for path in sorted(Path("src").rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if _DISABLE_RE.search(line) or _DISABLE_FILE_RE.search(line):
                    assert justified.search(line), (
                        f"{path}:{lineno} suppression lacks a justification")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\ndef f():\n    return time.time()\n",
                          encoding="utf-8")
        assert main(["lint", str(target)]) == 1
        assert "determinism-wallclock" in capsys.readouterr().out

    def test_json_format_and_output_file(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        out = tmp_path / "report.json"
        assert main(["lint", str(target), "--format", "json",
                     "--output", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert payload["summary"]["errors"] == 1
        assert payload["findings"][0]["rule"] == "hygiene-mutable-default"
        assert json.loads(
            capsys.readouterr().out.split("\n", 1)[1]) == payload

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(target),
                     "--write-baseline", str(baseline)]) == 0
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_rule_selection(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import time\ndef f(x=[]):\n    return time.time()\n",
                          encoding="utf-8")
        assert main(["lint", str(target),
                     "--rule", "hygiene-broad-except"]) == 0
        assert main(["lint", str(target),
                     "--rule", "hygiene-mutable-default"]) == 1

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["lint", str(tmp_path / "nope")])


# ----------------------------------------------------------------------
# Determinism facts the allowlists encode (satellite: no wall-clock state
# in campaign dirs or serve store names)
# ----------------------------------------------------------------------
class TestAllowlistedFactsHold:
    def test_allowlists_name_real_modules(self):
        for table in (NONDETERMINISM_ALLOWED, WALLCLOCK_ALLOWED,
                      ENV_READ_ALLOWED):
            for suffix, reason in table.items():
                assert (REPO / "src" / suffix).is_file(), suffix
                assert reason.strip(), suffix

    def test_campaign_result_dir_is_seed_derived(self, tmp_path):
        from repro.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(budget=1, seed=3, out_dir=tmp_path,
                                backends=("bonsai-batched",),
                                recorded=False, shrink=False)
        result = run_campaign(config)
        assert result.result_dir == tmp_path / "campaign-seed3"

    def test_store_names_embed_no_wallclock_state(self):
        import numpy as np

        from repro.serve import SharedCloudStore

        rng = np.random.default_rng(11)
        cloud = rng.uniform(-5.0, 5.0, (400, 3)).astype(np.float32)
        with SharedCloudStore.create(cloud) as store:
            # pid (hex) + secrets token: uniqueness sources only — no
            # timestamp component that would differ between identical runs.
            assert re.fullmatch(r"repro-store-[0-9a-f]+-[0-9a-f]{6}",
                                store.name)


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
class TestReport:
    def test_counts_split_severities(self):
        report = LintReport(findings=[
            Finding("determinism-wallclock", "error", "a.py", 1, 1, "m"),
            Finding("hygiene-broad-except", "warning", "a.py", 2, 1, "m"),
        ])
        assert report.counts() == {"errors": 1, "warnings": 1}
        assert not report.ok

    def test_findings_sort_stably(self):
        low = Finding("a-rule", "error", "a.py", 1, 1, "m")
        high = Finding("a-rule", "error", "b.py", 1, 1, "m")
        assert sorted([high, low], key=lambda f: f.sort_key) == [low, high]

    def test_render_includes_location_and_rule(self):
        finding = Finding("determinism-wallclock", "error", "a.py", 3, 7, "msg")
        assert finding.render() == "a.py:3:7: error [determinism-wallclock] msg"
