"""Tests of euclidean cluster extraction (baseline and Bonsai paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hwmodel.cache import HierarchyRecorder
from repro.perception import ClusterConfig, EuclideanClusterExtractor
from repro.pointcloud import PointCloud


def _two_blobs(rng, separation=10.0, n=40):
    a = rng.normal(0.0, 0.3, size=(n, 3))
    b = rng.normal(0.0, 0.3, size=(n, 3)) + np.array([separation, 0.0, 0.0])
    return PointCloud(np.vstack([a, b]).astype(np.float32))


class TestClustering:
    def test_two_separated_blobs_give_two_clusters(self, rng):
        cloud = _two_blobs(rng)
        extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=1.0, min_cluster_size=5))
        result = extractor.extract(cloud)
        assert result.n_clusters == 2
        sizes = sorted(c.size for c in result.clusters)
        assert sizes == [40, 40]

    def test_blobs_merge_when_tolerance_spans_gap(self, rng):
        cloud = _two_blobs(rng, separation=2.0)
        extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=3.0, min_cluster_size=5))
        result = extractor.extract(cloud)
        assert result.n_clusters == 1
        assert result.clusters[0].size == 80

    def test_min_cluster_size_filters_noise(self, rng):
        blob = rng.normal(0.0, 0.2, size=(30, 3))
        noise = np.array([[50.0, 50.0, 0.0], [-60.0, 40.0, 1.0]])
        cloud = PointCloud(np.vstack([blob, noise]).astype(np.float32))
        extractor = EuclideanClusterExtractor(ClusterConfig(tolerance=1.0, min_cluster_size=5))
        result = extractor.extract(cloud)
        assert result.n_clusters == 1
        labels = result.labels
        assert (labels == -1).sum() == 2

    def test_max_cluster_size_filters_giant_clusters(self, rng):
        cloud = _two_blobs(rng)
        extractor = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5, max_cluster_size=30)
        )
        assert extractor.extract(cloud).n_clusters == 0

    def test_every_point_in_at_most_one_cluster(self, rng):
        cloud = _two_blobs(rng)
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=1)).extract(cloud)
        all_indices = [i for cluster in result.clusters for i in cluster.indices]
        assert len(all_indices) == len(set(all_indices))

    def test_cluster_geometry(self, rng):
        cloud = _two_blobs(rng)
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5)).extract(cloud)
        centroids_x = sorted(c.centroid[0] for c in result.clusters)
        assert centroids_x[0] == pytest.approx(0.0, abs=0.3)
        assert centroids_x[1] == pytest.approx(10.0, abs=0.3)
        for cluster in result.clusters:
            assert cluster.bbox.volume < 50.0

    def test_empty_cloud(self):
        result = EuclideanClusterExtractor().extract(PointCloud())
        assert result.n_clusters == 0
        assert result.n_points == 0

    def test_search_stats_populated(self, rng):
        cloud = _two_blobs(rng)
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5)).extract(cloud)
        assert result.search_stats.queries == len(cloud)
        assert result.search_stats.points_examined > 0


class TestBonsaiEquivalence:
    def test_same_clusters_with_bonsai(self, rng):
        cloud = _two_blobs(rng)
        config = ClusterConfig(tolerance=1.0, min_cluster_size=5)
        baseline = EuclideanClusterExtractor(config, use_bonsai=False).extract(cloud)
        bonsai = EuclideanClusterExtractor(config, use_bonsai=True).extract(cloud)
        assert baseline.n_clusters == bonsai.n_clusters
        for a, b in zip(baseline.clusters, bonsai.clusters):
            assert a.indices == b.indices

    def test_same_clusters_on_lidar_frame(self, filtered_frame):
        config = ClusterConfig(tolerance=0.6, min_cluster_size=5)
        baseline = EuclideanClusterExtractor(config, use_bonsai=False).extract(filtered_frame)
        bonsai = EuclideanClusterExtractor(config, use_bonsai=True).extract(filtered_frame)
        assert baseline.n_clusters == bonsai.n_clusters
        np.testing.assert_array_equal(baseline.labels, bonsai.labels)

    def test_bonsai_stats_available(self, rng):
        cloud = _two_blobs(rng)
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5), use_bonsai=True).extract(cloud)
        assert result.bonsai is not None
        assert result.bonsai.bonsai_stats.points_classified > 0

    def test_recorder_wired_through(self, rng):
        cloud = _two_blobs(rng)
        recorder = HierarchyRecorder()
        EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5),
            use_bonsai=False, recorder=recorder,
        ).extract(cloud)
        assert recorder.stats.l1_accesses > 0


class TestClusterResultLabels:
    def test_labels_shape_and_values(self, rng):
        cloud = _two_blobs(rng)
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=1.0, min_cluster_size=5)).extract(cloud)
        labels = result.labels
        assert labels.shape == (len(cloud),)
        assert set(np.unique(labels)) <= {-1, 0, 1}
