"""Degenerate-input contracts: empty clouds, single points, one-leaf trees.

The build / batch-query / clustering / compression stack must either handle
degenerate inputs correctly or reject them with a clear ``ValueError`` —
never crash with an internal error.  These tests pin down the contract for
every such boundary the pipeline can reach, including the systematic
frame-sub-sampling helper's degenerate ranges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bonsai_search import BonsaiRadiusSearch
from repro.hwmodel.cache import HierarchyRecorder
from repro.kdtree import (
    KDTreeConfig,
    SearchStats,
    build_kdtree,
    nearest_neighbors,
    radius_search,
)
from repro.perception import ClusterConfig, EuclideanClusterExtractor, label_clusters
from repro.pointcloud import PointCloud, preprocess_for_clustering, systematic_subsample
from repro.runtime import BonsaiBatchSearcher, batch_knn, batch_radius_search
from repro.workloads import EuclideanClusterPipeline


class TestEmptyClouds:
    def test_preprocess_chain_keeps_empty_empty(self):
        filtered = preprocess_for_clustering(PointCloud())
        assert filtered.is_empty

    def test_build_kdtree_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            build_kdtree(PointCloud())

    def test_extract_on_empty_cloud(self):
        result = EuclideanClusterExtractor().extract(PointCloud())
        assert result.n_clusters == 0
        assert result.n_points == 0
        assert result.search_stats.queries == 0
        assert result.labels.shape == (0,)

    def test_extract_on_empty_cloud_with_recorder(self):
        result = EuclideanClusterExtractor(
            recorder=HierarchyRecorder()).extract(PointCloud())
        assert result.n_clusters == 0

    def test_pipeline_rejects_frame_that_filters_to_nothing(self):
        # A frame of pure ground returns is entirely removed by
        # pre-processing; the cost model cannot price an empty kernel.
        ground = PointCloud(np.column_stack([
            np.linspace(-20, 20, 400), np.linspace(-5, 5, 400),
            np.full(400, -1.8),
        ]).astype(np.float32))
        with pytest.raises(ValueError, match="removed every point"):
            EuclideanClusterPipeline().run_frame(ground)

    def test_label_clusters_on_no_clusters(self):
        assert label_clusters(PointCloud(), []) == []


class TestSinglePointClouds:
    @pytest.fixture(scope="class")
    def one(self):
        return build_kdtree(np.array([[1.0, -2.0, 0.5]], dtype=np.float32))

    def test_radius_search_finds_the_point(self, one):
        assert radius_search(one, [1.0, -2.0, 0.5], 0.1) == [0]
        batch = batch_radius_search(one, [[1.0, -2.0, 0.5], [50.0, 0.0, 0.0]], 0.1)
        assert batch.as_lists() == [[0], []]

    def test_knn_pads_beyond_tree_size(self, one):
        result = batch_knn(one, [[0.0, 0.0, 0.0]], k=4)
        assert result.indices.shape == (1, 1)
        assert result.as_lists()[0] == nearest_neighbors(one, [0.0, 0.0, 0.0], 4)

    def test_bonsai_parity_on_single_point(self, one):
        queries = np.array([[1.0, -2.0, 0.5], [2.0, -2.0, 0.5]])
        bonsai = BonsaiBatchSearcher(one).radius_search(queries, 1.5)
        baseline = batch_radius_search(one, queries, 1.5)
        assert bonsai.as_lists() == baseline.as_lists()
        assert bonsai.as_lists() == [sorted(BonsaiRadiusSearch(one).search(q, 1.5))
                                     for q in queries]

    def test_clustering_single_point(self):
        cloud = PointCloud([[0.0, 0.0, 0.0]])
        kept = EuclideanClusterExtractor(
            ClusterConfig(min_cluster_size=1)).extract(cloud)
        assert kept.n_clusters == 1
        assert kept.clusters[0].indices == [0]
        dropped = EuclideanClusterExtractor(
            ClusterConfig(min_cluster_size=2)).extract(cloud)
        assert dropped.n_clusters == 0

    def test_degenerate_detection_is_unknown(self):
        cloud = PointCloud([[0.0, 0.0, 0.0]])
        result = EuclideanClusterExtractor(
            ClusterConfig(min_cluster_size=1)).extract(cloud)
        detections = label_clusters(cloud, result.clusters)
        assert detections[0].label == "unknown"
        assert detections[0].footprint_area == 0.0


class TestOneLeafTrees:
    """Trees whose root is the only leaf (max_leaf_size >= n_points)."""

    @pytest.fixture(scope="class")
    def flat(self):
        points = np.random.default_rng(42).uniform(-2, 2, (12, 3)).astype(np.float32)
        tree = build_kdtree(points, KDTreeConfig(max_leaf_size=64))
        assert tree.root.is_leaf and tree.n_leaves == 1
        return tree, points

    def test_radius_parity(self, flat):
        tree, points = flat
        single_stats, batch_stats = SearchStats(), SearchStats()
        single = [sorted(radius_search(tree, q, 1.0, stats=single_stats))
                  for q in points]
        batch = batch_radius_search(tree, points, 1.0, stats=batch_stats)
        assert batch.as_lists() == single
        assert batch_stats.leaves_visited == single_stats.leaves_visited == len(points)
        assert batch_stats.interior_visited == 0

    def test_knn_parity(self, flat):
        tree, points = flat
        batch = batch_knn(tree, points, k=5).as_lists()
        for query, got in zip(points, batch):
            expected = nearest_neighbors(tree, query, 5)
            assert [i for i, _ in expected] == [i for i, _ in got]

    def test_bonsai_parity(self, flat):
        tree, points = flat
        bonsai = BonsaiBatchSearcher(tree).radius_search(points, 1.0)
        assert bonsai.as_lists() == batch_radius_search(tree, points, 1.0).as_lists()

    def test_clustering_with_one_leaf(self, flat):
        _, points = flat
        result = EuclideanClusterExtractor(
            ClusterConfig(tolerance=10.0, min_cluster_size=1, max_leaf_size=64)
        ).extract(PointCloud(points))
        # Everything is within tolerance of everything: one cluster.
        assert result.n_clusters == 1
        assert sorted(result.clusters[0].indices) == list(range(len(points)))
        assert result.tree.n_leaves == 1


class TestIdenticalPoints:
    """All points at the same coordinate: zero spread in every leaf."""

    def test_build_and_search(self):
        same = np.full((20, 3), 3.25, dtype=np.float32)
        tree = build_kdtree(same, KDTreeConfig(max_leaf_size=5))
        tree.validate()
        batch = batch_radius_search(tree, same[:3], 0.1)
        assert batch.as_lists() == [list(range(20))] * 3

    def test_bonsai_on_zero_spread_leaves(self):
        same = PointCloud(np.full((20, 3), 3.25, dtype=np.float32))
        result = EuclideanClusterExtractor(
            ClusterConfig(min_cluster_size=1), use_bonsai=True).extract(same)
        assert result.n_clusters == 1


class TestSystematicSubsampleDegenerateRanges:
    def test_exact_full_coverage(self):
        assert systematic_subsample(6, 3, 2) == [0, 1, 2, 3, 4, 5]

    def test_single_frame_sequence(self):
        assert systematic_subsample(1, 1, 1) == [0]

    def test_indices_sorted_unique_and_in_range(self):
        indices = systematic_subsample(10, 3, 3)
        assert indices == sorted(set(indices))
        assert all(0 <= i < 10 for i in indices)
        assert len(indices) <= 9

    def test_non_positive_parameters_rejected(self):
        for n_samples, sample_length in ((0, 1), (1, 0), (-1, 2), (2, -2)):
            with pytest.raises(ValueError, match="positive"):
                systematic_subsample(10, n_samples, sample_length)

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError, match="cannot draw"):
            systematic_subsample(5, 2, 3)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="cannot draw"):
            systematic_subsample(0, 1, 1)
