"""Tests of the procedural scenes and the synthetic LiDAR model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import HDL64E_RANGE_M, Lidar, LidarConfig, SceneConfig, make_urban_scene
from repro.pointcloud.scene import Box, Obstacle, Scene


class TestBox:
    def test_min_max(self):
        box = Box(center=(0, 0, 0), size=(2, 4, 6))
        np.testing.assert_allclose(box.minimum, [-1, -2, -3])
        np.testing.assert_allclose(box.maximum, [1, 2, 3])

    def test_translated(self):
        box = Box(center=(0, 0, 0), size=(1, 1, 1)).translated([5, 0, 0])
        np.testing.assert_allclose(box.center, [5, 0, 0])

    def test_surface_samples_on_surface(self):
        box = Box(center=(0, 0, 0), size=(2, 2, 2))
        rng = np.random.default_rng(0)
        samples = box.sample_surface(rng, 200)
        assert samples.shape == (200, 3)
        # Every sample lies on (at least) one face of the box.
        on_face = (
            np.isclose(np.abs(samples[:, 0]), 1.0)
            | np.isclose(np.abs(samples[:, 1]), 1.0)
            | np.isclose(samples[:, 2], 1.0)
        )
        assert on_face.all()


class TestObstacle:
    def test_static_obstacle_does_not_move(self):
        obstacle = Obstacle(Box(center=(1, 2, 3), size=(1, 1, 1)))
        np.testing.assert_allclose(obstacle.at_time(10.0).center, [1, 2, 3])

    def test_moving_obstacle_displaces_linearly(self):
        obstacle = Obstacle(Box(center=(0, 0, 0), size=(1, 1, 1)), velocity=(2.0, 0.0, 0.0))
        np.testing.assert_allclose(obstacle.at_time(3.0).center, [6, 0, 0])


class TestUrbanScene:
    def test_deterministic_for_same_seed(self):
        a = make_urban_scene(SceneConfig(seed=5))
        b = make_urban_scene(SceneConfig(seed=5))
        assert len(a.obstacles) == len(b.obstacles)
        np.testing.assert_allclose(a.obstacles[3].box.center, b.obstacles[3].box.center)

    def test_different_seed_differs(self):
        a = make_urban_scene(SceneConfig(seed=5))
        b = make_urban_scene(SceneConfig(seed=6))
        centers_a = np.array([o.box.center for o in a.obstacles])
        centers_b = np.array([o.box.center for o in b.obstacles])
        assert not np.allclose(centers_a, centers_b)

    def test_contains_expected_object_classes(self):
        scene = make_urban_scene(SceneConfig())
        labels = set(scene.labels())
        assert {"building", "vehicle", "pedestrian", "pole"} <= labels

    def test_object_counts_follow_config(self):
        config = SceneConfig(n_parked_vehicles=3, n_moving_vehicles=2, n_pedestrians=4)
        scene = make_urban_scene(config)
        assert scene.count_by_label("vehicle") == 5
        assert scene.count_by_label("pedestrian") == 4

    def test_boxes_at_time_moves_dynamic_actors(self):
        scene = make_urban_scene(SceneConfig())
        start = np.array([b.center for b in scene.boxes_at(0.0)])
        later = np.array([b.center for b in scene.boxes_at(5.0)])
        assert not np.allclose(start, later)


class TestLidar:
    def test_scan_produces_points(self, small_sequence):
        cloud = small_sequence.frame(0)
        assert len(cloud) > 1000

    def test_points_within_sensor_range(self, small_sequence):
        cloud = small_sequence.frame(0)
        assert cloud.max_range() <= HDL64E_RANGE_M + 1.0

    def test_min_range_respected(self):
        scene = make_urban_scene(SceneConfig(seed=2))
        lidar = Lidar(LidarConfig(n_beams=8, n_azimuth_steps=90, min_range=2.0,
                                  range_noise_std=0.0))
        cloud = lidar.scan(scene)
        distances = np.linalg.norm(cloud.points.astype(np.float64), axis=1)
        assert distances.min() >= 2.0 - 1e-6

    def test_deterministic_given_frame_index(self):
        scene = make_urban_scene(SceneConfig(seed=2))
        lidar = Lidar(LidarConfig(n_beams=8, n_azimuth_steps=90, seed=7))
        a = lidar.scan(scene, frame_index=3)
        b = lidar.scan(scene, frame_index=3)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_frame_index_changes_noise(self):
        scene = make_urban_scene(SceneConfig(seed=2))
        lidar = Lidar(LidarConfig(n_beams=8, n_azimuth_steps=90, seed=7))
        a = lidar.scan(scene, frame_index=0)
        b = lidar.scan(scene, frame_index=1)
        assert len(a) != len(b) or not np.allclose(a.points, b.points)

    def test_n_rays(self):
        lidar = Lidar(LidarConfig(n_beams=16, n_azimuth_steps=100))
        assert lidar.n_rays == 1600

    def test_ground_returns_present(self):
        scene = Scene(obstacles=[], ground_z=-1.8)
        lidar = Lidar(LidarConfig(n_beams=16, n_azimuth_steps=60, range_noise_std=0.0))
        cloud = lidar.scan(scene)
        assert len(cloud) > 0
        assert np.allclose(cloud.points[:, 2], -1.8, atol=1e-3)

    def test_box_occludes_ground(self):
        # A large wall in front of the sensor should produce returns closer
        # than the ground intersection along those rays.
        wall = Obstacle(Box(center=(5.0, 0.0, 0.0), size=(0.5, 20.0, 10.0), label="wall"))
        scene = Scene(obstacles=[wall], ground_z=-1.8)
        lidar = Lidar(LidarConfig(n_beams=16, n_azimuth_steps=180, range_noise_std=0.0,
                                  dropout_rate=0.0))
        cloud = lidar.scan(scene)
        forward = cloud.points[(np.abs(cloud.points[:, 1]) < 2.0) & (cloud.points[:, 0] > 0)]
        assert forward[:, 0].max() <= 5.5
