"""Tests of the batched query engine (:mod:`repro.runtime`).

The engine's contract is *exact parity*: batched radius and kNN queries must
return precisely what the per-query reference paths return, and the
``SearchStats`` counters must aggregate as if the queries had been issued one
by one (exactly for radius search, approximately for kNN, whose batched
traversal plans with a two-pass bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bonsai_search import BonsaiRadiusSearch
from repro.kdtree import (
    SearchStats,
    build_kdtree,
    nearest_neighbors,
    radius_search,
)
from repro.runtime import (
    BatchQueryEngine,
    BonsaiBatchSearcher,
    batch_knn,
    batch_radius_search,
)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(1234)
    # A mixture of a uniform background and a few dense blobs, so leaves see
    # both sparse and crowded neighbourhoods.
    background = rng.uniform(-10, 10, (1200, 3))
    blobs = [rng.normal(center, 0.4, (200, 3))
             for center in ((2.0, 1.0, 0.0), (-4.0, 3.0, 1.0), (5.0, -5.0, -1.0))]
    return np.vstack([background] + blobs).astype(np.float32)


@pytest.fixture(scope="module")
def tree(cloud):
    return build_kdtree(cloud)


@pytest.fixture(scope="module")
def queries(cloud):
    rng = np.random.default_rng(99)
    picks = cloud[rng.integers(0, len(cloud), 150)]
    return picks.astype(np.float64) + rng.normal(0.0, 0.5, picks.shape)


def _stats_tuple(stats: SearchStats):
    return (stats.queries, stats.leaves_visited, stats.interior_visited,
            stats.points_examined, stats.points_in_radius,
            stats.point_bytes_loaded)


class TestBatchRadiusParity:
    @pytest.mark.parametrize("radius", [0.05, 0.6, 2.5])
    def test_results_match_per_query(self, tree, queries, radius):
        single = [sorted(radius_search(tree, q, radius)) for q in queries]
        batch = batch_radius_search(tree, queries, radius)
        assert batch.as_lists() == single

    def test_stats_aggregate_exactly(self, tree, queries):
        single_stats = SearchStats()
        for q in queries:
            radius_search(tree, q, 0.8, stats=single_stats)
        batch_stats = SearchStats()
        batch_radius_search(tree, queries, 0.8, stats=batch_stats)
        assert _stats_tuple(batch_stats) == _stats_tuple(single_stats)
        assert batch_stats.leaf_visit_counts == single_stats.leaf_visit_counts

    def test_query_point_finds_itself(self, tree, cloud):
        result = batch_radius_search(tree, cloud[:20], 0.1)
        for i in range(20):
            assert i in result.indices_for(i)

    def test_csr_offsets_consistent(self, tree, queries):
        result = batch_radius_search(tree, queries, 0.8)
        assert result.offsets[0] == 0
        assert result.offsets[-1] == result.point_indices.shape[0]
        assert np.all(np.diff(result.offsets) == result.counts)
        assert result.total_matches == int(result.counts.sum())

    def test_zero_radius_rejected(self, tree, queries):
        with pytest.raises(ValueError):
            batch_radius_search(tree, queries, 0.0)
        with pytest.raises(ValueError):
            batch_radius_search(tree, queries, -1.0)

    def test_empty_query_batch(self, tree):
        stats = SearchStats()
        result = batch_radius_search(tree, np.empty((0, 3)), 1.0, stats=stats)
        assert result.n_queries == 0
        assert result.as_lists() == []
        assert stats.queries == 0
        assert stats.leaves_visited == 0

    def test_malformed_queries_rejected(self, tree):
        with pytest.raises(ValueError):
            batch_radius_search(tree, np.zeros((4, 2)), 1.0)


class TestBatchKNNParity:
    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_results_match_per_query(self, tree, queries, k):
        single = [nearest_neighbors(tree, q, k) for q in queries]
        batch = batch_knn(tree, queries, k).as_lists()
        for expected, got in zip(single, batch):
            assert [i for i, _ in expected] == [i for i, _ in got]
            assert [d for _, d in expected] == [d for _, d in got]

    def test_k_larger_than_tree(self, queries):
        small = build_kdtree(np.random.default_rng(3).uniform(-1, 1, (6, 3))
                             .astype(np.float32))
        result = batch_knn(small, queries[:5], k=50)
        assert result.indices.shape == (5, 6)
        for row in result.as_lists():
            assert len(row) == 6
        single = nearest_neighbors(small, queries[0], k=50)
        assert [i for i, _ in single] == [i for i, _ in result.as_lists()[0]]

    def test_invalid_k_rejected(self, tree, queries):
        with pytest.raises(ValueError):
            batch_knn(tree, queries, 0)

    def test_empty_query_batch(self, tree):
        stats = SearchStats()
        result = batch_knn(tree, np.empty((0, 3)), 3, stats=stats)
        assert result.n_queries == 0
        assert result.as_lists() == []
        assert stats.queries == 0

    def test_stats_populated(self, tree, queries):
        stats = SearchStats()
        batch_knn(tree, queries, 5, stats=stats)
        assert stats.queries == len(queries)
        assert stats.leaves_visited >= len(queries)
        assert stats.points_examined > 0


class TestBonsaiBatchParity:
    def test_matches_per_query_bonsai_and_baseline(self, tree, queries):
        per_query = BonsaiRadiusSearch(tree)
        single = [sorted(per_query.search(q, 0.8)) for q in queries]
        searcher = BonsaiBatchSearcher(tree)
        batch = searcher.radius_search(queries, 0.8)
        assert batch.as_lists() == single
        baseline = batch_radius_search(tree, queries, 0.8)
        assert batch.as_lists() == baseline.as_lists()

    def test_bonsai_stats_aggregate_exactly(self, tree, queries):
        per_query = BonsaiRadiusSearch(tree)
        for q in queries:
            per_query.search(q, 0.8)
        searcher = BonsaiBatchSearcher(tree)
        searcher.radius_search(queries, 0.8)
        expected = per_query.bonsai_stats
        got = searcher.bonsai_stats
        assert (got.leaf_visits, got.slices_loaded, got.compressed_bytes_loaded,
                got.points_classified, got.conclusive_in, got.conclusive_out,
                got.inconclusive, got.recompute_bytes_loaded) == \
               (expected.leaf_visits, expected.slices_loaded,
                expected.compressed_bytes_loaded, expected.points_classified,
                expected.conclusive_in, expected.conclusive_out,
                expected.inconclusive, expected.recompute_bytes_loaded)
        assert _stats_tuple(searcher.stats) == _stats_tuple(per_query.stats)

    def test_single_query_wrapper(self, tree, queries):
        searcher = BonsaiBatchSearcher(tree)
        assert searcher.search(queries[0], 0.8) == \
            sorted(radius_search(tree, queries[0], 0.8))


class TestSearchStatsAggregation:
    def test_note_leaf_visit_batch_equals_repeated_single(self):
        a, b = SearchStats(), SearchStats()
        for _ in range(7):
            a.note_leaf_visit(3)
        b.note_leaf_visit_batch(3, 7)
        assert a.leaves_visited == b.leaves_visited == 7
        assert a.leaf_visit_counts == b.leaf_visit_counts == {3: 7}

    def test_sub_batches_sum_to_full_batch(self, tree, queries):
        full = SearchStats()
        batch_radius_search(tree, queries, 0.8, stats=full)
        merged = SearchStats()
        for chunk in np.array_split(queries, 4):
            part = SearchStats()
            batch_radius_search(tree, chunk, 0.8, stats=part)
            merged.merge(part)
        assert _stats_tuple(merged) == _stats_tuple(full)
        assert merged.leaf_visit_counts == full.leaf_visit_counts

    def test_engine_accumulates_across_calls(self, tree, queries):
        engine = BatchQueryEngine(tree)
        engine.radius_search(queries[:50], 0.8)
        engine.radius_search(queries[50:], 0.8)
        assert engine.stats.queries == len(queries)
