"""Tests of the engine layer: registry, ExecutionConfig, facade, shims.

The parity of results across backends lives in ``test_backend_parity.py``;
this file covers the API surface itself — name registration and errors,
``ExecutionConfig`` resolution and validation, the ``PointCloudIndex``
facade's bookkeeping, the per-scenario execution/pipeline overrides, and the
removal of the pre-engine entry points (the deprecated spellings completed
their cycle and must now fail loudly).
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import pytest

import repro
from repro.engine import (
    ExecutionConfig,
    PointCloudIndex,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.registry import _REGISTRY as _BACKEND_REGISTRY
from repro.kdtree import build_kdtree
from repro.runtime import batch_knn, batch_radius_search
from repro.scenarios import get_scenario
from repro.scenarios.registry import _REGISTRY as _SCENARIO_REGISTRY
from repro.scenarios.registry import register_scenario
from repro.workloads import PipelineRunner, PipelineRunnerConfig


@pytest.fixture(scope="module")
def small_case():
    rng = np.random.default_rng(5)
    points = rng.uniform(-8.0, 8.0, (600, 3)).astype(np.float32)
    queries = points[:40].astype(np.float64) + rng.normal(0.0, 0.3, (40, 3))
    return build_kdtree(points), queries


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        names = backend_names()
        assert names == sorted(names)
        assert set(names) >= {"baseline-perquery", "baseline-batched",
                              "bonsai-perquery", "bonsai-batched"}

    def test_unknown_backend_lists_options(self, small_case):
        tree, _ = small_case
        with pytest.raises(KeyError, match="baseline-batched"):
            get_backend("warp-drive", tree)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("baseline-batched", lambda tree, **_: None)

    def test_malformed_names_rejected_at_registration(self):
        """Names must be '<flavor>-<strategy>' — the layer splits on it."""
        for bad in ("gpu", "Baseline-Batched", "baseline batched", "-batched"):
            with pytest.raises(ValueError, match="flavor"):
                register_backend(bad, lambda tree, **_: None)

    def test_custom_backend_registers_and_resolves(self, small_case):
        tree, queries = small_case
        name = "test-batched"
        register_backend(
            name, lambda t, **opts: get_backend("baseline-batched", t, **opts))
        try:
            assert name in backend_names()
            result = get_backend(name, tree).radius_search(queries, 0.5)
            reference = get_backend("baseline-batched", tree).radius_search(
                queries, 0.5)
            assert np.array_equal(result.point_indices, reference.point_indices)
        finally:
            _BACKEND_REGISTRY.pop(name)


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.backend == "baseline-batched"
        assert not config.hardware and not config.use_bonsai
        assert config.flavor == "baseline" and config.strategy == "batched"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionConfig(backend="baseline")

    def test_with_flavor_and_hardware(self):
        config = ExecutionConfig(backend="baseline-perquery")
        bonsai = config.with_flavor(True)
        assert bonsai.backend == "bonsai-perquery" and bonsai.use_bonsai
        assert config.with_flavor(False) == config
        assert config.with_hardware(True).hardware

    def test_make_backend_honours_hardware(self, small_case):
        tree, _ = small_case
        functional = ExecutionConfig(backend="bonsai-batched").make_backend(tree)
        assert functional.name == "bonsai-batched"
        hardware = ExecutionConfig(backend="bonsai-batched",
                                   hardware=True).make_backend(tree)
        assert hardware.name == "bonsai-perquery"
        assert hardware.recorder is not None

    def test_cache_config_reaches_the_recorder(self, small_case):
        from repro.hwmodel.cpu_config import TABLE_IV_CPU

        tree, _ = small_case
        tiny = replace(TABLE_IV_CPU, l1d=replace(TABLE_IV_CPU.l1d,
                                                 size_bytes=4096))
        config = ExecutionConfig(hardware=True, cache_config=tiny)
        backend = config.make_backend(tree)
        assert backend.recorder.hierarchy.l1.config.size_bytes == 4096
        # Without an override the stage's own machine wins.
        default = ExecutionConfig(hardware=True).make_recorder(TABLE_IV_CPU)
        assert default.hierarchy.l1.config.size_bytes == TABLE_IV_CPU.l1d.size_bytes

    def test_index_keys_recorded_backends_by_cpu(self, small_case):
        """Two recorded requests with different geometries must not share."""
        from repro.hwmodel.cpu_config import TABLE_IV_CPU

        tree, _ = small_case
        index = PointCloudIndex(tree)
        tiny = replace(TABLE_IV_CPU, l1d=replace(TABLE_IV_CPU.l1d,
                                                 size_bytes=1024))
        default = index.backend("baseline-batched", recorded=True)
        shrunk = index.backend("baseline-batched", recorded=True, cpu=tiny)
        assert default is not shrunk
        assert shrunk.recorder.hierarchy.l1.config.size_bytes == 1024
        assert default.recorder.hierarchy.l1.config.size_bytes == \
            TABLE_IV_CPU.l1d.size_bytes


class TestPointCloudIndex:
    def test_accepts_points_cloud_or_tree(self, small_case):
        tree, queries = small_case
        from_tree = PointCloudIndex(tree)
        from_points = PointCloudIndex(tree.points)
        assert from_tree.n_points == from_points.n_points == tree.n_points
        a = from_tree.radius_search(queries, 0.5)
        b = from_points.radius_search(queries, 0.5)
        assert np.array_equal(a.point_indices, b.point_indices)

    def test_backend_instances_are_cached(self, small_case):
        tree, _ = small_case
        index = PointCloudIndex(tree)
        assert index.backend("baseline-batched") is index.backend("baseline-batched")
        assert index.backend("baseline-batched") is not index.backend(
            "baseline-batched", recorded=True)

    def test_recorded_backend_merges_hierarchy_stats(self, small_case):
        tree, queries = small_case
        index = PointCloudIndex(tree)
        assert index.hierarchy_stats is None
        index.radius_search(queries, 0.5, recorded=True)
        merged = index.hierarchy_stats
        assert merged is not None and merged.l1_accesses > 0

    def test_bonsai_stats_merge_across_bonsai_backends(self, small_case):
        tree, queries = small_case
        index = PointCloudIndex(tree)
        assert index.bonsai_stats is None
        index.radius_search(queries, 0.5, backend="bonsai-batched")
        index.radius_search(queries, 0.5, backend="bonsai-perquery")
        merged = index.bonsai_stats
        assert merged is not None
        batched = index.backend("bonsai-batched").bonsai_stats
        perquery = index.backend("bonsai-perquery").bonsai_stats
        assert merged.leaf_visits == batched.leaf_visits + perquery.leaf_visits


class TestScenarioExecutionOverrides:
    """Worlds can pin their own backend and pipeline defaults."""

    @pytest.fixture()
    def pinned_scenario(self):
        name = "engine_test_world"
        urban = get_scenario("urban")
        register_scenario(
            name, "urban clone pinning bonsai + no localization",
            defaults=urban.defaults,
            execution=ExecutionConfig(backend="bonsai-batched"),
            pipeline_overrides={"localization": False,
                                "max_detection_extent": 9.0},
        )(urban.scene_factory)
        yield name
        _SCENARIO_REGISTRY.pop(name)

    def test_spec_defaults_flow_into_the_runner(self, pinned_scenario):
        runner = PipelineRunner.from_scenario(pinned_scenario, n_frames=2,
                                              n_beams=10, n_azimuth_steps=80)
        assert runner.config.execution.backend == "bonsai-batched"
        assert runner.config.localization is False
        assert runner.config.max_detection_extent == 9.0

    def test_explicit_config_wins_over_spec(self, pinned_scenario):
        config = PipelineRunnerConfig()
        runner = PipelineRunner.from_scenario(
            pinned_scenario, config=config, n_frames=2,
            n_beams=10, n_azimuth_steps=80)
        assert runner.config.execution.backend == "baseline-batched"
        assert runner.config.localization is True

    def test_explicit_backend_overrides_spec_execution(self, pinned_scenario):
        runner = PipelineRunner.from_scenario(
            pinned_scenario, backend="baseline-perquery", n_frames=2,
            n_beams=10, n_azimuth_steps=80)
        assert runner.config.execution.backend == "baseline-perquery"
        # The other spec overrides still apply.
        assert runner.config.localization is False


PRESET = dict(n_frames=2, seed=7, n_beams=10, n_azimuth_steps=80)


class TestRemovedEntryPoints:
    """The pre-engine spellings completed their soak and are gone.

    Gone means *loudly* gone — construction-time ``TypeError`` for the
    legacy config booleans, ``AttributeError``/``ImportError`` for the
    top-level shims — while the undeprecated ``repro.runtime`` spellings
    keep working without any warning.
    """

    def test_runner_config_legacy_flags_removed(self):
        with pytest.raises(TypeError):
            PipelineRunnerConfig(use_bonsai=True)
        with pytest.raises(TypeError):
            PipelineRunnerConfig(hardware=True)
        # No mirrored booleans either: the execution config is the one spelling.
        config = PipelineRunnerConfig()
        assert not hasattr(config, "use_bonsai")
        assert not hasattr(config, "hardware")
        assert config.execution == ExecutionConfig()

    def test_runner_config_replace_roundtrip_is_warning_free(self):
        config = PipelineRunnerConfig(
            execution=ExecutionConfig(backend="bonsai-batched"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            copy = replace(config, n_frames=3)
            swapped = replace(config, execution=ExecutionConfig(
                backend="baseline-perquery"))
        assert copy.execution == config.execution and copy.n_frames == 3
        assert swapped.execution.backend == "baseline-perquery"

    def test_top_level_shims_removed(self):
        for name in ("batch_radius_search", "batch_knn", "BonsaiRadiusSearch"):
            with pytest.raises(AttributeError):
                getattr(repro, name)
            assert name not in repro.__all__
            with pytest.raises(ImportError):
                exec(f"from repro import {name}")
        import importlib
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.engine.compat")

    def test_runtime_spellings_still_work_without_warning(self, small_case):
        """Removal targeted the top-level re-exports only: the batched
        engines stay first-class ``repro.runtime`` API."""
        tree, queries = small_case
        reference = get_backend("baseline-batched", tree)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            radius = batch_radius_search(tree, queries, 0.5)
            knn = batch_knn(tree, queries, 4)
        assert np.array_equal(radius.point_indices,
                              reference.radius_search(queries, 0.5).point_indices)
        assert np.array_equal(knn.indices, reference.knn(queries, 4).indices)

    def test_core_bonsai_class_still_importable(self, small_case):
        """The real class keeps living in repro.core; only the top-level
        deprecation shim is gone."""
        from repro.core.bonsai_search import BonsaiRadiusSearch

        tree, queries = small_case
        search = BonsaiRadiusSearch(build_kdtree(tree.points))
        assert sorted(search.search(queries[0], 0.5)) == \
            sorted(get_backend("baseline-batched", tree).search(queries[0], 0.5))
