"""Tests of the scenario registry and the built-in worlds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import DrivingSequence, Scene, SequenceConfig
from repro.pointcloud.scene import Box, Obstacle
from repro.scenarios import (
    ScenarioDefaults,
    all_scenarios,
    build_scene,
    build_sequence,
    get_scenario,
    register_scenario,
    scenario_names,
)

EXPECTED_SCENARIOS = {
    "urban", "highway", "parking_lot", "tunnel", "warehouse_indoor",
    "sparse_rural", "urban_heavy_noise", "rural_dropout",
}


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_names_sorted_and_match_specs(self):
        names = scenario_names()
        assert names == sorted(names)
        assert [spec.name for spec in all_scenarios()] == names

    def test_unknown_scenario_lists_options(self):
        with pytest.raises(KeyError, match="tunnel"):
            get_scenario("does_not_exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("urban", "a second urban")(lambda seed: None)

    def test_with_defaults_overrides_without_mutating(self):
        spec = get_scenario("urban")
        faster = spec.with_defaults(ego_speed_mps=20.0)
        assert faster.defaults.ego_speed_mps == 20.0
        assert spec.defaults.ego_speed_mps != 20.0
        assert faster.name == spec.name

    def test_every_spec_has_description_and_tags(self):
        for spec in all_scenarios():
            assert spec.description
            assert isinstance(spec.defaults, ScenarioDefaults)
            assert spec.tags


class TestWorlds:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_scene_builds_with_obstacles_and_path(self, name):
        scene = build_scene(name, seed=3)
        assert isinstance(scene, Scene)
        assert len(scene.obstacles) > 10
        assert scene.path_length is not None and scene.path_length > 0
        assert scene.ground_z == pytest.approx(-1.8)

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_scene_factory_is_deterministic(self, name):
        a = build_scene(name, seed=9)
        b = build_scene(name, seed=9)
        assert len(a.obstacles) == len(b.obstacles)
        for oa, ob in zip(a.obstacles, b.obstacles):
            assert oa.box.center == ob.box.center
            assert oa.box.size == ob.box.size
            assert oa.velocity == ob.velocity

    def test_different_seeds_differ(self):
        a = build_scene("highway", seed=1)
        b = build_scene("highway", seed=2)
        centers_a = [o.box.center for o in a.obstacles]
        centers_b = [o.box.center for o in b.obstacles]
        assert centers_a != centers_b

    def test_variants_share_world_but_degrade_sensor(self):
        base = get_scenario("sparse_rural")
        variant = get_scenario("rural_dropout")
        scene_a = base.scene(seed=4)
        scene_b = variant.scene(seed=4)
        assert [o.box.center for o in scene_a.obstacles] == \
            [o.box.center for o in scene_b.obstacles]
        assert variant.defaults.dropout_rate > base.defaults.dropout_rate

    def test_noise_variant_produces_noisier_frames(self):
        clean = build_sequence("urban", n_frames=1, seed=7,
                               n_beams=14, n_azimuth_steps=120)
        noisy = build_sequence("urban_heavy_noise", n_frames=1, seed=7,
                               n_beams=14, n_azimuth_steps=120)
        assert not np.array_equal(clean.frame(0).points, noisy.frame(0).points)


class TestSequences:
    def test_sequence_is_deterministic(self):
        a = build_sequence("tunnel", n_frames=2, seed=5, n_beams=12,
                           n_azimuth_steps=90)
        b = build_sequence("tunnel", n_frames=2, seed=5, n_beams=12,
                           n_azimuth_steps=90)
        np.testing.assert_array_equal(a.frame(1).points, b.frame(1).points)

    def test_sequence_overrides_apply(self):
        sequence = build_sequence("highway", n_frames=3, n_beams=8,
                                  n_azimuth_steps=64, ego_speed_mps=30.0)
        assert len(sequence) == 3
        assert sequence.lidar.n_rays == 8 * 64
        assert sequence.config.ego_speed_mps == 30.0

    def test_ego_position_wraps_on_scene_path_length(self):
        sequence = build_sequence("parking_lot", n_frames=40, seed=2,
                                  n_beams=8, n_azimuth_steps=64,
                                  ego_speed_mps=20.0)
        length = sequence.path_length
        positions = [sequence.ego_position(i)[0] for i in range(len(sequence))]
        assert all(-0.5 * length <= x <= 0.5 * length for x in positions)
        # The lot is short enough that a 40-frame drive must wrap.
        assert positions[-1] < max(positions)

    def test_custom_scene_injection(self):
        scene = Scene([Obstacle(Box(center=(5.0, 0.0, 0.0), size=(2.0, 2.0, 2.0)))],
                      path_length=50.0)
        sequence = DrivingSequence(SequenceConfig(n_frames=2), scene=scene)
        assert sequence.scene is scene
        assert sequence.path_length == 50.0
        assert len(sequence.frame(0)) > 0

    def test_default_sequence_still_urban(self):
        sequence = DrivingSequence(SequenceConfig(n_frames=1))
        assert sequence.scene.count_by_label("building") > 0
        assert sequence.path_length == sequence.config.scene.road_length
