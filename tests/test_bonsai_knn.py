"""Tests of the compressed k-nearest-neighbour extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BonsaiNearestNeighbors
from repro.kdtree import build_kdtree, nearest_neighbors


class TestEquivalence:
    def test_matches_baseline_on_frame(self, filtered_frame):
        tree = build_kdtree(filtered_frame)
        knn = BonsaiNearestNeighbors(tree)
        for i in range(0, len(filtered_frame), 151):
            query = filtered_frame[i]
            expected = nearest_neighbors(tree, query, k=5)
            got = knn.search(query, k=5)
            np.testing.assert_allclose([d for _, d in got], [d for _, d in expected],
                                       rtol=1e-12, atol=1e-12)

    def test_matches_baseline_various_k(self, random_cloud):
        tree = build_kdtree(random_cloud)
        knn = BonsaiNearestNeighbors(tree)
        for k in (1, 3, 10, 40):
            for i in range(0, len(random_cloud), 211):
                query = random_cloud[i]
                expected = nearest_neighbors(tree, query, k=k)
                got = knn.search(query, k=k)
                np.testing.assert_allclose([d for _, d in got], [d for _, d in expected],
                                           rtol=1e-12, atol=1e-12)

    def test_query_outside_cloud(self, random_cloud):
        tree = build_kdtree(random_cloud)
        knn = BonsaiNearestNeighbors(tree)
        query = [200.0, 200.0, 50.0]
        expected = nearest_neighbors(tree, query, k=3)
        got = knn.search(query, k=3)
        np.testing.assert_allclose([d for _, d in got], [d for _, d in expected])

    def test_invalid_arguments(self, random_cloud):
        knn = BonsaiNearestNeighbors(build_kdtree(random_cloud))
        with pytest.raises(ValueError):
            knn.search([0, 0, 0], k=0)
        with pytest.raises(ValueError):
            knn.search([0, 0], k=1)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_points=st.integers(min_value=3, max_value=150),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed, n_points, k):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-40, 40, size=(max(1, n_points // 15), 3))
        points = np.vstack([
            centers[i % centers.shape[0]] + rng.normal(0, 0.5, size=3)
            for i in range(n_points)
        ]).astype(np.float32)
        tree = build_kdtree(points)
        knn = BonsaiNearestNeighbors(tree)
        query = rng.uniform(-45, 45, size=3)
        expected = nearest_neighbors(tree, query, k=k)
        got = knn.search(query, k=k)
        np.testing.assert_allclose([d for _, d in got], [d for _, d in expected],
                                   rtol=1e-12, atol=1e-12)


class TestFetchAvoidance:
    def test_lower_bound_skips_most_exact_fetches(self, filtered_frame):
        """The point of the extension: most screened points never need 32-bit."""
        tree = build_kdtree(filtered_frame)
        knn = BonsaiNearestNeighbors(tree)
        for i in range(0, len(filtered_frame), 29):
            knn.search(filtered_frame[i], k=5)
        assert knn.stats.points_screened > 0
        assert knn.stats.fetch_rate < 0.7
        assert knn.stats.exact_bytes_loaded < knn.stats.points_screened * 16

    def test_stats_accumulate(self, random_cloud):
        tree = build_kdtree(random_cloud)
        knn = BonsaiNearestNeighbors(tree)
        knn.search(random_cloud[0], k=3)
        knn.search(random_cloud[1], k=3)
        assert knn.stats.queries == 2
        assert knn.stats.leaves_visited >= 2
        assert knn.stats.compressed_bytes_loaded > 0

    def test_empty_stats_fetch_rate(self, random_cloud):
        knn = BonsaiNearestNeighbors(build_kdtree(random_cloud))
        assert knn.stats.fetch_rate == 0.0
