"""Clean counterpart: configuration threads through explicit parameters."""


def chunk_size(fast_mode, chunk=256):
    if fast_mode:
        return 16
    return chunk
