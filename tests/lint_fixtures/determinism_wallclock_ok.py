"""Clean counterpart: timestamps arrive as explicit parameters."""


def stamp_result(value, at):
    return {"value": value, "at": at}
