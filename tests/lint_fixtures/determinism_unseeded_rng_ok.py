"""Clean counterpart: every draw flows from an explicit seed."""
import numpy as np


def sample(points, seed):
    rng = np.random.default_rng(seed)
    jitter = rng.normal(0.0, 1.0, len(points))
    order = rng.permutation(len(points))
    return jitter, order
