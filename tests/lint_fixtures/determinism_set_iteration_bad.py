"""Seeded violation: set iteration order feeding ordered results."""


def merge(ids, more):
    out = []
    for item in set(ids):
        out.append(item)
    out.extend(x * 2 for x in {1, 2, 3})
    return out + list(frozenset(more))
