"""Seeded violation: environment reads steering result-affecting code."""
import os


def chunk_size():
    if os.getenv("FAST_MODE"):
        return 16
    return int(os.environ.get("CHUNK", "256"))
