"""Seeded violation: constructed resources never released."""
from multiprocessing.shared_memory import SharedMemory

from repro.engine import PointCloudIndex


def leak_segment(size):
    shm = SharedMemory(create=True, size=size)
    return shm.size


def leak_index(cloud, query, radius):
    index = PointCloudIndex(cloud)
    return index.backend("baseline-perquery").search(query, radius)


def discard_index(cloud):
    PointCloudIndex(cloud)
