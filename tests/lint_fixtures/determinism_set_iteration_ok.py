"""Clean counterpart: sets are sorted before order matters."""


def merge(ids, more):
    out = []
    for item in sorted(set(ids)):
        out.append(item)
    out.extend(x * 2 for x in sorted({1, 2, 3}))
    return out + sorted(frozenset(more))
