"""Clean counterpart: narrow types, bound names, or re-raises."""


def narrow(task):
    try:
        return task()
    except ValueError:
        return None


def bound(task):
    try:
        return task()
    except Exception as exc:
        return exc


def reraised(task, cleanup):
    try:
        return task()
    except Exception:
        cleanup()
        raise
