"""Seeded violation: mutable default arguments."""
from collections import defaultdict


def collect(item, seen=[]):
    seen.append(item)
    return seen


def tally(key, counts={}, *, groups=defaultdict(list)):
    counts[key] = counts.get(key, 0) + 1
    groups[key].append(key)
    return counts, groups
