"""Seeded violation: unseeded and global-state RNG calls."""
import random

import numpy as np


def sample(points):
    rng = np.random.default_rng()
    jitter = np.random.normal(0.0, 1.0, len(points))
    random.shuffle(points)
    return rng, jitter, points
