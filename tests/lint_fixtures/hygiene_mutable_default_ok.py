"""Clean counterpart: None defaults, objects created per call."""


def collect(item, seen=None):
    seen = [] if seen is None else seen
    seen.append(item)
    return seen


def tally(key, counts=None):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts
