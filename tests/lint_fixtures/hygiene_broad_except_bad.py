"""Seeded violation: bare and silently swallowing except blocks."""


def swallow_everything(task):
    try:
        return task()
    except:
        return None


def swallow_broad(task):
    try:
        return task()
    except Exception:
        pass
