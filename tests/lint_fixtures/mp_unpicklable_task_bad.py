"""Seeded violation: closures handed to process pools."""
from multiprocessing import get_context


def run(items):
    def work(item):
        return item * 2

    ctx = get_context("spawn")
    with ctx.Pool(2) as pool:
        doubled = pool.map(work, items)
        shifted = pool.map(lambda item: item + 1, items)
    return doubled, shifted
