"""Clean counterpart: explicit exception for the runtime guard."""


def guard(value):
    if value <= 0:
        raise ValueError("value must be positive")
    return value
