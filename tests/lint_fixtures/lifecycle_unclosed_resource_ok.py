"""Clean counterpart: scoped with `with`, closed in finally, or escaping."""
from multiprocessing.shared_memory import SharedMemory

from repro.engine import PointCloudIndex


def scoped(cloud, query, radius):
    with PointCloudIndex(cloud) as index:
        return index.backend("baseline-perquery").search(query, radius)


def closed_on_exit(size):
    shm = SharedMemory(create=True, size=size)
    try:
        return shm.size
    finally:
        shm.close()


def ownership_transferred(cloud):
    return PointCloudIndex(cloud)
