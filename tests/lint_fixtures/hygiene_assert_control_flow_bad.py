"""Seeded violation: assert as a runtime guard."""


def guard(value):
    assert value > 0, "value must be positive"
    return value
