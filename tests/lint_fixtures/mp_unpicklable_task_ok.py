"""Clean counterpart: module-level tasks for processes, closures for threads."""
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_context


def work(item):
    return item * 2


def run(items):
    ctx = get_context("spawn")
    with ctx.Pool(2) as pool:
        doubled = pool.map(work, items)
    offset = 1

    def shift(item):
        return item + offset

    with ThreadPoolExecutor(max_workers=2) as threads:
        shifted = list(threads.map(shift, items))
    return doubled, shifted
