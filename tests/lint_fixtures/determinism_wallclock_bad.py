"""Seeded violation: wall-clock reads folded into a result."""
import time
from datetime import datetime


def stamp_result(value):
    return {"value": value, "at": time.time(),
            "elapsed": time.perf_counter(),
            "when": datetime.now()}
