"""Text tables and trend records stay in sync.

The benchmark scripts render human-readable ``benchmarks/results/*.txt``
tables and — with ``REPRO_TRENDS_DIR`` set — merge the *same* result object
into the trend store through :mod:`repro.trends.collect`.  This suite runs
one small hardware matrix, renders the table exactly as the bench does, and
parses the rendered rows back against the collected records: every demand-
and DRAM-byte figure in the text must equal the corresponding record
metric.  A collector that drifted from the renderer (or vice versa) fails
here, not in a post-merge CI surprise.
"""

from __future__ import annotations

import re

import pytest

from repro.analysis import HardwareScenarioSweep, render_hw_matrix
from repro.trends import TrendStore, collect_hw_sweep, maybe_record

#: Same sensor preset the parallel-sweep equality tests use: fast, still
#: exercises clustering + localization on both backends.
TINY = dict(n_frames=2, seed=7, n_beams=10, n_azimuth_steps=90)
SCENARIOS = ["urban", "tunnel"]


@pytest.fixture(scope="module")
def sweep_result():
    return HardwareScenarioSweep(SCENARIOS, **TINY).run()


def _parse_matrix_rows(text: str):
    """The rendered hw-matrix rows as (scenario, stage, ints-by-column).

    Mirrors :func:`repro.analysis.reporting.render_hw_matrix`'s layout:
    ``Scenario | Stage | ... | Demand B | Demand B (B) | Change |
    DRAM->L2 B | DRAM->L2 B (B) | ...`` with thousands separators.
    """
    lines = text.splitlines()
    header = next(line for line in lines if line.startswith("Scenario"))
    columns = [name.strip() for name in header.split("|")]
    rows = []
    for line in lines[lines.index(header) + 2:]:
        if "|" not in line:
            break
        values = [value.strip() for value in line.split("|")]
        row = dict(zip(columns, values))
        rows.append(row)
    assert rows, "no data rows parsed from the rendered matrix"
    return rows


def _as_int(cell: str) -> int:
    assert re.fullmatch(r"[0-9,]+", cell), cell
    return int(cell.replace(",", ""))


def test_rendered_matrix_rows_match_collected_records(sweep_result):
    text = render_hw_matrix(sweep_result)
    records = collect_hw_sweep(sweep_result, commit="sync", run_id="sync")
    by_cell = {(r.key["scenario"], r.key["backend"]): r for r in records}
    assert len(by_cell) == len(SCENARIOS) * 2

    rows = _parse_matrix_rows(text)
    assert len(rows) == len(SCENARIOS) * 2  # two stages per scenario
    for row in rows:
        scenario, stage = row["Scenario"], row["Stage"]
        baseline = by_cell[(scenario, "baseline-batched")]
        bonsai = by_cell[(scenario, "bonsai-batched")]
        assert _as_int(row["Demand B"]) == \
            baseline.metrics[f"hardware.{stage}.bytes_loaded"]
        assert _as_int(row["Demand B (B)"]) == \
            bonsai.metrics[f"hardware.{stage}.bytes_loaded"]
        assert _as_int(row["DRAM->L2 B"]) == \
            baseline.metrics[f"hardware.{stage}.dram_to_l2_bytes"]
        assert _as_int(row["DRAM->L2 B (B)"]) == \
            bonsai.metrics[f"hardware.{stage}.dram_to_l2_bytes"]


def test_bench_wiring_writes_text_and_records_from_one_result(sweep_result,
                                                              tmp_path):
    """The bench-script sequence — render to a file, maybe_record the same
    object — yields a store whose records carry exactly the rendered bytes'
    numbers, keyed by the environment-provided identity."""
    report = tmp_path / "scenario_hw_matrix.txt"
    report.write_text(render_hw_matrix(sweep_result) + "\n", encoding="utf-8")
    touched = maybe_record(
        lambda ctx: collect_hw_sweep(sweep_result, commit=ctx.commit,
                                     run_id=ctx.run_id, order=ctx.order),
        environ={"REPRO_TRENDS_DIR": str(tmp_path / "trends"),
                 "REPRO_TRENDS_COMMIT": "abc1234",
                 "REPRO_TRENDS_ORDER": "3"})
    assert touched == [tmp_path / "trends" / "scenario-hw.jsonl"]

    records = TrendStore(tmp_path / "trends").load("scenario-hw")
    assert {(r.commit, r.order) for r in records} == {("abc1234", 3)}
    rows = _parse_matrix_rows(report.read_text(encoding="utf-8"))
    demands = {(row["Scenario"], row["Stage"], _as_int(row["Demand B"]))
               for row in rows}
    recorded = {
        (r.key["scenario"], stage,
         r.metrics[f"hardware.{stage}.bytes_loaded"])
        for r in records if r.key["backend"] == "baseline-batched"
        for stage in ("clustering", "localization")}
    assert demands == recorded
