"""Tests of the worst-case error model (Eqs. 5-12) and shell classification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error_model import (
    Classification,
    PartErrorTable,
    ShellClassifier,
    approximate_squared_distance,
    classify_exact,
    classify_with_shell,
    max_delta,
    max_eps_sd,
    squared_difference_with_error,
)
from repro.core.floatfmt import BFLOAT16, FLOAT16

coords = st.floats(min_value=-120.0, max_value=120.0, allow_nan=False, allow_infinity=False)


class TestMaxDelta:
    def test_eq6_for_unit_binade(self):
        # Values in [1, 2): exponent 15 (biased), max error = 2^0 * 2^-11.
        assert max_delta(1.5) == pytest.approx(2.0 ** -11)

    def test_eq6_scales_with_exponent(self):
        assert max_delta(100.0) == pytest.approx(2.0 ** 6 * 2.0 ** -11)

    def test_other_format(self):
        # bfloat16 has 7 mantissa bits -> half ULP = 2^(e) * 2^-8.
        assert max_delta(1.5, BFLOAT16) == pytest.approx(2.0 ** -8)

    @given(value=coords)
    @settings(max_examples=200, deadline=None)
    def test_bounds_actual_conversion_error(self, value):
        reduced = FLOAT16.round_trip(value)
        assert abs(reduced - value) <= max_delta(reduced) + 1e-30


class TestEpsSd:
    def test_zero_when_operands_equal_and_exact(self):
        # a == b' and b' exactly representable: only the delta^2 term remains.
        eps = max_eps_sd(1.0, 1.0)
        assert eps == pytest.approx(max_delta(1.0) ** 2)

    def test_grows_with_distance(self):
        assert max_eps_sd(10.0, 1.0) > max_eps_sd(2.0, 1.0)

    @given(a=coords, b=coords)
    @settings(max_examples=300, deadline=None)
    def test_eq9_bounds_true_squared_difference_error(self, a, b):
        """The fundamental guarantee: |(a-b')^2 - (a-b)^2| <= max(eps_sd)."""
        b_reduced = FLOAT16.round_trip(b)
        true_sq = (a - b) ** 2
        approx_sq, eps = squared_difference_with_error(a, b_reduced)
        assert abs(approx_sq - true_sq) <= eps + 1e-12 * max(1.0, true_sq)


class TestApproximateDistance:
    @given(q=st.tuples(coords, coords, coords), p=st.tuples(coords, coords, coords))
    @settings(max_examples=300, deadline=None)
    def test_total_error_bounds_distance_error(self, q, p):
        p_reduced = [FLOAT16.round_trip(v) for v in p]
        d2_true = sum((a - b) ** 2 for a, b in zip(q, p))
        d2_approx, total_eps = approximate_squared_distance(q, p_reduced)
        assert abs(d2_approx - d2_true) <= total_eps + 1e-9 * max(1.0, d2_true)

    def test_exact_point_gives_small_error(self):
        q = (1.0, 2.0, 3.0)
        d2, eps = approximate_squared_distance(q, q)
        assert d2 == 0.0
        assert eps < 1e-5


class TestClassification:
    def test_classify_exact_boundary_is_inside(self):
        assert classify_exact(4.0, 4.0) is Classification.IN_RADIUS

    def test_classify_exact_outside(self):
        assert classify_exact(4.0001, 4.0) is Classification.NOT_IN_RADIUS

    def test_shell_inside(self):
        assert classify_with_shell(1.0, 4.0, 0.5) is Classification.IN_RADIUS

    def test_shell_outside(self):
        assert classify_with_shell(9.0, 4.0, 0.5) is Classification.NOT_IN_RADIUS

    def test_shell_inconclusive_low_side(self):
        assert classify_with_shell(3.8, 4.0, 0.5) is Classification.INCONCLUSIVE

    def test_shell_inconclusive_high_side(self):
        assert classify_with_shell(4.3, 4.0, 0.5) is Classification.INCONCLUSIVE

    @given(q=st.tuples(coords, coords, coords), p=st.tuples(coords, coords, coords),
           radius=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=300, deadline=None)
    def test_conclusive_shell_classification_matches_baseline(self, q, p, radius):
        """Eq. 12 guarantee: any conclusive outcome equals the 32-bit outcome."""
        p_reduced = [FLOAT16.round_trip(v) for v in p]
        r2 = radius * radius
        d2_true = sum((a - b) ** 2 for a, b in zip(q, p))
        d2_approx, total_eps = approximate_squared_distance(q, p_reduced)
        shell = classify_with_shell(d2_approx, r2, total_eps)
        exact = classify_exact(d2_true, r2)
        if shell is not Classification.INCONCLUSIVE:
            assert shell is exact


class TestPartErrorTable:
    def test_size_matches_exponent_space(self):
        assert len(PartErrorTable(FLOAT16)) == 32
        assert len(PartErrorTable(BFLOAT16)) == 256

    def test_lookup_matches_direct_formula(self):
        table = PartErrorTable(FLOAT16)
        value = 37.5
        bits = FLOAT16.encode(value)
        exponent = FLOAT16.biased_exponent(bits)
        two_delta, delta_sq = table.lookup(exponent)
        delta = max_delta(value)
        assert two_delta == pytest.approx(2 * delta)
        assert delta_sq == pytest.approx(delta * delta)

    def test_error_bound_matches_eq9(self):
        table = PartErrorTable(FLOAT16)
        a, b = 10.0, 7.3
        b_reduced = FLOAT16.round_trip(b)
        assert table.error_bound(a, b_reduced) == pytest.approx(max_eps_sd(a, b_reduced))

    def test_subnormal_exponent_uses_binade_one(self):
        table = PartErrorTable(FLOAT16)
        two_delta_0, _ = table.lookup(0)
        two_delta_1, _ = table.lookup(1)
        assert two_delta_0 == two_delta_1


class TestShellClassifier:
    def test_results_match_exact_classification(self, rng):
        classifier = ShellClassifier()
        r = 0.8
        r2 = r * r
        mismatches = 0
        for _ in range(500):
            q = rng.uniform(-50, 50, size=3)
            p = q + rng.normal(0.0, 0.6, size=3)
            p_reduced = [FLOAT16.round_trip(v) for v in p]
            expected = float(np.sum((q - p) ** 2)) <= r2
            got, _ = classifier.classify(q, p_reduced, p, r2)
            mismatches += int(got != expected)
        assert mismatches == 0

    def test_stats_accumulate(self, rng):
        classifier = ShellClassifier()
        r2 = 0.25
        for _ in range(50):
            q = rng.uniform(-10, 10, size=3)
            p = q + rng.normal(0.0, 0.3, size=3)
            classifier.classify(q, [FLOAT16.round_trip(v) for v in p], p, r2)
        stats = classifier.stats
        assert stats.total == 50
        assert stats.in_radius + stats.not_in_radius + stats.inconclusive == 50
        assert 0.0 <= stats.inconclusive_rate <= 1.0

    def test_inconclusive_rate_empty(self):
        assert ShellClassifier().stats.inconclusive_rate == 0.0
