"""Tests of the instruction-count cost model."""

from __future__ import annotations

import pytest

from repro.core.bonsai_search import BonsaiStats
from repro.isa import InstructionBudget, estimate_baseline, estimate_bonsai
from repro.kdtree import SearchStats


def _typical_stats():
    """Counters shaped like one frame of euclidean clustering."""
    search = SearchStats(
        queries=2000,
        leaves_visited=5000,
        interior_visited=16000,
        points_examined=70000,
        points_in_radius=30000,
    )
    bonsai = BonsaiStats(
        leaf_visits=5000,
        slices_loaded=21000,
        compressed_bytes_loaded=21000 * 16,
        points_classified=70000,
        conclusive_in=29900,
        conclusive_out=39960,
        inconclusive=140,
        recompute_bytes_loaded=140 * 16,
    )
    return search, bonsai


class TestEstimates:
    def test_baseline_counts_positive_and_consistent(self):
        search, _ = _typical_stats()
        estimate = estimate_baseline(search)
        assert estimate.instructions > 0
        assert estimate.loads > search.points_examined  # at least index+point loads
        assert estimate.stores > 0

    def test_bonsai_reduces_loads_and_instructions(self):
        search, bonsai = _typical_stats()
        base = estimate_baseline(search)
        new = estimate_bonsai(search, bonsai)
        assert new.loads < base.loads
        assert new.instructions < base.instructions

    def test_relative_change_signs_match_paper(self):
        """Figure 9a directions: fewer instructions, loads and stores."""
        search, bonsai = _typical_stats()
        rel = estimate_bonsai(search, bonsai).relative_to(estimate_baseline(search))
        assert rel["instructions"] < 0
        assert rel["loads"] < 0
        assert rel["stores"] < 0

    def test_loads_reduction_magnitude_reasonable(self):
        """The paper reports a 23% committed-load reduction for the extract
        kernel; the search-only reduction must therefore be at least that."""
        search, bonsai = _typical_stats()
        rel = estimate_bonsai(search, bonsai).relative_to(estimate_baseline(search))
        assert -0.9 < rel["loads"] < -0.2

    def test_recompute_penalty_increases_with_inconclusive(self):
        search, bonsai = _typical_stats()
        cheap = estimate_bonsai(search, bonsai)
        expensive_stats = BonsaiStats(**{**bonsai.__dict__, "inconclusive": 20000})
        expensive = estimate_bonsai(search, expensive_stats)
        assert expensive.instructions > cheap.instructions
        assert expensive.loads > cheap.loads

    def test_custom_budget_scales_linearly(self):
        search, _ = _typical_stats()
        default = estimate_baseline(search, InstructionBudget())
        doubled = estimate_baseline(
            search, InstructionBudget(baseline_per_point=30)
        )
        assert doubled.instructions > default.instructions

    def test_relative_to_zero_baseline(self):
        empty = estimate_baseline(SearchStats())
        rel = estimate_baseline(SearchStats()).relative_to(empty)
        assert rel == {"instructions": 0.0, "loads": 0.0, "stores": 0.0}
