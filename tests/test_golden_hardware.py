"""Golden snapshots of the hardware-in-the-loop pipeline metrics.

Every registered scenario runs end-to-end through
:class:`repro.workloads.PipelineRunner` with ``hardware=True`` — baseline and
Bonsai — and the per-stage trace-driven hardware metrics (miss counts and
ratios, bytes moved per hierarchy level, cycle/energy estimates) are compared
against JSON snapshots under ``tests/golden/``.  Integer counters must match
exactly (the cache simulation is deterministic); floats get the same tight
tolerances as the functional golden harness.

To regenerate after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_hardware.py --update-golden

The snapshots complement ``tests/test_golden_pipeline.py``: that file locks
the functional outcomes of the default (batched) path, this one locks the
memory-hierarchy behaviour of the recorded per-query path.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.analysis.hw_sweep import SWEEP_BACKENDS
from repro.engine import ExecutionConfig
from repro.scenarios import scenario_names
from repro.workloads import PipelineRunner, PipelineRunnerConfig

from goldens import GOLDEN_DIR, golden_path, mode_stem
from test_golden_pipeline import PRESET, _assert_matches

SCENARIOS = scenario_names()
BACKENDS = SWEEP_BACKENDS


@lru_cache(maxsize=None)
def _full_metrics(scenario: str, backend: str) -> dict:
    runner = PipelineRunner.from_scenario(
        scenario,
        config=PipelineRunnerConfig(
            execution=ExecutionConfig(backend=backend, hardware=True)),
        **PRESET,
    )
    return json.loads(json.dumps(runner.run().metrics()))


def _run_metrics(scenario: str, backend: str) -> dict:
    # The snapshot scope of this harness is the hardware section; the
    # functional metrics are already locked down (at identical values — see
    # test_hardware_mode_matches_functional_golden) by the pipeline goldens.
    metrics = _full_metrics(scenario, backend)
    return {
        "scenario": metrics["scenario"],
        "use_bonsai": metrics["use_bonsai"],
        "hardware": metrics["hardware"],
    }


def _golden_path(scenario: str, backend: str) -> Path:
    return golden_path("hardware", scenario, backend)


@pytest.mark.parametrize("backend", BACKENDS, ids=mode_stem)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_hardware_matches_golden(scenario, backend, request):
    metrics = _run_metrics(scenario, backend)
    path = _golden_path(scenario, backend)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"golden snapshot {path.name} missing; generate it with "
        f"`pytest {__file__} --update-golden`")
    golden = json.loads(path.read_text(encoding="utf-8"))
    _assert_matches(metrics, golden)


@pytest.mark.parametrize("backend", BACKENDS, ids=mode_stem)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_hardware_mode_matches_functional_golden(scenario, backend):
    """Hardware mode must not change any functional pipeline outcome.

    The per-query recorder path and the batched default path are required to
    produce identical clusters, tracks and localization results — in both
    search configurations — so the hardware run's functional metrics must
    satisfy the *same* golden snapshots as the batched run.  Only the
    ``model`` sub-dictionary is excluded: its time/energy figures
    deliberately use the recorded cache statistics in hardware mode instead
    of the analytic streaming fractions.
    """
    functional_path = golden_path("pipeline", scenario, backend)
    if not functional_path.exists():  # pragma: no cover - pipeline goldens exist
        pytest.skip("functional golden snapshots not generated yet")
    metrics = dict(_full_metrics(scenario, backend))
    metrics.pop("hardware")
    metrics.pop("model")
    golden = json.loads(functional_path.read_text(encoding="utf-8"))
    golden.pop("model")
    _assert_matches(metrics, golden)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_bonsai_moves_fewer_bytes_everywhere(scenario):
    """The paper's central claim, checked per scenario and per stage."""
    baseline = _run_metrics(scenario, "baseline-batched")["hardware"]
    bonsai = _run_metrics(scenario, "bonsai-batched")["hardware"]
    assert set(baseline) == {"clustering", "localization"}
    for stage in baseline:
        assert bonsai[stage]["bytes_loaded"] < baseline[stage]["bytes_loaded"], stage
        assert bonsai[stage]["energy_j"] < baseline[stage]["energy_j"], stage


def test_golden_dir_has_no_stale_hardware_snapshots():
    """Every hardware snapshot corresponds to a registered scenario/backend."""
    expected = {_golden_path(s, b).name for s in SCENARIOS for b in BACKENDS}
    actual = {p.name for p in GOLDEN_DIR.glob("hw_pipeline_*.json")}
    assert actual == expected, (
        f"stale={sorted(actual - expected)}, missing={sorted(expected - actual)}")
