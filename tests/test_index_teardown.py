"""Teardown/reuse tests of the backend cache and worker pools.

``PointCloudIndex.close()`` and the ``-mp`` backends' ``close()`` must be
idempotent, must never crash on double-close, and must leave the object
fully usable afterwards — the next call rebuilds a fresh backend (index)
or restarts a fresh pool (mp backend) and returns identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import PointCloudIndex, get_backend
from repro.engine.parallel import MIN_PARALLEL_QUERIES
from repro.kdtree import build_kdtree


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(23)
    points = rng.uniform(-7.0, 7.0, (500, 3)).astype(np.float32)
    queries = points[:MIN_PARALLEL_QUERIES + 12].astype(np.float64) \
        + rng.normal(0.0, 0.25, (MIN_PARALLEL_QUERIES + 12, 3))
    return build_kdtree(points), queries


class TestPointCloudIndexClose:
    def test_close_is_idempotent(self, case):
        tree, queries = case
        index = PointCloudIndex(tree)
        index.radius_search(queries, 0.5)
        index.close()
        index.close()  # double close must be a no-op, not a crash
        index.close()

    def test_close_empties_the_backend_cache(self, case):
        tree, queries = case
        index = PointCloudIndex(tree)
        before = index.backend("baseline-batched")
        index.radius_search(queries, 0.5)
        index.close()
        after = index.backend("baseline-batched")
        assert after is not before
        # And the fresh backend is cached again.
        assert index.backend("baseline-batched") is after

    def test_index_usable_after_close_with_identical_results(self, case):
        tree, queries = case
        index = PointCloudIndex(tree)
        first = index.radius_search(queries, 0.5)
        index.close()
        second = index.radius_search(queries, 0.5)
        assert np.array_equal(first.offsets, second.offsets)
        assert np.array_equal(first.point_indices, second.point_indices)

    def test_close_tears_down_mp_pools(self, case):
        tree, queries = case
        index = PointCloudIndex(tree)
        backend = index.backend("baseline-batched-mp")
        backend.radius_search(queries, 0.5)
        assert backend._pool is not None
        index.close()
        assert backend._pool is None
        assert backend._pool_finalizer is None

    def test_repeated_close_reuse_cycles(self, case):
        tree, queries = case
        index = PointCloudIndex(tree)
        reference = index.radius_search(queries, 0.5)
        for _ in range(3):
            result = index.radius_search(
                queries, 0.5, backend="baseline-batched-mp")
            assert np.array_equal(result.point_indices,
                                  reference.point_indices)
            index.close()


class TestContextManagers:
    def test_index_as_context_manager(self, case):
        tree, queries = case
        with PointCloudIndex(tree) as index:
            backend = index.backend("baseline-batched-mp")
            backend.radius_search(queries, 0.5)
            assert backend._pool is not None
        # __exit__ closed the cache; the pooled backend was torn down.
        assert backend._pool is None
        assert index._backends == {}

    def test_context_manager_closes_on_exception(self, case):
        tree, queries = case
        with pytest.raises(RuntimeError, match="boom"):
            with PointCloudIndex(tree) as index:
                backend = index.backend("baseline-batched-mp")
                backend.radius_search(queries, 0.5)
                raise RuntimeError("boom")
        assert backend._pool is None

    def test_sharded_index_as_context_manager(self, case):
        from repro.engine import ShardedPointCloudIndex

        tree, queries = case
        points = np.asarray(tree.points)
        with ShardedPointCloudIndex(points, tile_size=5.0) as sharded:
            result = sharded.radius_search(queries, 0.5)
            assert result.offsets[-1] > 0
        # Shards are closed; the index stays reusable per close() contract.
        again = sharded.radius_search(queries, 0.5)
        assert np.array_equal(result.offsets, again.offsets)
        sharded.close()

    def test_exit_without_close_in_subprocess_is_clean(self, case):
        """Interpreter shutdown with live pools must not traceback."""
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.engine import PointCloudIndex\n"
            "from repro.engine.parallel import MIN_PARALLEL_QUERIES\n"
            "from repro.kdtree import build_kdtree\n"
            "rng = np.random.default_rng(23)\n"
            "points = rng.uniform(-7.0, 7.0, (500, 3)).astype(np.float32)\n"
            "queries = points[:MIN_PARALLEL_QUERIES + 12]"
            ".astype(np.float64)\n"
            "index = PointCloudIndex(build_kdtree(points))\n"
            "index.radius_search(queries, 0.5, "
            "backend='baseline-batched-mp')\n"
            "print('done')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout
        assert "Traceback" not in proc.stderr


class TestMPBackendClose:
    def test_double_close_without_pool_is_safe(self, case):
        tree, _ = case
        backend = get_backend("baseline-batched-mp", tree)
        backend.close()  # never used: no pool yet
        backend.close()

    def test_close_restarts_a_fresh_pool_on_next_use(self, case):
        tree, queries = case
        backend = get_backend("baseline-batched-mp", tree)
        first = backend.radius_search(queries, 0.5)
        old_pool = backend._pool
        assert old_pool is not None
        backend.close()
        assert backend._pool is None and backend._pool_finalizer is None
        second = backend.radius_search(queries, 0.5)
        assert backend._pool is not None
        assert backend._pool is not old_pool
        assert np.array_equal(first.offsets, second.offsets)
        assert np.array_equal(first.point_indices, second.point_indices)
        backend.close()

    def test_small_batches_never_spawn_a_pool(self, case):
        tree, queries = case
        backend = get_backend("baseline-batched-mp", tree)
        backend.radius_search(queries[:4], 0.5)
        backend.knn(queries[:4], 3)
        assert backend._pool is None
        backend.close()

    def test_stats_survive_close(self, case):
        tree, queries = case
        backend = get_backend("baseline-batched-mp", tree)
        backend.radius_search(queries, 0.5)
        queries_before = backend.stats.queries
        assert queries_before == queries.shape[0]
        backend.close()
        # close() tears down the pool, not the accumulated counters.
        assert backend.stats.queries == queries_before
        backend.radius_search(queries, 0.5)
        assert backend.stats.queries == 2 * queries_before
        backend.close()
